//! One conjugate-gradient iteration — the kind of Tpetra-style solver
//! kernel the paper's introduction motivates. Combines the distributed
//! SpMV (pack/exchange/local/remote) with a dot-product reduction
//! (`MPI_Allreduce`, Table II's collective class) and an AXPY update,
//! then mines design rules for the composite DAG.
//!
//! Run with: `cargo run --release --example cg_step`

use cuda_mpi_design_rules::dag::{CommKey, CostKey, DagBuilder, DecisionSpace, OpSpec};
use cuda_mpi_design_rules::ml::rulesets_for_class;
use cuda_mpi_design_rules::pipeline::{run_pipeline, PipelineConfig, Strategy};
use cuda_mpi_design_rules::sim::{CommPattern, Platform, TableWorkload, Workload};
use cuda_mpi_design_rules::spmv::{
    banded_matrix, BandedSpec, DistributedSpmv, GpuModel, SpmvWorkload,
};

/// Layers solver-specific costs over the SpMV decomposition's workload.
struct CgWorkload {
    spmv: SpmvWorkload,
    extra: TableWorkload,
}

impl Workload for CgWorkload {
    fn num_ranks(&self) -> usize {
        self.spmv.num_ranks()
    }
    fn cost(&self, rank: usize, key: &CostKey) -> Option<f64> {
        self.spmv
            .cost(rank, key)
            .or_else(|| self.extra.cost(rank, key))
    }
    fn comm(&self, rank: usize, key: &CommKey) -> Option<CommPattern> {
        self.spmv
            .comm(rank, key)
            .or_else(|| self.extra.comm(rank, key))
    }
}

fn main() {
    let ranks = 4;
    let a = banded_matrix(&BandedSpec::small(47));
    let dist = DistributedSpmv::new(&a, ranks);
    let spmv = SpmvWorkload::new(&dist, &GpuModel::default());

    // --- DAG: SpMV of the search direction, then pᵀ(Ap) via a local dot
    // kernel + Allreduce, then the AXPY update.
    let halo = CommKey::new("halo");
    let mut b = DagBuilder::new();
    let pack = b.add("Pack", OpSpec::GpuKernel(CostKey::new("Pack")));
    let ps = b.add("PostSend", OpSpec::PostSends(halo.clone()));
    let pr = b.add("PostRecv", OpSpec::PostRecvs(halo.clone()));
    let ws = b.add("WaitSend", OpSpec::WaitSends(halo.clone()));
    let wr = b.add("WaitRecv", OpSpec::WaitRecvs(halo));
    let unpack = b.add("Unpack", OpSpec::GpuKernel(CostKey::new("Unpack")));
    let yl = b.add("yl", OpSpec::GpuKernel(CostKey::new("yl")));
    let yr = b.add("yr", OpSpec::GpuKernel(CostKey::new("yr")));
    let dot_local = b.add("DotLocal", OpSpec::GpuKernel(CostKey::new("DotLocal")));
    let dot = b.add("DotAllreduce", OpSpec::AllReduce(CommKey::new("dot")));
    let axpy = b.add("Axpy", OpSpec::GpuKernel(CostKey::new("Axpy")));
    b.edge(pack, ps);
    b.edge(ps, ws);
    b.edge(pr, wr);
    b.edge(ps, wr);
    b.edge(pr, ws);
    b.edge(wr, unpack);
    b.edge(unpack, yr);
    b.edge(yl, dot_local);
    b.edge(yr, dot_local);
    b.edge(dot_local, dot);
    b.edge(dot, axpy);
    let dag = b.build().expect("CG DAG is valid");
    let space = DecisionSpace::new(dag, 2).expect("fits in 64 ops");
    println!(
        "CG-step decision space: {} ops, {} traversals",
        space.num_ops(),
        space.count_traversals()
    );

    // --- Costs: SpMV keys from the decomposition; dot/axpy sized by rows.
    let rows = a.nrows / ranks;
    let mut extra = TableWorkload::new(ranks);
    extra
        .cost_all("DotLocal", 3e-6 + rows as f64 * 2e-10)
        .cost_all("Axpy", 3e-6 + rows as f64 * 2e-10);
    for r in 0..ranks {
        extra.comm_on(
            r,
            "dot",
            CommPattern {
                sends: vec![(0, 8)],
                recvs: vec![],
            },
        );
    }
    let workload = CgWorkload { spmv, extra };

    let result = run_pipeline(
        &space,
        &workload,
        &Platform::perlmutter_like(),
        Strategy::Mcts {
            iterations: 500,
            config: Default::default(),
        },
        &PipelineConfig::quick(),
    )
    .expect("CG scenario always executes");

    let times = result.times();
    let fastest = times.iter().copied().fold(f64::INFINITY, f64::min);
    let slowest = times.iter().copied().fold(0.0f64, f64::max);
    println!(
        "explored {} implementations, {:.2}x spread, {} classes",
        result.records.len(),
        slowest / fastest,
        result.labeling.num_classes
    );
    println!();
    println!("rules for the fastest class:");
    for rs in rulesets_for_class(&result.rulesets, 0).iter().take(2) {
        println!("  ruleset ({} samples):", rs.samples);
        for line in cuda_mpi_design_rules::ml::render_ruleset(rs, &space) {
            println!("    - {line}");
        }
    }
}
