//! 3D halo exchange — the extension the paper's future work describes
//! ("the work is currently being extended to 3D halo-exchange
//! communication, modeling fine-grained communication operations in each
//! dimension").
//!
//! A 2×2×2 rank grid exchanges ghost faces in x, y, and z; each dimension
//! has its own pack kernel, point-to-point exchange, and unpack kernel.
//! An interior stencil kernel is independent of all communication; a
//! boundary stencil kernel needs every unpacked face. The design space
//! exceeds 10¹² traversals, so rules are mined from an MCTS exploration.
//! The decomposition itself is numerically validated: the distributed
//! Jacobi sweep the DAG schedules reproduces the serial sweep exactly.
//!
//! Run with: `cargo run --release --example halo_exchange`

use cuda_mpi_design_rules::halo::{jacobi_step, DistributedGrid, Grid3, HaloScenario, RankGrid};
use cuda_mpi_design_rules::mcts::MctsConfig;
use cuda_mpi_design_rules::ml::rulesets_for_class;
use cuda_mpi_design_rules::pipeline::{run_pipeline, PipelineConfig, Strategy};

fn main() {
    // --- Numeric sanity: the algorithm the DAG schedules is correct.
    let g = Grid3::from_fn([8, 8, 8], |x, y, z| (x * 3 + y * 5 + z * 7) as f64);
    let want = jacobi_step(&g);
    let mut d = DistributedGrid::from_global(&g, RankGrid::new([2, 2, 2]));
    d.exchange_ghosts();
    d.jacobi_step();
    let got = d.gather();
    let max_err = got
        .data
        .iter()
        .zip(&want.data)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("distributed vs serial Jacobi max error: {max_err:.2e}");
    assert!(max_err < 1e-12);

    // --- Design-space exploration on the simulated platform.
    let sc = HaloScenario::cube2(7);
    println!(
        "halo-exchange decision space: {} ops, {} traversals",
        sc.space.num_ops(),
        sc.space.count_traversals()
    );

    let iterations = 600;
    println!("running MCTS for {iterations} iterations …");
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Mcts {
            iterations,
            config: MctsConfig {
                seed: 7,
                ..Default::default()
            },
        },
        &PipelineConfig::quick(),
    )
    .expect("halo scenario always executes");

    let times = result.times();
    let fastest = times.iter().copied().fold(f64::INFINITY, f64::min);
    let slowest = times.iter().copied().fold(0.0f64, f64::max);
    println!(
        "explored {} implementations, {:.2}x spread, {} classes",
        result.records.len(),
        slowest / fastest,
        result.labeling.num_classes
    );
    println!();
    println!("rules for the fastest class:");
    for rs in rulesets_for_class(&result.rulesets, 0).iter().take(3) {
        println!("  ruleset ({} samples):", rs.samples);
        for line in cuda_mpi_design_rules::ml::render_ruleset(rs, &sc.space) {
            println!("    - {line}");
        }
    }
}
