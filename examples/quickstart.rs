//! Quickstart: mine design rules for a tiny hand-built CUDA+MPI program.
//!
//! Build a DAG of operations, let the pipeline explore every traversal on
//! the simulated platform, and print the discovered performance classes
//! and the rules that discriminate them.
//!
//! Run with: `cargo run --release --example quickstart`

use cuda_mpi_design_rules::dag::{CostKey, DagBuilder, DecisionSpace, OpSpec};
use cuda_mpi_design_rules::pipeline::{run_pipeline, PipelineConfig, Strategy};
use cuda_mpi_design_rules::sim::{Platform, TableWorkload};

fn main() {
    // A program with two independent kernels feeding a CPU reduction:
    // the design space is every issue order × stream assignment.
    let mut b = DagBuilder::new();
    let fft = b.add("fft", OpSpec::GpuKernel(CostKey::new("fft")));
    let blur = b.add("blur", OpSpec::GpuKernel(CostKey::new("blur")));
    let reduce = b.add("reduce", OpSpec::CpuWork(CostKey::new("reduce")));
    b.edge(fft, reduce);
    b.edge(blur, reduce);
    let dag = b.build().expect("valid DAG");
    let space = DecisionSpace::new(dag, 2).expect("small space");
    println!("design space: {} implementations", space.count_traversals());

    // Durations for each operation; both kernels are long enough that
    // overlapping them is the dominant design decision.
    let mut workload = TableWorkload::new(1);
    workload
        .cost_all("fft", 400e-6)
        .cost_all("blur", 350e-6)
        .cost_all("reduce", 20e-6);

    let platform = Platform::perlmutter_like();
    let result = run_pipeline(
        &space,
        &workload,
        &platform,
        Strategy::Exhaustive,
        &PipelineConfig::quick(),
    )
    .expect("simulation cannot fail on this workload");

    println!("performance classes: {}", result.labeling.num_classes);
    for (c, &(lo, hi)) in result.labeling.class_ranges.iter().enumerate() {
        println!("  class {c}: {:.1} µs .. {:.1} µs", lo * 1e6, hi * 1e6);
    }
    println!();
    println!("design rules:");
    for rs in &result.rulesets {
        println!("  to land in class {} ({} samples):", rs.class, rs.samples);
        for line in cuda_mpi_design_rules::ml::render_ruleset(rs, &space) {
            println!("    - {line}");
        }
    }
}
