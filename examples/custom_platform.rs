//! Platform sensitivity — the paper's motivation: "different computer
//! systems have different performance characteristics, forcing
//! implementers to repeat this process for each target system."
//!
//! The same SpMV design space is mined on two simulated platforms — one
//! with a fast interconnect, one an order of magnitude slower — and the
//! fastest-class rules are printed side by side so the platform-driven
//! redesign is visible.
//!
//! Run with: `cargo run --release --example custom_platform`

use cuda_mpi_design_rules::ml::{render_ruleset, rulesets_for_class, RuleSet};
use cuda_mpi_design_rules::pipeline::{run_pipeline, PipelineConfig, Strategy};
use cuda_mpi_design_rules::sim::Platform;
use cuda_mpi_design_rules::spmv::SpmvScenario;

fn mine(platform: Platform) -> (SpmvScenario, Vec<RuleSet>, usize, f64, f64) {
    let base = SpmvScenario::small(11);
    let sc = SpmvScenario { platform, ..base };
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Exhaustive,
        &PipelineConfig::quick(),
    )
    .expect("SpMV always executes");
    let times = result.times();
    let fastest = times.iter().copied().fold(f64::INFINITY, f64::min);
    let slowest = times.iter().copied().fold(0.0f64, f64::max);
    let classes = result.labeling.num_classes;
    (sc, result.rulesets, classes, fastest, slowest)
}

fn report(tag: &str, platform: Platform) {
    println!("=== {tag} ===");
    let (sc, rulesets, classes, fastest, slowest) = mine(platform);
    println!(
        "  classes: {classes}, fastest {:.1} µs, spread {:.2}x",
        fastest * 1e6,
        slowest / fastest
    );
    println!("  fastest-class rules:");
    for rs in rulesets_for_class(&rulesets, 0).iter().take(2) {
        println!("    ruleset ({} samples):", rs.samples);
        for line in render_ruleset(rs, &sc.space) {
            println!("      - {line}");
        }
    }
    println!();
}

fn main() {
    let fast_network = Platform::perlmutter_like();
    let slow_network = Platform {
        net_bandwidth: 1.2e9,
        net_latency: 40e-6,
        ..Platform::perlmutter_like()
    };
    report("fast interconnect (Slingshot-like)", fast_network);
    report("slow interconnect (commodity Ethernet-like)", slow_network);
    println!(
        "On the slow network, communication dominates: rules that hide the\n\
         exchange behind yl matter more, and the fastest class narrows."
    );
}
