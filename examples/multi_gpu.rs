//! Multi-GPU resource assignment — the extension the paper's future work
//! names ("extending resource assignment to include multiple GPUs or NUMA
//! nodes, instead of solely GPU streams").
//!
//! The SpMV design space is explored with four streams, first all on one
//! GPU (streams contend), then split across two GPUs (no cross-GPU
//! contention, but cross-GPU dependencies pay peer-sync latency). The
//! mined fastest-class rules shift accordingly.
//!
//! Run with: `cargo run --release --example multi_gpu`

use cuda_mpi_design_rules::ml::{render_ruleset, rulesets_for_class};
use cuda_mpi_design_rules::pipeline::{run_pipeline, PipelineConfig, Strategy};
use cuda_mpi_design_rules::sim::Platform;
use cuda_mpi_design_rules::spmv::{BandedSpec, GpuModel, SpmvDagConfig, SpmvScenario};

fn report(tag: &str, platform: Platform) {
    let sc = SpmvScenario::build(
        &BandedSpec::small(19),
        4,
        4, // four streams to assign
        &SpmvDagConfig::default(),
        &GpuModel::default(),
        platform,
    );
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Mcts {
            iterations: 500,
            config: Default::default(),
        },
        &PipelineConfig::quick(),
    )
    .expect("SpMV always executes");
    let times = result.times();
    let fastest = times.iter().copied().fold(f64::INFINITY, f64::min);
    println!("=== {tag} ===");
    println!(
        "  explored {}, classes {}, fastest {:.1} µs",
        result.records.len(),
        result.labeling.num_classes,
        fastest * 1e6
    );
    println!("  fastest-class rules:");
    for rs in rulesets_for_class(&result.rulesets, 0).iter().take(1) {
        for line in render_ruleset(rs, &sc.space) {
            println!("    - {line}");
        }
    }
    println!();
}

fn main() {
    let one_gpu = Platform {
        gpu_contention: 0.5, // make stream contention bite
        ..Platform::perlmutter_like()
    };
    let two_gpus = Platform {
        streams_per_gpu: 2, // streams 0-1 on GPU 0, streams 2-3 on GPU 1
        ..one_gpu.clone()
    };
    report("4 streams on one GPU", one_gpu);
    report("4 streams across two GPUs", two_gpus);
    println!(
        "With two GPUs, spreading the heavy kernels across the GPU boundary\n\
         avoids contention entirely, so stream choice matters more and the\n\
         fastest class tightens."
    );
}
