//! The closed loop the paper envisions: mine design rules from a partial
//! exploration, then *follow* a fastest-class ruleset to construct a new
//! implementation — and verify it actually lands in that class.
//!
//! Run with: `cargo run --release --example follow_the_rules`

use cuda_mpi_design_rules::mcts::MctsConfig;
use cuda_mpi_design_rules::ml::rulesets_for_class;
use cuda_mpi_design_rules::pipeline::{run_pipeline, synthesize, PipelineConfig, Strategy};
use cuda_mpi_design_rules::sim::BenchConfig;
use cuda_mpi_design_rules::spmv::SpmvScenario;

fn main() {
    let sc = SpmvScenario::small(31);

    // 1. Explore a fraction of the space and mine rules.
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Mcts {
            iterations: 300,
            config: MctsConfig {
                seed: 31,
                ..Default::default()
            },
        },
        &PipelineConfig::quick(),
    )
    .expect("SpMV always executes");
    let (lo, hi) = result.labeling.class_ranges[0];
    println!(
        "mined {} rulesets; fastest class spans {:.1} µs .. {:.1} µs",
        result.rulesets.len(),
        lo * 1e6,
        hi * 1e6
    );

    // 2. Take the best-supported fastest-class ruleset and follow it.
    let fast_sets = rulesets_for_class(&result.rulesets, 0);
    let ruleset = fast_sets.first().expect("a fastest-class ruleset exists");
    println!(
        "following the dominant ruleset ({} samples):",
        ruleset.samples
    );
    for line in cuda_mpi_design_rules::ml::render_ruleset(ruleset, &sc.space) {
        println!("  - {line}");
    }
    let implementation =
        synthesize(&sc.space, &ruleset.rules).expect("mined rules are satisfiable");

    // 3. Benchmark the synthesized implementation.
    let time = sc
        .benchmark(&implementation, &BenchConfig::quick(), 777)
        .expect("SpMV always executes")
        .time();
    println!();
    println!(
        "synthesized implementation measured at {:.1} µs",
        time * 1e6
    );
    if time <= hi * 1.05 {
        println!("within the fastest class, as the rules promised.");
    } else {
        println!(
            "outside the class range — the ruleset was under-constrained \
             (the paper observes this for small exploration budgets)."
        );
    }
}
