//! The paper's demonstration, end to end: explore the distributed-SpMV
//! design space with MCTS and print the design rules for each performance
//! class, exactly the workflow of Fig. 2.
//!
//! Run with: `cargo run --release --example spmv_rules`
//! (uses the scaled-down matrix; pass `--paper` for the 150 000-row one)

use cuda_mpi_design_rules::mcts::MctsConfig;
use cuda_mpi_design_rules::ml::rulesets_for_class;
use cuda_mpi_design_rules::pipeline::{run_pipeline, PipelineConfig, Strategy};
use cuda_mpi_design_rules::spmv::SpmvScenario;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let sc = if paper_scale {
        SpmvScenario::paper(42)
    } else {
        SpmvScenario::small(42)
    };
    println!(
        "SpMV design space: {} traversals over {} streams",
        sc.space.count_traversals(),
        sc.space.num_streams()
    );

    let iterations = 400;
    println!("running MCTS for {iterations} iterations …");
    let cfg = if paper_scale {
        PipelineConfig::default()
    } else {
        PipelineConfig::quick()
    };
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Mcts {
            iterations,
            config: MctsConfig {
                seed: 42,
                ..Default::default()
            },
        },
        &cfg,
    )
    .expect("the SpMV scenario always executes");

    println!(
        "explored {} distinct implementations; {} performance classes",
        result.records.len(),
        result.labeling.num_classes
    );
    let times = result.times();
    let fastest = times.iter().copied().fold(f64::INFINITY, f64::min);
    let slowest = times.iter().copied().fold(0.0f64, f64::max);
    println!(
        "spread: {:.2}x between fastest and slowest",
        slowest / fastest
    );
    println!();

    for class in 0..result.labeling.num_classes {
        let (lo, hi) = result.labeling.class_ranges[class];
        println!(
            "== class {class} ({:.1} µs .. {:.1} µs) ==",
            lo * 1e6,
            hi * 1e6
        );
        for rs in rulesets_for_class(&result.rulesets, class).iter().take(2) {
            println!(
                "  ruleset ({} samples{}):",
                rs.samples,
                if rs.pure { "" } else { ", impure" }
            );
            for line in cuda_mpi_design_rules::ml::render_ruleset(rs, &sc.space) {
                println!("    - {line}");
            }
        }
        println!();
    }
}
