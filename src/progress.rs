//! Live progress rendering for `dr-rules --progress`.
//!
//! [`ProgressRenderer`] subscribes to the run's [`dr_obs::EventSink`]
//! as an in-process [`EventObserver`] and folds the event stream into
//! one status line: current phase, traversals explored out of the space
//! (with an ETA), evaluation throughput, cache hit rate, quarantine and
//! retry counts, the best simulated time seen so far (with its
//! traversal hash), and the MCTS tree size/depth.
//!
//! Output goes to **stderr** so stdout stays machine-parsable. On a TTY
//! the renderer repaints a single line in place (`\r` + erase-line) at
//! most every 100 ms; when stderr is redirected it degrades to plain
//! one-per-~2 s log lines. Rendering only *reads* event payloads — it
//! can never perturb the search, which is what makes `--progress` runs
//! bit-identical to silent ones.

use dr_obs::{Event, EventObserver, Field};
use std::io::{IsTerminal, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum interval between in-place repaints on a TTY.
const TTY_INTERVAL: Duration = Duration::from_millis(100);
/// Minimum interval between plain log lines when stderr is not a TTY.
const PLAIN_INTERVAL: Duration = Duration::from_secs(2);

#[derive(Default)]
struct State {
    phase: String,
    strategy: String,
    space: u64,
    records: u64,
    evals: u64,
    iterations: u64,
    tree_nodes: u64,
    max_depth: u64,
    best_s: f64,
    best_hash: String,
    shard: String,
    cache_hits: u64,
    cache_misses: u64,
    quarantined: u64,
    retries: u64,
    lint_schedules: u64,
    lint_errors: u64,
    lint_warnings: u64,
    lint_diags: u64,
    anomalies: u64,
    last_paint: Option<Instant>,
    painted_tty_line: bool,
    finished: bool,
}

/// Event observer that renders a live status line on stderr.
pub struct ProgressRenderer {
    state: Mutex<State>,
    tty: bool,
    start: Instant,
}

impl Default for ProgressRenderer {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressRenderer {
    /// A renderer writing to stderr, auto-detecting whether it is a TTY.
    pub fn new() -> Self {
        Self::with_tty(std::io::stderr().is_terminal())
    }

    /// A renderer with the TTY mode forced (tests use this to exercise
    /// both paint paths deterministically).
    pub fn with_tty(tty: bool) -> Self {
        ProgressRenderer {
            state: Mutex::new(State {
                best_s: f64::INFINITY,
                ..State::default()
            }),
            tty,
            start: Instant::now(),
        }
    }

    /// The current status line (also the final line painted at
    /// `run-end`). Exposed so tests can assert on rendering without
    /// scraping stderr.
    pub fn snapshot_line(&self) -> String {
        let st = self.state.lock().expect("progress state poisoned");
        self.line(&st)
    }

    fn line(&self, st: &State) -> String {
        let elapsed = self.start.elapsed().as_secs_f64();
        let mut line = format!(
            "[{elapsed:6.1}s] {}",
            if st.phase.is_empty() {
                "starting"
            } else {
                &st.phase
            }
        );
        if !st.strategy.is_empty() {
            line.push_str(&format!(" ({})", st.strategy));
        }
        if !st.shard.is_empty() {
            line.push_str(&format!(" [shard {}]", st.shard));
        }
        if st.space > 0 {
            line.push_str(&format!(" | {}/{} traversals", st.records, st.space));
            if st.records > 0 && st.records < st.space && !st.finished {
                let eta = elapsed * (st.space - st.records) as f64 / st.records as f64;
                line.push_str(&format!(" (eta {eta:.0}s)"));
            }
        }
        if st.evals > 0 && elapsed > 0.0 {
            line.push_str(&format!(
                " | {} evals ({:.1}/s)",
                st.evals,
                st.evals as f64 / elapsed
            ));
        }
        let lookups = st.cache_hits + st.cache_misses;
        if lookups > 0 {
            line.push_str(&format!(
                " | cache {:.0}%",
                100.0 * st.cache_hits as f64 / lookups as f64
            ));
        }
        if st.quarantined > 0 || st.retries > 0 {
            line.push_str(&format!(" | q{} r{}", st.quarantined, st.retries));
        }
        if st.anomalies > 0 {
            line.push_str(&format!(" | anomalies {}", st.anomalies));
        }
        if st.best_s.is_finite() {
            line.push_str(&format!(" | best {:.1} µs", st.best_s * 1e6));
            if !st.best_hash.is_empty() {
                line.push_str(&format!(" @{}", &st.best_hash[..st.best_hash.len().min(8)]));
            }
        }
        if st.tree_nodes > 0 {
            line.push_str(&format!(
                " | tree {} nodes d{}",
                st.tree_nodes, st.max_depth
            ));
        }
        if st.lint_schedules > 0 {
            line.push_str(&format!(
                " | lint {} sched {}E/{}W {} diags",
                st.lint_schedules, st.lint_errors, st.lint_warnings, st.lint_diags
            ));
        }
        line
    }

    fn paint(&self, st: &mut State, force: bool) {
        let interval = if self.tty {
            TTY_INTERVAL
        } else {
            PLAIN_INTERVAL
        };
        let due = match st.last_paint {
            Some(t) => t.elapsed() >= interval,
            None => true,
        };
        if !force && !due {
            return;
        }
        st.last_paint = Some(Instant::now());
        let line = self.line(st);
        let mut err = std::io::stderr().lock();
        if self.tty {
            // Repaint one line in place; erase leftovers from a longer
            // previous paint.
            let _ = write!(err, "\r\x1b[2K{line}");
            if st.finished {
                let _ = writeln!(err);
                st.painted_tty_line = false;
            } else {
                st.painted_tty_line = true;
            }
            let _ = err.flush();
        } else {
            let _ = writeln!(err, "{line}");
        }
    }
}

fn u64_field(event: &Event, name: &str) -> Option<u64> {
    match event.field(name) {
        Some(Field::U64(v)) => Some(*v),
        _ => None,
    }
}

fn f64_field(event: &Event, name: &str) -> Option<f64> {
    match event.field(name) {
        Some(Field::F64(v)) => Some(*v),
        Some(Field::U64(v)) => Some(*v as f64),
        _ => None,
    }
}

fn str_field<'e>(event: &'e Event, name: &str) -> Option<&'e str> {
    match event.field(name) {
        Some(Field::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

impl EventObserver for ProgressRenderer {
    fn on_event(&self, event: &Event) {
        let mut st = self.state.lock().expect("progress state poisoned");
        let mut force = false;
        match event.kind.as_str() {
            "run-start" => {
                if let Some(s) = str_field(event, "strategy") {
                    st.strategy = s.to_string();
                }
                if let Some(n) = u64_field(event, "space") {
                    st.space = n;
                }
                force = true;
            }
            "phase-start" => {
                if let Some(p) = str_field(event, "phase") {
                    st.phase = p.to_string();
                }
                force = true;
            }
            "phase-end" if str_field(event, "phase") == Some("explore") => {
                if let Some(n) = u64_field(event, "records") {
                    st.records = n;
                }
                if let Some(n) = u64_field(event, "cache_hits") {
                    st.cache_hits = n;
                }
                if let Some(n) = u64_field(event, "cache_misses") {
                    st.cache_misses = n;
                }
                if let Some(n) = u64_field(event, "quarantined") {
                    st.quarantined = n;
                }
                if let Some(n) = u64_field(event, "retries") {
                    st.retries = n;
                }
                if let Some(n) = u64_field(event, "evals") {
                    st.evals = st.evals.max(n);
                }
            }
            "mcts-iter" => {
                if let Some(n) = u64_field(event, "iteration") {
                    st.iterations = st.iterations.max(n);
                }
                if let Some(n) = u64_field(event, "unique") {
                    st.records = st.records.max(n);
                }
                if let Some(n) = u64_field(event, "tree_nodes") {
                    st.tree_nodes = st.tree_nodes.max(n);
                }
                if let Some(n) = u64_field(event, "max_depth") {
                    st.max_depth = st.max_depth.max(n);
                }
                if let Some(t) = f64_field(event, "best_s") {
                    if t.is_finite() && t < st.best_s {
                        st.best_s = t;
                    }
                }
            }
            "eval" => {
                // The eval counter is cumulative across all watched
                // evaluators sharing the run's EvalWatch.
                if let Some(n) = u64_field(event, "eval") {
                    st.evals = st.evals.max(n);
                }
                if let (Some(t), Some(ok)) = (
                    f64_field(event, "time_s"),
                    match event.field("ok") {
                        Some(Field::Bool(b)) => Some(*b),
                        _ => None,
                    },
                ) {
                    if ok && t.is_finite() && t < st.best_s {
                        st.best_s = t;
                        if let Some(h) = str_field(event, "traversal") {
                            st.best_hash = h.to_string();
                        }
                    }
                }
            }
            "heartbeat" => {
                // Shard workers beat with their progress through the
                // shard's work list; fold it into the traversal counter.
                if let (Some(i), Some(of)) = (u64_field(event, "shard"), u64_field(event, "of")) {
                    st.shard = format!("{i}/{of}");
                }
                if let Some(n) = u64_field(event, "done") {
                    st.records = st.records.max(n);
                }
                if let Some(n) = u64_field(event, "total") {
                    st.space = st.space.max(n);
                }
                if st.phase.is_empty() {
                    st.phase = "explore".to_string();
                }
            }
            "shard-done" => {
                if let Some(n) = u64_field(event, "records") {
                    st.records = st.records.max(n);
                }
                st.finished = true;
                st.phase = "shard done".to_string();
                force = true;
            }
            "anomaly" => {
                // Structured detector verdicts (swarm coordinators emit
                // these when a worker leaves its statistical bands).
                st.anomalies += 1;
                force = true;
            }
            "lint-start" => {
                force = true;
            }
            "lint-diag" => {
                // One event per distinct diagnostic across the space
                // (the aggregator dedups; `schedules` carries the
                // multiplicity).
                st.lint_diags += 1;
            }
            "lint-end" => {
                if let Some(n) = u64_field(event, "schedules") {
                    st.lint_schedules = n;
                }
                if let Some(n) = u64_field(event, "errors") {
                    st.lint_errors = n;
                }
                if let Some(n) = u64_field(event, "warnings") {
                    st.lint_warnings = n;
                }
                if let Some(n) = u64_field(event, "distinct_diags") {
                    st.lint_diags = st.lint_diags.max(n);
                }
                force = true;
            }
            "run-end" => {
                st.finished = true;
                if let Some(n) = u64_field(event, "records") {
                    st.records = st.records.max(n);
                }
                st.phase = if event.field("error").is_some() {
                    "failed".to_string()
                } else {
                    "done".to_string()
                };
                force = true;
            }
            _ => {}
        }
        self.paint(&mut st, force);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: &str, fields: Vec<(String, Field)>) -> Event {
        Event {
            seq: 0,
            t_s: 0.0,
            kind: kind.to_string(),
            fields,
        }
    }

    #[test]
    fn folds_events_into_one_status_line() {
        let r = ProgressRenderer::with_tty(false);
        r.on_event(&event(
            "run-start",
            vec![
                ("strategy".into(), Field::Str("mcts".into())),
                ("space".into(), Field::U64(1600)),
            ],
        ));
        r.on_event(&event(
            "phase-start",
            vec![("phase".into(), Field::Str("explore".into()))],
        ));
        r.on_event(&event(
            "mcts-iter",
            vec![
                ("iteration".into(), Field::U64(17)),
                ("unique".into(), Field::U64(12)),
                ("tree_nodes".into(), Field::U64(40)),
                ("max_depth".into(), Field::U64(6)),
                ("best_s".into(), Field::F64(2.0e-4)),
            ],
        ));
        r.on_event(&event(
            "eval",
            vec![
                ("eval".into(), Field::U64(30)),
                ("traversal".into(), Field::Str("00ab00ab00ab00ab".into())),
                ("time_s".into(), Field::F64(1.5e-4)),
                ("ok".into(), Field::Bool(true)),
            ],
        ));
        let line = r.snapshot_line();
        assert!(line.contains("explore (mcts)"), "{line}");
        assert!(line.contains("12/1600 traversals"), "{line}");
        assert!(line.contains("30 evals"), "{line}");
        assert!(line.contains("best 150.0 µs @00ab00ab"), "{line}");
        assert!(line.contains("tree 40 nodes d6"), "{line}");
    }

    #[test]
    fn lint_events_fold_into_lint_counters() {
        let r = ProgressRenderer::with_tty(false);
        r.on_event(&event(
            "lint-start",
            vec![
                ("ops".into(), Field::U64(12)),
                ("max_schedules".into(), Field::U64(0)),
            ],
        ));
        r.on_event(&event(
            "lint-diag",
            vec![
                ("code".into(), Field::Str("RS002".into())),
                ("schedules".into(), Field::U64(640)),
            ],
        ));
        r.on_event(&event(
            "lint-diag",
            vec![
                ("code".into(), Field::Str("RS004".into())),
                ("schedules".into(), Field::U64(320)),
            ],
        ));
        r.on_event(&event(
            "lint-end",
            vec![
                ("schedules".into(), Field::U64(1600)),
                ("errors".into(), Field::U64(0)),
                ("warnings".into(), Field::U64(960)),
                ("distinct_diags".into(), Field::U64(2)),
            ],
        ));
        let line = r.snapshot_line();
        assert!(line.contains("lint 1600 sched 0E/960W 2 diags"), "{line}");
    }

    #[test]
    fn shard_heartbeats_fold_into_the_status_line() {
        let r = ProgressRenderer::with_tty(false);
        r.on_event(&event(
            "heartbeat",
            vec![
                ("shard".into(), Field::U64(1)),
                ("of".into(), Field::U64(3)),
                ("done".into(), Field::U64(4)),
                ("total".into(), Field::U64(9)),
            ],
        ));
        let line = r.snapshot_line();
        assert!(line.contains("explore"), "{line}");
        assert!(line.contains("[shard 1/3]"), "{line}");
        assert!(line.contains("4/9 traversals"), "{line}");
        r.on_event(&event(
            "shard-done",
            vec![
                ("shard".into(), Field::U64(1)),
                ("of".into(), Field::U64(3)),
                ("records".into(), Field::U64(9)),
            ],
        ));
        let line = r.snapshot_line();
        assert!(line.contains("shard done"), "{line}");
        assert!(line.contains("9/9 traversals"), "{line}");
    }

    #[test]
    fn failed_evals_never_become_best_and_run_end_finishes() {
        let r = ProgressRenderer::with_tty(false);
        r.on_event(&event(
            "eval",
            vec![
                ("eval".into(), Field::U64(1)),
                ("time_s".into(), Field::F64(f64::NAN)),
                ("ok".into(), Field::Bool(false)),
            ],
        ));
        assert!(!r.snapshot_line().contains("best"), "{}", r.snapshot_line());
        r.on_event(&event(
            "phase-end",
            vec![
                ("phase".into(), Field::Str("explore".into())),
                ("records".into(), Field::U64(25)),
                ("cache_hits".into(), Field::U64(75)),
                ("cache_misses".into(), Field::U64(25)),
                ("quarantined".into(), Field::U64(1)),
                ("retries".into(), Field::U64(2)),
                ("evals".into(), Field::U64(100)),
            ],
        ));
        r.on_event(&event("run-end", vec![("records".into(), Field::U64(25))]));
        let line = r.snapshot_line();
        assert!(line.contains("done"), "{line}");
        assert!(line.contains("cache 75%"), "{line}");
        assert!(line.contains("q1 r2"), "{line}");
        assert!(!line.contains("eta"), "finished runs need no ETA: {line}");
    }
}
