//! Process-swarm coordinator for crash-safe sharded exploration.
//!
//! `dr-rules <scenario> swarm --workers K --store DIR` splits the
//! exploration into `K` shards and runs each as a **child process of
//! this same binary** (`explore --shard i/K --store DIR`). The
//! coordinator never trusts a worker to be alive just because the
//! process exists: each worker streams `dr-events/v1` NDJSON with
//! periodic `heartbeat` lines, and a worker whose stream goes quiet for
//! longer than the stall timeout is SIGKILLed and its shard re-issued.
//! Because every shard writes through the durable
//! [`dr_store::ResultStore`], a re-issued worker resumes from the
//! already-committed prefix instead of re-simulating — the shard
//! manifest's `store.hits` counter proves it.
//!
//! Failure policy: a dead or stalled shard is re-spawned after capped
//! exponential backoff (`DR_SWARM_BACKOFF_MS`, default 200 ms base,
//! doubling, capped at 3 s) and quarantined after
//! `DR_SWARM_MAX_ATTEMPTS` (default 3) failures; a quarantined shard
//! fails the swarm, naming the shard and its worker log. The shard
//! manifest is the commit marker — a worker that exits zero without
//! publishing a valid manifest still counts as dead.

use crate::cli::CliOptions;
use crate::pipeline::{shard_manifest_path, ShardManifest, ShardSpec};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Reads a millisecond knob from the environment with a default.
fn env_ms(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

/// Heartbeat-silence window after which a worker is declared stalled
/// and SIGKILLed (`DR_SWARM_STALL_MS`, default 10 s).
fn stall_timeout() -> Duration {
    Duration::from_millis(env_ms("DR_SWARM_STALL_MS", 10_000).max(100))
}

/// Spawn attempts per shard before quarantine
/// (`DR_SWARM_MAX_ATTEMPTS`, default 3, minimum 1).
fn max_attempts() -> usize {
    std::env::var("DR_SWARM_MAX_ATTEMPTS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(3)
        .max(1)
}

/// Capped exponential re-spawn backoff: `base · 2^(failures-1)`,
/// capped at 3 s (`DR_SWARM_BACKOFF_MS` sets the base).
fn backoff(failures: usize) -> Duration {
    let base = env_ms("DR_SWARM_BACKOFF_MS", 200);
    let exp = base.saturating_mul(1u64 << (failures.saturating_sub(1)).min(10));
    Duration::from_millis(exp.min(3_000))
}

/// The per-worker event-stream path (heartbeats ride this file).
fn worker_events_path(store_root: &Path, spec: ShardSpec) -> PathBuf {
    store_root.join(format!("shard-{}.events.ndjson", spec.label()))
}

/// The per-worker captured stdout+stderr log.
fn worker_log_path(store_root: &Path, spec: ShardSpec) -> PathBuf {
    store_root.join(format!("shard-{}.log", spec.label()))
}

/// One shard's lifecycle inside the coordinator.
enum State {
    /// Waiting to (re-)spawn once `ready_at` passes.
    Pending { ready_at: Instant },
    /// A live child process being heartbeat-monitored.
    Running {
        child: Child,
        last_beat: Instant,
        events_offset: u64,
    },
    /// Manifest published and validated.
    Done,
    /// Failed `max_attempts` times; never re-issued.
    Quarantined,
}

/// A shard's coordinator-side bookkeeping.
struct Shard {
    spec: ShardSpec,
    state: State,
    failures: usize,
}

/// True when `path` holds a manifest matching this run's identity; a
/// stale manifest from a different run is an error (the caller must not
/// silently mix record sets), reported through `Err`.
fn manifest_matches(
    path: &Path,
    opts: &CliOptions,
    spec: ShardSpec,
) -> Result<Option<ShardManifest>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Ok(None),
    };
    let m = ShardManifest::from_json(&text)
        .map_err(|e| format!("unreadable shard manifest {}: {e}", path.display()))?;
    let expected_strategy = if opts.random { "random" } else { "mcts" };
    if m.scenario != opts.scenario.name()
        || m.strategy != expected_strategy
        || m.seed != opts.seed
        || m.iterations != opts.iterations as u64
        || m.index != spec.index
        || m.count != spec.count
    {
        return Err(format!(
            "shard manifest {} belongs to a different run \
             ({} {} seed {} iterations {}); use a fresh --store directory",
            path.display(),
            m.scenario,
            m.strategy,
            m.seed,
            m.iterations
        ));
    }
    Ok(Some(m))
}

/// Spawns one shard worker: this same binary, `explore --shard i/N`,
/// serial, streaming events (heartbeats included) to its own NDJSON
/// file, stdout+stderr captured to a log. The worker's eager events
/// `File::create` truncates the previous attempt's stream, so the
/// coordinator restarts its tail offset at zero.
fn spawn_worker(opts: &CliOptions, store_root: &Path, spec: ShardSpec) -> Result<Child, String> {
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the dr-rules binary: {e}"))?;
    let log = std::fs::File::create(worker_log_path(store_root, spec))
        .map_err(|e| format!("cannot create worker log: {e}"))?;
    let log_err = log
        .try_clone()
        .map_err(|e| format!("cannot clone worker log handle: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg(opts.scenario.name())
        .arg("explore")
        .arg("--shard")
        .arg(spec.to_string())
        .arg("--store")
        .arg(store_root)
        .arg("--events")
        .arg(worker_events_path(store_root, spec))
        .arg("--iterations")
        .arg(opts.iterations.to_string())
        .arg("--seed")
        .arg(opts.seed.to_string())
        .arg("--threads")
        .arg("1")
        .stdin(Stdio::null())
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(log_err));
    if opts.random {
        cmd.arg("--random");
    }
    cmd.spawn()
        .map_err(|e| format!("cannot spawn shard worker {spec}: {e}"))
}

/// Scans the worker's event stream from `offset` for fresh heartbeat
/// (or shard-done) lines, returning the new end-of-file offset and
/// whether a liveness signal arrived. A token split across two reads is
/// missed once and caught by the next beat — the stall window is many
/// beats wide.
fn poll_heartbeats(events: &Path, offset: u64) -> (u64, bool) {
    let Ok(mut f) = std::fs::File::open(events) else {
        return (offset, false);
    };
    let len = f.metadata().map(|m| m.len()).unwrap_or(0);
    // Truncated by a worker restart: re-tail from the start.
    let start = if len < offset { 0 } else { offset };
    if len == start {
        return (start, false);
    }
    if f.seek(std::io::SeekFrom::Start(start)).is_err() {
        return (start, false);
    }
    let mut buf = Vec::with_capacity((len - start) as usize);
    if f.read_to_end(&mut buf).is_err() {
        return (start, false);
    }
    let text = String::from_utf8_lossy(&buf);
    let beat = text.contains("\"kind\":\"heartbeat\"") || text.contains("\"kind\":\"shard-done\"");
    (start + buf.len() as u64, beat)
}

/// Runs shard workers to completion: resumes shards whose manifest is
/// already published, spawns the rest, monitors heartbeats, SIGKILLs
/// stalled workers, re-issues dead shards with capped backoff, and
/// quarantines a shard after repeated failures. Returns once every
/// shard's manifest is published — the caller then merges — or an error
/// naming the quarantined shards.
pub fn coordinate(
    opts: &CliOptions,
    store_root: &Path,
    out: &mut impl Write,
) -> Result<(), String> {
    let io = |e: std::io::Error| format!("write failed: {e}");
    let count = opts.workers;
    let stall = stall_timeout();
    let attempts_cap = max_attempts();
    let mut shards: Vec<Shard> = Vec::with_capacity(count);
    for index in 0..count {
        let spec = ShardSpec { index, count };
        // Resume: a valid manifest is the shard's commit marker.
        let state = match manifest_matches(&shard_manifest_path(store_root, spec), opts, spec)? {
            Some(m) => {
                writeln!(
                    out,
                    "shard {spec}: already complete ({} records, {} store hits) — resumed",
                    m.records, m.store.hits
                )
                .map_err(io)?;
                State::Done
            }
            None => State::Pending {
                ready_at: Instant::now(),
            },
        };
        shards.push(Shard {
            spec,
            state,
            failures: 0,
        });
    }
    let result = loop {
        let mut open = false;
        for shard in shards.iter_mut() {
            let spec = shard.spec;
            match &mut shard.state {
                State::Done | State::Quarantined => continue,
                State::Pending { ready_at } => {
                    open = true;
                    if Instant::now() < *ready_at {
                        continue;
                    }
                    let child = spawn_worker(opts, store_root, spec)?;
                    writeln!(
                        out,
                        "shard {spec}: worker spawned (pid {}, attempt {})",
                        child.id(),
                        shard.failures + 1
                    )
                    .map_err(io)?;
                    shard.state = State::Running {
                        child,
                        last_beat: Instant::now(),
                        events_offset: 0,
                    };
                }
                State::Running {
                    child,
                    last_beat,
                    events_offset,
                } => {
                    open = true;
                    let (next, beat) =
                        poll_heartbeats(&worker_events_path(store_root, spec), *events_offset);
                    *events_offset = next;
                    if beat {
                        *last_beat = Instant::now();
                    }
                    let exited = child
                        .try_wait()
                        .map_err(|e| format!("cannot poll shard worker {spec}: {e}"))?;
                    let failed_how = match exited {
                        Some(status) => {
                            let manifest = manifest_matches(
                                &shard_manifest_path(store_root, spec),
                                opts,
                                spec,
                            )?;
                            match manifest {
                                Some(m) if status.success() => {
                                    writeln!(
                                        out,
                                        "shard {spec}: complete — {} records, fingerprint \
                                         {:016x}, {} store hits",
                                        m.records, m.fingerprint, m.store.hits
                                    )
                                    .map_err(io)?;
                                    shard.state = State::Done;
                                    continue;
                                }
                                _ => Some(format!("exited {status} without a valid manifest")),
                            }
                        }
                        None if last_beat.elapsed() > stall => {
                            // SIGKILL, not a polite shutdown: a stalled
                            // worker cannot be trusted to clean up, and
                            // the store makes the kill safe.
                            let _ = child.kill();
                            let _ = child.wait();
                            Some(format!(
                                "stalled (no heartbeat for {:.1}s) — killed",
                                last_beat.elapsed().as_secs_f64()
                            ))
                        }
                        None => None,
                    };
                    if let Some(how) = failed_how {
                        shard.failures += 1;
                        if shard.failures >= attempts_cap {
                            writeln!(
                                out,
                                "shard {spec}: {how}; quarantined after {} attempts (see {})",
                                shard.failures,
                                worker_log_path(store_root, spec).display()
                            )
                            .map_err(io)?;
                            shard.state = State::Quarantined;
                        } else {
                            let delay = backoff(shard.failures);
                            writeln!(
                                out,
                                "shard {spec}: {how}; retrying in {} ms (attempt {} of \
                                 {attempts_cap})",
                                delay.as_millis(),
                                shard.failures + 1
                            )
                            .map_err(io)?;
                            shard.state = State::Pending {
                                ready_at: Instant::now() + delay,
                            };
                        }
                    }
                }
            }
        }
        if !open {
            let quarantined: Vec<String> = shards
                .iter()
                .filter(|s| matches!(s.state, State::Quarantined))
                .map(|s| s.spec.to_string())
                .collect();
            if quarantined.is_empty() {
                break Ok(());
            }
            break Err(format!(
                "swarm failed: shard(s) {} quarantined after {attempts_cap} attempts each",
                quarantined.join(", ")
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    // Never leak children, whatever the outcome.
    for shard in shards.iter_mut() {
        if let State::Running { child, .. } = &mut shard.state {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff(1), Duration::from_millis(200));
        assert_eq!(backoff(2), Duration::from_millis(400));
        assert_eq!(backoff(3), Duration::from_millis(800));
        assert_eq!(backoff(20), Duration::from_millis(3_000), "capped");
    }

    #[test]
    fn heartbeat_poll_detects_beats_and_truncation() {
        let dir = std::env::temp_dir().join(format!("dr-swarm-hb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.ndjson");
        // Missing file: no beat, offset unchanged.
        assert_eq!(poll_heartbeats(&path, 0), (0, false));
        std::fs::write(&path, "{\"kind\":\"phase-start\"}\n").unwrap();
        let (off, beat) = poll_heartbeats(&path, 0);
        assert!(!beat, "non-heartbeat events are not liveness");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"kind\":\"heartbeat\",\"shard\":0}\n")
            .unwrap();
        drop(f);
        let (off2, beat) = poll_heartbeats(&path, off);
        assert!(beat, "fresh heartbeat detected");
        assert!(off2 > off);
        // Worker restart truncates the stream: the poll re-tails from 0.
        std::fs::write(&path, "{\"kind\":\"heartbeat\"}\n").unwrap();
        let (_, beat) = poll_heartbeats(&path, off2);
        assert!(beat, "re-tailed after truncation");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
