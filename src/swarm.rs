//! Process-swarm coordinator for crash-safe sharded exploration.
//!
//! `dr-rules <scenario> swarm --workers K --store DIR` splits the
//! exploration into `K` shards and runs each as a **child process of
//! this same binary** (`explore --shard i/K --store DIR`). The
//! coordinator never trusts a worker to be alive just because the
//! process exists: each worker streams `dr-events/v1` NDJSON, and the
//! coordinator tails every stream through a [`dr_fleet::Aggregator`],
//! which validates each line against the run id pinned into the worker
//! (`DR_RUN_ID`) and the worker's own shard identity before it counts —
//! a stale stream from a previous run can neither pollute the merged
//! telemetry nor masquerade as liveness. A worker whose validated
//! stream goes quiet for longer than the stall timeout is SIGKILLed and
//! its shard re-issued. Because every shard writes through the durable
//! [`dr_store::ResultStore`], a re-issued worker resumes from the
//! already-committed prefix instead of re-simulating — the shard
//! manifest's `store.hits` counter proves it.
//!
//! The merged streams also feed an online [`dr_fleet::AnomalyDetector`]
//! (straggler / rate-collapse / silent-worker, MAD bands over heartbeat
//! gaps and eval rates), so kill and re-issue decisions cite a
//! structured `anomaly` event instead of being taken blind, and an
//! optional fleet-wide `--progress` rollup. All merged telemetry is
//! retained and returned in a [`FleetOutcome`] for the `swarm --trace`
//! Perfetto export and the `--metrics-text` snapshot.
//!
//! Failure policy: a dead or stalled shard is re-spawned after capped
//! exponential backoff (`DR_SWARM_BACKOFF_MS`, default 200 ms base,
//! doubling, capped at 3 s) and quarantined after
//! `DR_SWARM_MAX_ATTEMPTS` (default 3) failures; a quarantined shard
//! fails the swarm, naming the shard and its worker log. The shard
//! manifest is the commit marker — a worker that exits zero without
//! publishing a valid manifest still counts as dead.
//!
//! Chaos levers: `DR_SWARM_FAULT_SHARD=<i>` plus `DR_SWARM_FAULTS=<spec>`
//! inject a `DR_FAULTS` spec into exactly one worker (all other workers
//! run clean), which combined with the `DR_RETRY_*` knobs turns a
//! single shard into a reproducible straggler for anomaly-detection
//! tests.

use crate::cli::CliOptions;
use crate::pipeline::{shard_manifest_path, ShardManifest, ShardSpec};
use dr_fleet::{
    Aggregator, AnomalyConfig, AnomalyDetector, FleetProgress, FleetStats, MergedEvent,
};
use dr_obs::EventSink;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Everything the coordinator learned from the merged telemetry: the
/// full globally-sequenced event list (timeline export material) and
/// the per-worker aggregation counters (metrics snapshot material).
pub struct FleetOutcome {
    /// Every merged event, in global-sequence order.
    pub events: Vec<MergedEvent>,
    /// Aggregation counters per worker plus coordinator totals.
    pub stats: FleetStats,
    /// The coordinator's own event-stream run id.
    pub run_id: String,
}

/// Reads a millisecond knob from the environment with a default.
fn env_ms(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

/// Heartbeat-silence window after which a worker is declared stalled
/// and SIGKILLed (`DR_SWARM_STALL_MS`, default 10 s).
fn stall_timeout() -> Duration {
    Duration::from_millis(env_ms("DR_SWARM_STALL_MS", 10_000).max(100))
}

/// Spawn attempts per shard before quarantine
/// (`DR_SWARM_MAX_ATTEMPTS`, default 3, minimum 1).
fn max_attempts() -> usize {
    std::env::var("DR_SWARM_MAX_ATTEMPTS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(3)
        .max(1)
}

/// Capped exponential re-spawn backoff: `base · 2^(failures-1)`,
/// capped at 3 s (`DR_SWARM_BACKOFF_MS` sets the base).
fn backoff(failures: usize) -> Duration {
    let base = env_ms("DR_SWARM_BACKOFF_MS", 200);
    let exp = base.saturating_mul(1u64 << (failures.saturating_sub(1)).min(10));
    Duration::from_millis(exp.min(3_000))
}

/// The per-worker event-stream path (heartbeats ride this file).
fn worker_events_path(store_root: &Path, spec: ShardSpec) -> PathBuf {
    store_root.join(format!("shard-{}.events.ndjson", spec.label()))
}

/// The per-worker captured stdout+stderr log.
fn worker_log_path(store_root: &Path, spec: ShardSpec) -> PathBuf {
    store_root.join(format!("shard-{}.log", spec.label()))
}

/// The `DR_FAULTS` spec for shard `index`, honoring the single-shard
/// chaos targeting knobs: with `DR_SWARM_FAULT_SHARD` set, only that
/// shard receives `DR_SWARM_FAULTS`; every other worker runs clean.
fn targeted_faults(index: usize) -> Option<String> {
    let target = std::env::var("DR_SWARM_FAULT_SHARD")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())?;
    if target != index {
        return None;
    }
    std::env::var("DR_SWARM_FAULTS")
        .ok()
        .filter(|s| !s.is_empty())
}

/// One shard's lifecycle inside the coordinator.
enum State {
    /// Waiting to (re-)spawn once `ready_at` passes.
    Pending { ready_at: Instant },
    /// A live child process being heartbeat-monitored.
    Running { child: Child, last_beat: Instant },
    /// Manifest published and validated.
    Done,
    /// Failed `max_attempts` times; never re-issued.
    Quarantined,
}

/// A shard's coordinator-side bookkeeping.
struct Shard {
    spec: ShardSpec,
    state: State,
    failures: usize,
}

/// True when `path` holds a manifest matching this run's identity; a
/// stale manifest from a different run is an error (the caller must not
/// silently mix record sets), reported through `Err`.
fn manifest_matches(
    path: &Path,
    opts: &CliOptions,
    spec: ShardSpec,
) -> Result<Option<ShardManifest>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Ok(None),
    };
    let m = ShardManifest::from_json(&text)
        .map_err(|e| format!("unreadable shard manifest {}: {e}", path.display()))?;
    let expected_strategy = if opts.random { "random" } else { "mcts" };
    if m.scenario != opts.scenario.name()
        || m.strategy != expected_strategy
        || m.seed != opts.seed
        || m.iterations != opts.iterations as u64
        || m.index != spec.index
        || m.count != spec.count
    {
        return Err(format!(
            "shard manifest {} belongs to a different run \
             ({} {} seed {} iterations {}); use a fresh --store directory",
            path.display(),
            m.scenario,
            m.strategy,
            m.seed,
            m.iterations
        ));
    }
    Ok(Some(m))
}

/// Spawns one shard worker: this same binary, `explore --shard i/N`,
/// serial, streaming events (heartbeats included) to its own NDJSON
/// file, stdout+stderr captured to a log. The worker's `DR_RUN_ID` is
/// pinned to `run_id` so the aggregator can validate its stream, and
/// its eager events `File::create` truncates the previous attempt's
/// stream (the aggregator re-tails from zero on `expect_worker`).
fn spawn_worker(
    opts: &CliOptions,
    store_root: &Path,
    spec: ShardSpec,
    run_id: &str,
) -> Result<Child, String> {
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the dr-rules binary: {e}"))?;
    let log = std::fs::File::create(worker_log_path(store_root, spec))
        .map_err(|e| format!("cannot create worker log: {e}"))?;
    let log_err = log
        .try_clone()
        .map_err(|e| format!("cannot clone worker log handle: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg(opts.scenario.name())
        .arg("explore")
        .arg("--shard")
        .arg(spec.to_string())
        .arg("--store")
        .arg(store_root)
        .arg("--events")
        .arg(worker_events_path(store_root, spec))
        .arg("--iterations")
        .arg(opts.iterations.to_string())
        .arg("--seed")
        .arg(opts.seed.to_string())
        .arg("--threads")
        .arg("1")
        .env("DR_RUN_ID", run_id)
        .env_remove("DR_FAULTS")
        .stdin(Stdio::null())
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(log_err));
    if let Some(spec_str) = targeted_faults(spec.index) {
        cmd.env("DR_FAULTS", spec_str);
    }
    if opts.random {
        cmd.arg("--random");
    }
    cmd.spawn()
        .map_err(|e| format!("cannot spawn shard worker {spec}: {e}"))
}

/// Drains every stream through the aggregator once: feeds the anomaly
/// detector and the progress rollup, and marks which workers produced a
/// validated liveness signal (heartbeat or completion).
fn drain(
    agg: &mut Aggregator,
    detector: &mut AnomalyDetector,
    progress: &mut Option<FleetProgress>,
    beat_seen: &mut [bool],
) {
    let range = agg.poll();
    for ev in &agg.events()[range] {
        if let Some(i) = ev.worker {
            if (ev.kind == "heartbeat" || ev.kind == "shard-done") && i < beat_seen.len() {
                beat_seen[i] = true;
            }
        }
        detector.observe(ev);
        if let Some(p) = progress.as_mut() {
            p.observe(ev);
        }
    }
}

/// Runs shard workers to completion: resumes shards whose manifest is
/// already published, spawns the rest with pinned run ids, merges every
/// worker stream plus its own events into one `dr-fleet/v1` sequence,
/// SIGKILLs stalled workers (citing the anomaly that flagged them),
/// re-issues dead shards with capped backoff, and quarantines a shard
/// after repeated failures. Returns the merged fleet telemetry once
/// every shard's manifest is published — the caller then merges — or an
/// error naming the quarantined shards.
pub fn coordinate(
    opts: &CliOptions,
    store_root: &Path,
    out: &mut impl Write,
) -> Result<FleetOutcome, String> {
    let io = |e: std::io::Error| format!("write failed: {e}");
    let count = opts.workers;
    let stall = stall_timeout();
    let attempts_cap = max_attempts();
    let coord_run = format!("swarm-{}", std::process::id());

    let mut agg = Aggregator::new(store_root, count);
    if let Some(path) = &opts.fleet_events {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create fleet events file {path:?}: {e}"))?;
        agg = agg.with_writer(Box::new(std::io::BufWriter::new(file)));
    }
    let sink = EventSink::new(&coord_run).with_writer(Box::new(agg.coordinator_queue()));
    let mut detector = AnomalyDetector::new(
        count,
        AnomalyConfig {
            // Flag a silent worker halfway to the kill decision, so the
            // anomaly event provably precedes (and explains) the kill.
            silent_after_s: (stall.as_secs_f64() / 2.0).max(0.05),
            ..AnomalyConfig::default()
        },
    );
    let mut progress = opts.progress.then(|| FleetProgress::new(count));
    let mut last_anomaly: Vec<Option<String>> = vec![None; count];

    let mut shards: Vec<Shard> = Vec::with_capacity(count);
    for index in 0..count {
        let spec = ShardSpec { index, count };
        // Resume: a valid manifest is the shard's commit marker.
        let state = match manifest_matches(&shard_manifest_path(store_root, spec), opts, spec)? {
            Some(m) => {
                writeln!(
                    out,
                    "shard {spec}: already complete ({} records, {} store hits) — resumed",
                    m.records, m.store.hits
                )
                .map_err(io)?;
                sink.emit(
                    "shard-resumed",
                    &[
                        ("shard", (spec.index as u64).into()),
                        ("of", (spec.count as u64).into()),
                        ("records", m.records.into()),
                        ("store_hits", m.store.hits.into()),
                    ],
                );
                State::Done
            }
            None => State::Pending {
                ready_at: Instant::now(),
            },
        };
        shards.push(Shard {
            spec,
            state,
            failures: 0,
        });
    }
    let result = loop {
        let mut beat_seen = vec![false; count];
        drain(&mut agg, &mut detector, &mut progress, &mut beat_seen);
        let now_s = agg.now_s();
        for a in detector.scan(now_s) {
            writeln!(
                out,
                "anomaly: worker {} {} — {} ({} = {:.3}, threshold {:.3})",
                a.worker,
                a.kind.name(),
                a.detail,
                a.metric,
                a.value,
                a.threshold
            )
            .map_err(io)?;
            sink.emit(
                "anomaly",
                &[
                    ("worker", (a.worker as u64).into()),
                    ("anomaly", a.kind.name().into()),
                    ("metric", a.metric.into()),
                    ("value", a.value.into()),
                    ("threshold", a.threshold.into()),
                    ("detail", a.detail.as_str().into()),
                ],
            );
            last_anomaly[a.worker] = Some(format!("{} ({})", a.kind.name(), a.metric));
        }
        let mut open = false;
        for shard in shards.iter_mut() {
            let spec = shard.spec;
            match &mut shard.state {
                State::Done | State::Quarantined => continue,
                State::Pending { ready_at } => {
                    open = true;
                    if Instant::now() < *ready_at {
                        continue;
                    }
                    let worker_run = format!("{coord_run}.shard-{}", spec.label());
                    let child = spawn_worker(opts, store_root, spec, &worker_run)?;
                    agg.expect_worker(spec.index, &worker_run);
                    detector.note_spawn(spec.index, agg.now_s());
                    last_anomaly[spec.index] = None;
                    sink.emit(
                        "worker-spawn",
                        &[
                            ("shard", (spec.index as u64).into()),
                            ("of", (spec.count as u64).into()),
                            ("pid", u64::from(child.id()).into()),
                            ("attempt", (shard.failures as u64 + 1).into()),
                        ],
                    );
                    writeln!(
                        out,
                        "shard {spec}: worker spawned (pid {}, attempt {})",
                        child.id(),
                        shard.failures + 1
                    )
                    .map_err(io)?;
                    shard.state = State::Running {
                        child,
                        last_beat: Instant::now(),
                    };
                }
                State::Running { child, last_beat } => {
                    open = true;
                    if beat_seen[spec.index] {
                        *last_beat = Instant::now();
                    }
                    let exited = child
                        .try_wait()
                        .map_err(|e| format!("cannot poll shard worker {spec}: {e}"))?;
                    let failed_how = match exited {
                        Some(status) => {
                            let manifest = manifest_matches(
                                &shard_manifest_path(store_root, spec),
                                opts,
                                spec,
                            )?;
                            match manifest {
                                Some(m) if status.success() => {
                                    writeln!(
                                        out,
                                        "shard {spec}: complete — {} records, fingerprint \
                                         {:016x}, {} store hits",
                                        m.records, m.fingerprint, m.store.hits
                                    )
                                    .map_err(io)?;
                                    sink.emit(
                                        "shard-complete",
                                        &[
                                            ("shard", (spec.index as u64).into()),
                                            ("of", (spec.count as u64).into()),
                                            ("records", m.records.into()),
                                            ("store_hits", m.store.hits.into()),
                                        ],
                                    );
                                    detector.note_exit(spec.index);
                                    shard.state = State::Done;
                                    continue;
                                }
                                _ => Some(format!("exited {status} without a valid manifest")),
                            }
                        }
                        None if last_beat.elapsed() > stall => {
                            // SIGKILL, not a polite shutdown: a stalled
                            // worker cannot be trusted to clean up, and
                            // the store makes the kill safe. The kill
                            // reason cites the anomaly that flagged this
                            // worker first (the detector fires at half
                            // the stall window).
                            let _ = child.kill();
                            let _ = child.wait();
                            let silent_s = last_beat.elapsed().as_secs_f64();
                            sink.emit(
                                "worker-kill",
                                &[
                                    ("shard", (spec.index as u64).into()),
                                    ("silent_s", silent_s.into()),
                                ],
                            );
                            let cited = last_anomaly[spec.index]
                                .as_deref()
                                .map(|a| format!("; after anomaly {a}"))
                                .unwrap_or_default();
                            Some(format!(
                                "stalled (no heartbeat for {silent_s:.1}s{cited}) — killed"
                            ))
                        }
                        None => None,
                    };
                    if let Some(how) = failed_how {
                        detector.note_exit(spec.index);
                        shard.failures += 1;
                        if shard.failures >= attempts_cap {
                            writeln!(
                                out,
                                "shard {spec}: {how}; quarantined after {} attempts (see {})",
                                shard.failures,
                                worker_log_path(store_root, spec).display()
                            )
                            .map_err(io)?;
                            sink.emit(
                                "shard-quarantined",
                                &[
                                    ("shard", (spec.index as u64).into()),
                                    ("attempts", (shard.failures as u64).into()),
                                ],
                            );
                            shard.state = State::Quarantined;
                        } else {
                            let delay = backoff(shard.failures);
                            writeln!(
                                out,
                                "shard {spec}: {how}; retrying in {} ms (attempt {} of \
                                 {attempts_cap})",
                                delay.as_millis(),
                                shard.failures + 1
                            )
                            .map_err(io)?;
                            sink.emit(
                                "shard-retry",
                                &[
                                    ("shard", (spec.index as u64).into()),
                                    ("attempt", (shard.failures as u64 + 1).into()),
                                    ("delay_ms", (delay.as_millis() as u64).into()),
                                ],
                            );
                            shard.state = State::Pending {
                                ready_at: Instant::now() + delay,
                            };
                        }
                    }
                }
            }
        }
        if let Some(p) = progress.as_mut() {
            p.paint(false);
        }
        if !open {
            let quarantined: Vec<String> = shards
                .iter()
                .filter(|s| matches!(s.state, State::Quarantined))
                .map(|s| s.spec.to_string())
                .collect();
            if quarantined.is_empty() {
                break Ok(());
            }
            break Err(format!(
                "swarm failed: shard(s) {} quarantined after {attempts_cap} attempts each",
                quarantined.join(", ")
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    // Never leak children, whatever the outcome.
    let mut leaked = vec![false; count];
    for shard in shards.iter_mut() {
        if let State::Running { child, .. } = &mut shard.state {
            let _ = child.kill();
            let _ = child.wait();
            leaked[shard.spec.index] = true;
        }
    }
    let quarantined = shards
        .iter()
        .filter(|s| matches!(s.state, State::Quarantined))
        .count() as u64;
    sink.emit(
        "swarm-done",
        &[
            ("shards", (count as u64).into()),
            ("quarantined", quarantined.into()),
        ],
    );
    sink.flush();
    // Final drain: the workers have exited (or been killed and waited
    // on), so their streams are complete; one more pass captures every
    // trailing line plus the coordinator's closing events.
    let mut beat_seen = vec![false; count];
    drain(&mut agg, &mut detector, &mut progress, &mut beat_seen);
    if let Some(p) = progress.as_mut() {
        p.finish();
    }
    agg.flush();
    let stats = agg.stats();
    let events = agg.into_events();
    result.map(|()| FleetOutcome {
        events,
        stats,
        run_id: coord_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff(1), Duration::from_millis(200));
        assert_eq!(backoff(2), Duration::from_millis(400));
        assert_eq!(backoff(3), Duration::from_millis(800));
        assert_eq!(backoff(20), Duration::from_millis(3_000), "capped");
    }

    #[test]
    fn drain_counts_only_validated_liveness() {
        let dir = std::env::temp_dir().join(format!("dr-swarm-drain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut agg = Aggregator::new(&dir, 2);
        agg.expect_worker(0, "run.shard-0-of-2");
        agg.expect_worker(1, "run.shard-1-of-2");
        // Shard 0: a stale line from an old run plus one genuine beat.
        // Full-schema fixtures — the aggregator parses, it does not grep.
        std::fs::write(
            dir.join("shard-0-of-2.events.ndjson"),
            concat!(
                "{\"schema\":\"dr-events/v1\",\"run\":\"old-run\",\"seq\":0,\"t_s\":0.1,",
                "\"kind\":\"heartbeat\",\"shard\":0,\"of\":2,\"done\":1,\"total\":9}\n",
                "{\"schema\":\"dr-events/v1\",\"run\":\"run.shard-0-of-2\",\"seq\":0,\"t_s\":0.2,",
                "\"kind\":\"heartbeat\",\"shard\":0,\"of\":2,\"done\":2,\"total\":9}\n",
            ),
        )
        .unwrap();
        // Shard 1: a crossed stream carrying shard 0's identity — well
        // formed, right run prefix pattern, wrong shard: not liveness.
        std::fs::write(
            dir.join("shard-1-of-2.events.ndjson"),
            concat!(
                "{\"schema\":\"dr-events/v1\",\"run\":\"run.shard-1-of-2\",\"seq\":0,\"t_s\":0.2,",
                "\"kind\":\"heartbeat\",\"shard\":0,\"of\":2,\"done\":2,\"total\":9}\n",
            ),
        )
        .unwrap();
        let mut detector = AnomalyDetector::new(2, AnomalyConfig::default());
        let mut progress = None;
        let mut beat_seen = vec![false; 2];
        drain(&mut agg, &mut detector, &mut progress, &mut beat_seen);
        assert!(beat_seen[0], "validated heartbeat counts as liveness");
        assert!(!beat_seen[1], "crossed shard identity is not liveness");
        assert_eq!(agg.lag(0).unwrap().foreign, 1, "stale run rejected");
        assert_eq!(agg.lag(1).unwrap().foreign, 1, "crossed shard rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
