//! Command-line driver: explore a built-in scenario, print design rules,
//! synthesize a rule-following implementation, or inspect timelines —
//! without writing any Rust. Used by the `dr-rules` binary.

use crate::dag::{build_schedule, DecisionSpace, Placement, Traversal};
use crate::mcts::{Evaluator, Mcts, MctsConfig, SharedMcts, SimEvaluator, TreeSnapshot};
use crate::ml::{render_ruleset, rulesets_for_class, RuleSet};
use crate::obs::TextExposition;
use crate::obs::{json, EventSink, Phases};
use crate::par::{resolve_threads, CacheStats};
use crate::pipeline::{
    append_entry, apply_fault_plan, certify_rulesets, compare_bench, compare_fleet,
    compare_ledgers, diff_entries, find_entry, is_bench_file, is_fleet_file, ledger_dir_from_env,
    ledger_entry_json, lint_space_watched, load_bench, load_fleet, load_ledger, merge_shards,
    mine_rules, mine_rules_timed, records_telemetry, run_pipeline, run_pipeline_instrumented,
    run_pipeline_stored, run_shard, satisfies, select, show_entry, summary_line, synthesize,
    topology_from_workload, trend_lines, Certification, CompareOptions, InstrumentedRun,
    LedgerContext, PipelineConfig, Provenance, ResilienceSummary, RunFilter, RunReport,
    SearchBackend, SearchSummary, ShardSpec, Strategy,
};
use crate::progress::ProgressRenderer;
use crate::sim::{
    benchmark, execute_traced, BenchConfig, CompiledProgram, FaultConfig, FaultPlan, Platform,
    SimError, Workload,
};
use crate::trace::{merge_chrome_json, Tracer, PIPELINE_PID};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::Path;

/// Schema tag of the `explain` command's JSON report.
pub const EXPLAIN_SCHEMA: &str = "dr-explain/v1";

/// Schema tag of the `verify-rules` command's JSON report.
pub const CERTIFY_SCHEMA: &str = "dr-certify/v1";

/// Built-in scenarios selectable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// The paper's SpMV (scaled-down matrix).
    Spmv,
    /// SpMV at full paper scale (150 000-row matrix).
    SpmvPaper,
    /// SpMV with per-neighbour granularity.
    SpmvFine,
    /// 3D halo exchange on a 2×2×2 rank cube.
    Halo,
}

impl Scenario {
    /// The scenario's command-line name (used in ledger entries).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Spmv => "spmv",
            Scenario::SpmvPaper => "spmv-paper",
            Scenario::SpmvFine => "spmv-fine",
            Scenario::Halo => "halo",
        }
    }
}

/// Subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Print the decision space summary.
    Info,
    /// Explore and print class summary.
    Explore,
    /// Explore and print the rulesets per class.
    Rules,
    /// Explore, follow the fastest-class ruleset, benchmark the result.
    Synthesize,
    /// Trace the best and worst explored implementations.
    Timeline,
    /// Statically lint the enumerated schedules (no simulation).
    Lint,
    /// Sweep seeded fault plans through the pipeline and cross-check
    /// fault-induced deadlocks against the static linter.
    Chaos,
    /// Diff two run ledgers (or two benchmark histories) for
    /// regressions (structural + statistical).
    Compare,
    /// Explain the MCTS search: per-node visit/value statistics, top-k
    /// principal variations, and per-rule provenance.
    Explain,
    /// Run the benchmark harness and append to the committed
    /// `BENCH_*.json` histories.
    Bench,
    /// Mine rulesets, then statically certify each one: the incremental
    /// space linter walks exactly the schedules satisfying the ruleset
    /// and proves none carries an error-severity diagnostic.
    VerifyRules,
    /// Validate a completed shard set's manifests, merge its durable
    /// stores bit-identically to the unsharded run, mine rules from the
    /// merged records, and append a ledger entry.
    Merge,
    /// Coordinate a process swarm: spawn shard workers as child
    /// processes, watch their heartbeat streams, SIGKILL stalled
    /// workers, re-issue dead shards with capped backoff, resume
    /// interrupted shards from the store, and merge at the end.
    Swarm,
    /// Query the run ledger: list/filter entries, show one run in
    /// detail, or diff two runs with the `compare` gate.
    Runs,
}

/// `runs` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunsCommand {
    /// Summarize matching ledger entries plus cross-run trends.
    List,
    /// Show one entry (by index or run-id prefix) in detail.
    Show(String),
    /// Diff two entries through the `compare` statistics; exits
    /// nonzero exactly when `compare` would regress on the same pair.
    Diff(String, String),
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Selected scenario.
    pub scenario: Scenario,
    /// Selected command.
    pub command: Command,
    /// Exploration budget (MCTS iterations).
    pub iterations: usize,
    /// Master seed.
    pub seed: u64,
    /// Use the random-sampling baseline instead of MCTS.
    pub random: bool,
    /// Exploration worker threads (`None` = honor `DR_THREADS`, else
    /// serial).
    pub threads: Option<usize>,
    /// Write a JSON run report (phase timings, sim stats, summaries) here.
    pub report: Option<String>,
    /// Write per-iteration search telemetry CSV here.
    pub telemetry: Option<String>,
    /// Schedule cap for `lint` (`0` = lint the whole space).
    pub max_schedules: usize,
    /// Fault plans to sweep for `chaos` (plan 0 is always clean).
    pub plans: usize,
    /// Write a merged Perfetto/Chrome trace (pipeline spans + the best
    /// implementation's simulated rank/stream timelines) here.
    pub trace: Option<String>,
    /// Append a run-ledger entry to this directory (`None` = honor the
    /// `DR_LEDGER` environment variable, else skip).
    pub ledger: Option<String>,
    /// `compare`: the two ledger paths (file or directory) to diff.
    pub compare: Option<(String, String)>,
    /// `compare`: relative phase-time regression threshold.
    pub threshold: f64,
    /// `compare`: absolute phase-time noise floor in milliseconds.
    pub abs_floor_ms: f64,
    /// `compare`: noise-band multiplier over the baseline history's MAD.
    pub noise_k: f64,
    /// Render a live progress line on stderr (single repainted line on
    /// a TTY, periodic plain lines otherwise).
    pub progress: bool,
    /// Stream structured `dr-events/v1` NDJSON to this path.
    pub events: Option<String>,
    /// Durable result-store directory: `explore` answers
    /// already-measured traversals from it and commits fresh ones;
    /// required by `--shard` and `swarm`.
    pub store: Option<String>,
    /// Run exactly one shard (`i/N`) of the exploration (requires
    /// `--store`; writes a per-shard manifest next to the store).
    pub shard: Option<String>,
    /// `swarm`: number of shard worker processes (equals the shard
    /// count).
    pub workers: usize,
    /// `merge`: the shard-set directory (the workers' `--store`).
    pub merge_dir: Option<String>,
    /// `swarm`: write the merged `dr-fleet/v1` NDJSON stream here.
    pub fleet_events: Option<String>,
    /// Write a Prometheus-style text metrics snapshot at run end.
    pub metrics_text: Option<String>,
    /// `runs`: the parsed subcommand.
    pub runs_cmd: Option<RunsCommand>,
    /// `runs list`: keep only entries whose git describe contains this.
    pub git_filter: Option<String>,
    /// `runs list`: keep only entries with this exact seed (set by an
    /// explicit `--seed`).
    pub seed_filter: Option<u64>,
}

/// Usage text printed on parse errors.
pub const USAGE: &str = "usage: dr-rules <scenario> <command> [options]
       dr-rules <scenario> compare <a> <b> [options]
       dr-rules <scenario> merge <dir> [options]
       dr-rules <scenario> runs list|show <run>|diff <a> <b> [options]
  scenarios: spmv | spmv-paper | spmv-fine | halo
  commands:  info | explore | rules | synthesize | timeline | lint |
             chaos | compare | explain | bench | verify-rules |
             merge | swarm | runs
             (omitting the command runs explore)
  options:   --iterations N (default 300)
             --seed N       (default 0)
             --random       (uniform sampling instead of MCTS)
             --threads N    (exploration worker threads; default: the
                             DR_THREADS environment variable, else 1;
                             DR_SEARCH picks the parallel MCTS backend:
                             shared = one arena-backed tree with virtual
                             loss, root = per-worker trees, auto =
                             shared above one thread)
             --report PATH    (write a JSON run report, or lint counters
                               for the lint command)
             --telemetry PATH (write per-iteration search telemetry CSV)
             --max-schedules N (lint: stop after N schedules;
                                0 = whole space; default 2048)
             --plans N      (chaos: seeded fault plans to sweep;
                             default 24, minimum 2)
             --trace PATH   (write a merged Perfetto/Chrome trace:
                             pipeline spans + the best implementation's
                             simulated rank/stream timelines)
             --ledger DIR   (append a run-ledger entry to DIR/ledger.jsonl;
                             default: the DR_LEDGER environment variable)
             --threshold R    (compare: relative phase-time regression
                               threshold; default 3.0)
             --abs-floor-ms M (compare: absolute phase-time noise floor;
                               default 25)
             --noise-k K      (compare: MAD noise-band multiplier;
                               default 5)
             --progress     (live progress line on stderr; repaints in
                             place on a TTY, plain lines otherwise)
             --events PATH  (stream structured dr-events/v1 NDJSON to
                             PATH; joinable with the ledger via run id)
             --store DIR    (durable result store: explore answers
                             already-measured traversals from DIR and
                             commits fresh measurements before returning
                             them; crash-safe, checksummed, resumable)
             --shard i/N    (run exactly shard i of N of the exploration
                             serially; requires --store; publishes
                             DIR/shard-i-of-N.manifest.json on success)
             --workers K    (swarm: shard worker processes = shard
                             count; default 3)
             --fleet-events PATH (swarm: write the merged dr-fleet/v1
                             NDJSON stream — every worker event plus the
                             coordinator's own, globally sequenced)
             --metrics-text PATH (write a Prometheus text-format metrics
                             snapshot at run end; explore and swarm)
             --git SUBSTR   (runs list: keep entries whose git describe
                             contains SUBSTR)
  compare accepts two run-ledger paths, two BENCH_*.json benchmark
  histories, or two dr-fleet/v1 merged streams (auto-detected; mixing
  kinds is an error; last entry of B vs history of A for ledgers).
  explain always searches with MCTS (it explains the MCTS tree) and
  honors --iterations/--seed; --report writes dr-explain/v1 JSON.
  explain renders the shared arena when DR_SEARCH=shared (or auto
  resolves to more than one thread), the serial tree otherwise.
  bench appends to BENCH_pipeline.json and BENCH_explore.json in the
  working directory; the scenario picks the scale (spmv = small,
  spmv-paper = paper) and DR_SEED picks the seed, so entries stay
  comparable with the committed histories.
  merge validates a completed shard set (gaps, overlaps, duplicate
  hashes, per-shard fingerprints), merges the stores bit-identically to
  the unsharded run, mines rules from the merged records, and appends a
  ledger entry to the shard directory (or --ledger) so `compare` can
  gate the merged fingerprint against a single-process baseline; pass
  the same --iterations/--seed/--random the shards ran with.
  swarm spawns --workers shard processes of this same binary over
  --store, merges every worker's event stream plus its own into one
  globally-sequenced dr-fleet/v1 stream (--fleet-events), runs online
  anomaly detection (straggler / rate-collapse / silent-worker) over
  heartbeat gaps and eval rates, declares a worker dead when its
  validated stream stops carrying heartbeats (DR_SWARM_STALL_MS,
  default 10000) and SIGKILLs it citing the detected anomaly,
  re-issues dead shards with capped exponential backoff, quarantines a
  shard after repeated failures (DR_SWARM_MAX_ATTEMPTS, default 3),
  resumes interrupted shards from the store, then merges; --trace
  writes the merged swarm timeline (one process per worker, flow
  arrows from shard issue to completion) and --progress renders a
  fleet-wide rollup.
  runs queries the ledger named by --ledger (or DR_LEDGER): `runs
  list` summarizes entries for the scenario (filter with --seed and
  --git) plus cross-run phase/cache/resilience trends, `runs show
  <run>` prints one entry by index or run-id prefix, and `runs diff
  <a> <b>` gates entry b against entry a exactly like compare
  (--threshold/--abs-floor-ms/--noise-k apply; nonzero exit on
  regression).
  verify-rules mines rulesets at --iterations/--seed, then statically
  certifies each one: the incremental space linter walks exactly the
  schedules satisfying the ruleset (capped by --max-schedules; 0 =
  unlimited) and proves none carries an error-severity diagnostic.
  --report writes dr-certify/v1 JSON; the exit code is nonzero when
  any fastest-class ruleset is refuted by a counterexample (a capped,
  counterexample-free walk reports inconclusive without failing).";

/// Parses command-line arguments (excluding `argv[0]`).
pub fn parse(args: &[String]) -> Result<CliOptions, String> {
    let mut it = args.iter().peekable();
    let scenario = match it.next().map(String::as_str) {
        Some("spmv") => Scenario::Spmv,
        Some("spmv-paper") => Scenario::SpmvPaper,
        Some("spmv-fine") => Scenario::SpmvFine,
        Some("halo") => Scenario::Halo,
        Some(other) => return Err(format!("unknown scenario {other:?}\n{USAGE}")),
        None => return Err(format!("missing scenario\n{USAGE}")),
    };
    // A flag right after the scenario means the command was omitted:
    // default to `explore` (so `dr-rules spmv --trace out.json` works).
    let command = match it.peek().map(|s| s.as_str()) {
        Some(s) if s.starts_with("--") => Command::Explore,
        _ => match it.next().map(String::as_str) {
            Some("info") => Command::Info,
            Some("explore") => Command::Explore,
            Some("rules") => Command::Rules,
            Some("synthesize") => Command::Synthesize,
            Some("timeline") => Command::Timeline,
            Some("lint") => Command::Lint,
            Some("chaos") => Command::Chaos,
            Some("compare") => Command::Compare,
            Some("explain") => Command::Explain,
            Some("bench") => Command::Bench,
            Some("verify-rules") => Command::VerifyRules,
            Some("merge") => Command::Merge,
            Some("swarm") => Command::Swarm,
            Some("runs") => Command::Runs,
            Some(other) => return Err(format!("unknown command {other:?}\n{USAGE}")),
            None => return Err(format!("missing command\n{USAGE}")),
        },
    };
    let mut opts = CliOptions {
        scenario,
        command,
        iterations: 300,
        seed: 0,
        random: false,
        threads: None,
        report: None,
        telemetry: None,
        max_schedules: 2048,
        plans: 24,
        trace: None,
        ledger: None,
        compare: None,
        threshold: 3.0,
        abs_floor_ms: 25.0,
        noise_k: 5.0,
        progress: false,
        events: None,
        store: None,
        shard: None,
        workers: 3,
        merge_dir: None,
        fleet_events: None,
        metrics_text: None,
        runs_cmd: None,
        git_filter: None,
        seed_filter: None,
    };
    if command == Command::Runs {
        let sub = it.next().ok_or(format!(
            "runs needs a subcommand: list | show | diff\n{USAGE}"
        ))?;
        opts.runs_cmd = Some(match sub.as_str() {
            "list" => RunsCommand::List,
            "show" => {
                let sel = it
                    .next()
                    .ok_or(format!("runs show needs a run index or id prefix\n{USAGE}"))?;
                RunsCommand::Show(sel.clone())
            }
            "diff" => {
                let a = it
                    .next()
                    .ok_or(format!("runs diff needs two run selectors\n{USAGE}"))?;
                let b = it
                    .next()
                    .ok_or(format!("runs diff needs two run selectors\n{USAGE}"))?;
                RunsCommand::Diff(a.clone(), b.clone())
            }
            other => return Err(format!("unknown runs subcommand {other:?}\n{USAGE}")),
        });
    }
    if command == Command::Merge {
        let dir = it
            .next()
            .ok_or(format!("merge needs the shard directory\n{USAGE}"))?;
        if dir.starts_with("--") {
            return Err(format!("merge needs the shard directory first\n{USAGE}"));
        }
        opts.merge_dir = Some(dir.clone());
    }
    if command == Command::Compare {
        let a = it
            .next()
            .ok_or(format!("compare needs two ledger paths\n{USAGE}"))?;
        let b = it
            .next()
            .ok_or(format!("compare needs two ledger paths\n{USAGE}"))?;
        if a.starts_with("--") || b.starts_with("--") {
            return Err(format!("compare needs two ledger paths first\n{USAGE}"));
        }
        opts.compare = Some((a.clone(), b.clone()));
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--iterations" => {
                let v = it.next().ok_or("--iterations needs a value")?;
                opts.iterations = v
                    .parse()
                    .map_err(|_| format!("bad --iterations value {v:?}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed value {v:?}"))?;
                opts.seed_filter = Some(opts.seed);
            }
            "--random" => opts.random = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                opts.threads = Some(n);
            }
            "--report" => {
                opts.report = Some(it.next().ok_or("--report needs a path")?.clone());
            }
            "--telemetry" => {
                opts.telemetry = Some(it.next().ok_or("--telemetry needs a path")?.clone());
            }
            "--max-schedules" => {
                let v = it.next().ok_or("--max-schedules needs a value")?;
                opts.max_schedules = v
                    .parse()
                    .map_err(|_| format!("bad --max-schedules value {v:?}"))?;
            }
            "--plans" => {
                let v = it.next().ok_or("--plans needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --plans value {v:?}"))?;
                if n < 2 {
                    return Err("--plans must be at least 2 (plan 0 is the clean control)".into());
                }
                opts.plans = n;
            }
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a path")?.clone());
            }
            "--ledger" => {
                opts.ledger = Some(it.next().ok_or("--ledger needs a directory")?.clone());
            }
            "--threshold" => {
                let v = it.next().ok_or("--threshold needs a value")?;
                opts.threshold = v
                    .parse()
                    .map_err(|_| format!("bad --threshold value {v:?}"))?;
            }
            "--abs-floor-ms" => {
                let v = it.next().ok_or("--abs-floor-ms needs a value")?;
                opts.abs_floor_ms = v
                    .parse()
                    .map_err(|_| format!("bad --abs-floor-ms value {v:?}"))?;
            }
            "--noise-k" => {
                let v = it.next().ok_or("--noise-k needs a value")?;
                opts.noise_k = v
                    .parse()
                    .map_err(|_| format!("bad --noise-k value {v:?}"))?;
            }
            "--progress" => opts.progress = true,
            "--events" => {
                opts.events = Some(it.next().ok_or("--events needs a path")?.clone());
            }
            "--store" => {
                opts.store = Some(it.next().ok_or("--store needs a directory")?.clone());
            }
            "--shard" => {
                let v = it.next().ok_or("--shard needs i/N (e.g. 0/3)")?;
                ShardSpec::parse(v)?;
                opts.shard = Some(v.clone());
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --workers value {v:?}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                opts.workers = n;
            }
            "--fleet-events" => {
                opts.fleet_events = Some(it.next().ok_or("--fleet-events needs a path")?.clone());
            }
            "--metrics-text" => {
                opts.metrics_text = Some(it.next().ok_or("--metrics-text needs a path")?.clone());
            }
            "--git" => {
                opts.git_filter = Some(it.next().ok_or("--git needs a substring")?.clone());
            }
            other => return Err(format!("unknown option {other:?}\n{USAGE}")),
        }
    }
    if opts.shard.is_some() && opts.store.is_none() {
        return Err("--shard requires --store DIR (the shard's durable result store)".into());
    }
    if opts.shard.is_some() && command != Command::Explore {
        return Err("--shard only applies to the explore command".into());
    }
    if command == Command::Swarm && opts.store.is_none() {
        return Err("swarm requires --store DIR (the shared shard store)".into());
    }
    if opts.fleet_events.is_some() && command != Command::Swarm {
        return Err("--fleet-events only applies to the swarm command".into());
    }
    Ok(opts)
}

/// A scenario erased to the pieces the driver needs.
struct Instance {
    space: DecisionSpace,
    workload: Box<dyn Workload + Sync>,
    platform: Platform,
}

fn instance(opts: &CliOptions) -> Instance {
    match opts.scenario {
        Scenario::Spmv => {
            let sc = crate::spmv::SpmvScenario::small(opts.seed);
            Instance {
                space: sc.space,
                workload: Box::new(sc.workload),
                platform: sc.platform,
            }
        }
        Scenario::SpmvPaper => {
            let sc = crate::spmv::SpmvScenario::paper(opts.seed);
            Instance {
                space: sc.space,
                workload: Box::new(sc.workload),
                platform: sc.platform,
            }
        }
        Scenario::SpmvFine => {
            use crate::spmv::{BandedSpec, GpuModel, Granularity, SpmvDagConfig, SpmvScenario};
            let sc = SpmvScenario::build(
                &BandedSpec::small(opts.seed),
                4,
                2,
                &SpmvDagConfig {
                    with_unpack: true,
                    granularity: Granularity::PerNeighbor,
                },
                &GpuModel::default(),
                Platform::perlmutter_like(),
            );
            Instance {
                space: sc.space,
                workload: Box::new(sc.workload),
                platform: sc.platform,
            }
        }
        Scenario::Halo => {
            let sc = crate::halo::HaloScenario::cube2(opts.seed);
            Instance {
                space: sc.space,
                workload: Box::new(sc.workload),
                platform: sc.platform,
            }
        }
    }
}

fn strategy(opts: &CliOptions) -> Strategy {
    if opts.random {
        Strategy::Random {
            iterations: opts.iterations,
            seed: opts.seed,
        }
    } else {
        Strategy::Mcts {
            iterations: opts.iterations,
            config: MctsConfig {
                seed: opts.seed,
                ..Default::default()
            },
        }
    }
}

/// Builds the structured-event sink requested by `--events`/`--progress`
/// (`None` when neither flag is set). The sink carries the same run id
/// as the report/ledger provenance so NDJSON streams can be joined with
/// ledger entries.
fn event_sink(opts: &CliOptions) -> Result<Option<EventSink>, String> {
    if !opts.progress && opts.events.is_none() {
        return Ok(None);
    }
    let mut sink = EventSink::new(&Provenance::capture().run_id);
    if let Some(path) = &opts.events {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create events file {path:?}: {e}"))?;
        sink = sink.with_writer(Box::new(std::io::BufWriter::new(file)));
    }
    if opts.progress {
        sink = sink.with_observer(Box::new(ProgressRenderer::new()));
    }
    Ok(Some(sink))
}

/// Pre-flight check of every artifact path the run will write, so a
/// long exploration cannot end in a `cannot write ...` surprise: each
/// directory-valued path (`--ledger`, `--store`) is created and probed
/// with a scratch file, and each file-valued path (`--report`,
/// `--telemetry`, `--trace` — the swarm timeline included, `--events`,
/// `--fleet-events`, `--metrics-text`) is opened for writing (append
/// when it already exists, else create-and-remove). The first offending
/// path fails fast, named.
fn preflight_artifact_paths(opts: &CliOptions) -> Result<(), String> {
    let bad = |path: &str, e: std::io::Error| format!("artifact path not writable: {path}: {e}");
    let ledger = opts
        .ledger
        .clone()
        .or_else(|| ledger_dir_from_env().map(|p| p.display().to_string()));
    for dir in [ledger.as_ref(), opts.store.as_ref()].into_iter().flatten() {
        let probe = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            let p = Path::new(dir).join(".dr-preflight");
            std::fs::write(&p, b"ok")?;
            std::fs::remove_file(&p)
        };
        probe().map_err(|e| bad(dir, e))?;
    }
    for path in [
        opts.report.as_ref(),
        opts.telemetry.as_ref(),
        opts.events.as_ref(),
        opts.trace.as_ref(),
        opts.fleet_events.as_ref(),
        opts.metrics_text.as_ref(),
    ]
    .into_iter()
    .flatten()
    {
        let probe = || -> std::io::Result<()> {
            if Path::new(path).exists() {
                std::fs::OpenOptions::new().append(true).open(path)?;
            } else {
                std::fs::File::create(path)?;
                std::fs::remove_file(path)?;
            }
            Ok(())
        };
        probe().map_err(|e| bad(path, e))?;
    }
    Ok(())
}

/// Runs the parsed command, writing human-readable output to `out`.
///
/// Returns `Err` — a nonzero process exit — when `compare` finds a
/// regression beyond threshold, in addition to ordinary failures.
pub fn run(opts: &CliOptions, out: &mut impl std::io::Write) -> Result<(), String> {
    let fail = |e: SimError| format!("simulation failed: {e}");
    let io = |e: std::io::Error| format!("write failed: {e}");

    preflight_artifact_paths(opts)?;

    if opts.command == Command::Compare {
        let (pa, pb) = opts.compare.as_ref().ok_or("compare needs two paths")?;
        let copts = CompareOptions {
            ratio: opts.threshold,
            abs_floor_s: opts.abs_floor_ms / 1e3,
            noise_k: opts.noise_k,
        };
        // Benchmark histories and merged fleet streams are auto-detected
        // by their schema tags, so the same grammar gates ledgers,
        // BENCH_*.json files, and dr-fleet/v1 streams.
        let fleet_a = is_fleet_file(Path::new(pa));
        let fleet_b = is_fleet_file(Path::new(pb));
        let report = if fleet_a || fleet_b {
            if fleet_a != fleet_b {
                let kind = |fleet: bool, p: &str| {
                    if fleet {
                        "fleet"
                    } else if is_bench_file(Path::new(p)) {
                        "bench"
                    } else {
                        "ledger"
                    }
                };
                return Err(format!(
                    "cannot compare a {:?} history against a {:?} history",
                    kind(fleet_a, pa),
                    kind(fleet_b, pb)
                ));
            }
            let a = load_fleet(Path::new(pa))?;
            let b = load_fleet(Path::new(pb))?;
            compare_fleet(&a, &b)
        } else if is_bench_file(Path::new(pa)) || is_bench_file(Path::new(pb)) {
            let (ka, a) = load_bench(Path::new(pa))?;
            let (kb, b) = load_bench(Path::new(pb))?;
            if ka != kb {
                return Err(format!(
                    "cannot compare a {ka:?} history against a {kb:?} history"
                ));
            }
            compare_bench(&ka, &a, &b, &copts)
        } else {
            let a = load_ledger(Path::new(pa))?;
            let b = load_ledger(Path::new(pb))?;
            compare_ledgers(&a, &b, &copts)
        };
        write!(out, "{}", report.render_text()).map_err(io)?;
        if report.is_regression() {
            return Err(format!(
                "{} regression(s) beyond threshold",
                report.regressions.len()
            ));
        }
        return Ok(());
    }

    if opts.command == Command::Bench {
        return run_bench(opts, out);
    }

    if opts.command == Command::Runs {
        return run_runs(opts, out);
    }

    let inst = instance(opts);

    if opts.command == Command::Info {
        writeln!(out, "decision ops : {}", inst.space.num_ops()).map_err(io)?;
        writeln!(out, "streams      : {}", inst.space.num_streams()).map_err(io)?;
        writeln!(out, "traversals   : {}", inst.space.count_traversals()).map_err(io)?;
        for op in inst.space.ops() {
            writeln!(out, "  {}", op.name).map_err(io)?;
        }
        return Ok(());
    }

    if opts.command == Command::Lint {
        let topo = topology_from_workload(&inst.space, &inst.workload, &inst.platform);
        let sink = event_sink(opts)?;
        let lint = lint_space_watched(&inst.space, Some(&topo), opts.max_schedules, sink.as_ref());
        write!(out, "{}", lint.counters.render_text()).map_err(io)?;
        for line in &lint.sample {
            writeln!(out, "  {line}").map_err(io)?;
        }
        writeln!(
            out,
            "incremental: {} hb expansions (cold would be {}), {} distinct diagnostics",
            lint.stats.hb_expansions,
            lint.stats.cold_hb_expansions,
            lint.diags.len()
        )
        .map_err(io)?;
        if lint.truncated {
            writeln!(
                out,
                "note: stopped after {} schedules (--max-schedules; 0 = whole space)",
                opts.max_schedules
            )
            .map_err(io)?;
        }
        if let (Some(sink), Some(path)) = (&sink, &opts.events) {
            sink.flush();
            writeln!(
                out,
                "wrote {} events to {path} (run {})",
                sink.seq(),
                sink.run_id()
            )
            .map_err(io)?;
        }
        if let Some(path) = &opts.report {
            std::fs::write(path, lint.counters.to_json())
                .map_err(|e| format!("cannot write report {path:?}: {e}"))?;
            writeln!(out, "wrote lint counters to {path}").map_err(io)?;
        }
        return Ok(());
    }

    if opts.command == Command::VerifyRules {
        return run_verify_rules(opts, &inst, out);
    }

    if opts.command == Command::Chaos {
        return run_chaos(opts, &inst, out);
    }

    if opts.command == Command::Explain {
        return run_explain(opts, &inst, out);
    }

    if opts.command == Command::Merge {
        let dir = opts.merge_dir.as_ref().ok_or("merge needs a directory")?;
        return run_merge(opts, &inst, Path::new(dir), out);
    }

    if opts.command == Command::Swarm {
        let store_root = opts.store.clone().ok_or("swarm requires --store")?;
        let outcome = crate::swarm::coordinate(opts, Path::new(&store_root), out)?;
        if let Some(path) = &opts.fleet_events {
            writeln!(
                out,
                "wrote {} merged fleet events to {path} (run {})",
                outcome.stats.merged_events, outcome.run_id
            )
            .map_err(io)?;
        }
        if let Some(path) = &opts.trace {
            // For swarm, --trace means the merged fleet timeline: one
            // process per worker plus the coordinator, flow arrows from
            // shard issue to completion.
            let json = crate::fleet::swarm_chrome_json(&outcome.events, opts.workers);
            std::fs::write(path, json).map_err(|e| format!("cannot write trace {path:?}: {e}"))?;
            writeln!(
                out,
                "wrote swarm timeline ({} events) to {path} — open at ui.perfetto.dev",
                outcome.events.len()
            )
            .map_err(io)?;
        }
        if let Some(path) = &opts.metrics_text {
            let text = fleet_metrics_text(&outcome);
            std::fs::write(path, text)
                .map_err(|e| format!("cannot write metrics snapshot {path:?}: {e}"))?;
            writeln!(out, "wrote metrics snapshot to {path}").map_err(io)?;
        }
        return run_merge(opts, &inst, Path::new(&store_root), out);
    }

    if let Some(shard) = &opts.shard {
        // One shard, serially, through the durable store: the swarm
        // worker entry point, also usable by hand.
        let spec = ShardSpec::parse(shard)?;
        let store_root = opts.store.as_ref().ok_or("--shard requires --store")?;
        let sink = event_sink(opts)?;
        let outcome = run_shard(
            opts.scenario.name(),
            &inst.space,
            &inst.workload,
            &inst.platform,
            strategy(opts),
            spec,
            &PipelineConfig::quick(),
            Path::new(store_root),
            sink.as_ref(),
        )
        .map_err(fail)?;
        let m = &outcome.manifest;
        writeln!(
            out,
            "shard {spec}: {} records, fingerprint {:016x}, store {} hits / {} appended, \
             {} quarantined, {:.2}s",
            m.records, m.fingerprint, m.store.hits, m.store.appended, m.failures, m.seconds
        )
        .map_err(io)?;
        writeln!(out, "wrote manifest {}", outcome.manifest_path.display()).map_err(io)?;
        if let (Some(sink), Some(path)) = (&sink, &opts.events) {
            sink.flush();
            writeln!(
                out,
                "wrote {} events to {path} (run {})",
                sink.seq(),
                sink.run_id()
            )
            .map_err(io)?;
        }
        return Ok(());
    }

    let tracer = if opts.trace.is_some() {
        Tracer::new()
    } else {
        Tracer::disabled()
    };
    // The event sink carries the same run id as the report/ledger
    // provenance so NDJSON streams can be joined with ledger entries.
    let sink = event_sink(opts)?;
    let store = match &opts.store {
        Some(dir) => Some(std::sync::Arc::new(
            crate::store::ResultStore::open(Path::new(dir))
                .map_err(|e| format!("cannot open result store {dir:?}: {e}"))?,
        )),
        None => None,
    };
    let run = run_pipeline_stored(
        &inst.space,
        &inst.workload,
        &inst.platform,
        strategy(opts),
        &PipelineConfig {
            threads: opts.threads.unwrap_or(0),
            search: SearchBackend::from_env(),
            ..PipelineConfig::quick()
        },
        &tracer,
        sink.as_ref(),
        store.clone(),
    )
    .map_err(fail)?;

    if let Some(store) = &store {
        let s = store.stats();
        writeln!(
            out,
            "store: {} hits, {} misses, {} loaded, {} appended ({} committed records)",
            s.hits,
            s.misses,
            s.loaded,
            s.appended,
            store.len()
        )
        .map_err(io)?;
    }
    if let (Some(sink), Some(path)) = (&sink, &opts.events) {
        sink.flush();
        writeln!(
            out,
            "wrote {} events to {path} (run {})",
            sink.seq(),
            sink.run_id()
        )
        .map_err(io)?;
    }
    if let Some(path) = &opts.trace {
        let merged = merged_trace(&inst, &run, &tracer, opts.seed).map_err(fail)?;
        std::fs::write(path, merged).map_err(|e| format!("cannot write trace {path:?}: {e}"))?;
        writeln!(
            out,
            "wrote merged trace ({} spans) to {path} — open at ui.perfetto.dev",
            tracer.span_count()
        )
        .map_err(io)?;
    }
    if let Some(dir) = opts
        .ledger
        .clone()
        .map(std::path::PathBuf::from)
        .or_else(ledger_dir_from_env)
    {
        let ctx = LedgerContext {
            scenario: opts.scenario.name(),
            strategy: strategy(opts).name(),
            seed: opts.seed,
            iterations: opts.iterations as u64,
        };
        let entry = ledger_entry_json(&ctx, &run, &inst.space);
        let path = append_entry(&dir, &entry)
            .map_err(|e| format!("cannot append ledger entry to {}: {e}", dir.display()))?;
        writeln!(out, "appended ledger entry to {}", path.display()).map_err(io)?;
    }
    if let Some(path) = &opts.report {
        std::fs::write(path, run.report.to_json())
            .map_err(|e| format!("cannot write report {path:?}: {e}"))?;
        writeln!(out, "wrote run report to {path}").map_err(io)?;
    }
    if let Some(path) = &opts.telemetry {
        std::fs::write(path, run.telemetry.to_csv())
            .map_err(|e| format!("cannot write telemetry {path:?}: {e}"))?;
        writeln!(
            out,
            "wrote {} telemetry rows to {path}",
            run.telemetry.len()
        )
        .map_err(io)?;
    }
    if let Some(path) = &opts.metrics_text {
        let text = run_metrics_text(opts, &run, store.as_deref());
        std::fs::write(path, text)
            .map_err(|e| format!("cannot write metrics snapshot {path:?}: {e}"))?;
        writeln!(out, "wrote metrics snapshot to {path}").map_err(io)?;
    }
    let result = run.result;

    match opts.command {
        Command::Info
        | Command::Lint
        | Command::Chaos
        | Command::Compare
        | Command::Explain
        | Command::Bench
        | Command::VerifyRules
        | Command::Merge
        | Command::Swarm
        | Command::Runs => {
            unreachable!("handled above")
        }
        Command::Explore => {
            let times = result.times();
            let fastest = times.iter().copied().fold(f64::INFINITY, f64::min);
            let slowest = times.iter().copied().fold(0.0f64, f64::max);
            writeln!(out, "explored {} implementations", result.records.len()).map_err(io)?;
            writeln!(
                out,
                "spread   {:.2}x ({:.1} µs .. {:.1} µs)",
                slowest / fastest,
                fastest * 1e6,
                slowest * 1e6
            )
            .map_err(io)?;
            writeln!(out, "classes  {}", result.labeling.num_classes).map_err(io)?;
            for (c, &(lo, hi)) in result.labeling.class_ranges.iter().enumerate() {
                let members = result.labeling.labels.iter().filter(|&&l| l == c).count();
                writeln!(
                    out,
                    "  class {c}: {members} impls, {:.1} µs .. {:.1} µs",
                    lo * 1e6,
                    hi * 1e6
                )
                .map_err(io)?;
            }
        }
        Command::Rules => {
            for class in 0..result.labeling.num_classes {
                writeln!(out, "== class {class} ==").map_err(io)?;
                for rs in rulesets_for_class(&result.rulesets, class).iter().take(3) {
                    writeln!(
                        out,
                        "  ruleset ({} samples{}):",
                        rs.samples,
                        if rs.pure { "" } else { ", impure" }
                    )
                    .map_err(io)?;
                    for line in render_ruleset(rs, &inst.space) {
                        writeln!(out, "    - {line}").map_err(io)?;
                    }
                }
            }
        }
        Command::Synthesize => {
            let sets = rulesets_for_class(&result.rulesets, 0);
            let rs = sets.first().ok_or("no fastest-class ruleset found")?;
            for line in render_ruleset(rs, &inst.space) {
                writeln!(out, "rule: {line}").map_err(io)?;
            }
            let t = synthesize(&inst.space, &rs.rules)
                .ok_or("rules are unsatisfiable (try more iterations)")?;
            let time = bench_traversal(&inst, &t, opts.seed).map_err(fail)?;
            let (_, hi) = result.labeling.class_ranges[0];
            writeln!(
                out,
                "synthesized implementation: {:.1} µs (class-0 max {:.1} µs)",
                time * 1e6,
                hi * 1e6
            )
            .map_err(io)?;
        }
        Command::Timeline => {
            let best = result
                .records
                .iter()
                .min_by(|a, b| a.result.time().partial_cmp(&b.result.time()).unwrap())
                .ok_or("no records")?;
            let worst = result
                .records
                .iter()
                .max_by(|a, b| a.result.time().partial_cmp(&b.result.time()).unwrap())
                .ok_or("no records")?;
            for (tag, rec) in [("fastest", best), ("slowest", worst)] {
                let schedule = build_schedule(&inst.space, &rec.traversal);
                let prog = CompiledProgram::compile(&schedule, &inst.workload).map_err(fail)?;
                let (outcome, trace) = execute_traced(
                    &prog,
                    &inst.platform.clone().noiseless(),
                    &mut SmallRng::seed_from_u64(opts.seed),
                )
                .map_err(fail)?;
                writeln!(out, "== {tag}: {:.1} µs ==", outcome.time() * 1e6).map_err(io)?;
                write!(out, "{}", trace.ascii_gantt(0, 96)).map_err(io)?;
            }
        }
    }
    Ok(())
}

/// The `runs` command: query the ledger named by `--ledger` (or
/// `DR_LEDGER`). `list` summarizes the entries matching the scenario
/// (plus `--seed`/`--git` filters) and appends cross-run trends; `show`
/// prints one entry by index or run-id prefix; `diff` gates entry `b`
/// against entry `a` through exactly the `compare` statistics, so its
/// exit status matches what `compare` would say about the same pair.
fn run_runs(opts: &CliOptions, out: &mut impl std::io::Write) -> Result<(), String> {
    let io = |e: std::io::Error| format!("write failed: {e}");
    let dir = opts
        .ledger
        .clone()
        .map(std::path::PathBuf::from)
        .or_else(ledger_dir_from_env)
        .ok_or("runs needs --ledger DIR (or DR_LEDGER) naming the ledger")?;
    let entries = load_ledger(&dir)?;
    match opts.runs_cmd.as_ref().ok_or("runs needs a subcommand")? {
        RunsCommand::List => {
            let filter = RunFilter {
                scenario: Some(opts.scenario.name().to_string()),
                seed: opts.seed_filter,
                git: opts.git_filter.clone(),
            };
            let selected = select(&entries, &filter);
            for (i, e) in &selected {
                writeln!(out, "{}", summary_line(*i, e)).map_err(io)?;
            }
            if selected.len() >= 2 {
                let just: Vec<&json::Value> = selected.iter().map(|(_, e)| *e).collect();
                for line in trend_lines(&just) {
                    writeln!(out, "{line}").map_err(io)?;
                }
            }
            writeln!(
                out,
                "{} of {} ledger entries match",
                selected.len(),
                entries.len()
            )
            .map_err(io)?;
        }
        RunsCommand::Show(sel) => {
            let (i, e) = find_entry(&entries, sel)?;
            write!(out, "{}", show_entry(i, e)).map_err(io)?;
        }
        RunsCommand::Diff(a, b) => {
            let (_, ea) = find_entry(&entries, a)?;
            let (_, eb) = find_entry(&entries, b)?;
            let copts = CompareOptions {
                ratio: opts.threshold,
                abs_floor_s: opts.abs_floor_ms / 1e3,
                noise_k: opts.noise_k,
            };
            let report = diff_entries(ea, eb, &copts);
            write!(out, "{}", report.render_text()).map_err(io)?;
            if report.is_regression() {
                return Err(format!(
                    "{} regression(s) beyond threshold",
                    report.regressions.len()
                ));
            }
        }
    }
    Ok(())
}

/// Renders the swarm's fleet telemetry as a Prometheus text-format
/// snapshot: aggregation totals, per-worker stream counters, and counts
/// of the coordinator's decision events.
fn fleet_metrics_text(outcome: &crate::swarm::FleetOutcome) -> String {
    let mut exp = TextExposition::new();
    let run = outcome.run_id.as_str();
    exp.value(
        "dr_fleet_merged_events_total",
        "Events in the merged dr-fleet/v1 stream.",
        "counter",
        &[("run", run)],
        outcome.stats.merged_events as f64,
    );
    exp.value(
        "dr_fleet_coordinator_events_total",
        "Coordinator events in the merged stream.",
        "counter",
        &[("run", run)],
        outcome.stats.coordinator_events as f64,
    );
    for kind in [
        "anomaly",
        "worker-kill",
        "shard-retry",
        "shard-quarantined",
        "shard-complete",
        "shard-resumed",
    ] {
        let n = outcome.events.iter().filter(|e| e.kind == kind).count();
        let name = format!("dr_fleet_{}_total", kind.replace('-', "_"));
        exp.value(
            &name,
            "Coordinator decision events by kind.",
            "counter",
            &[("run", run)],
            n as f64,
        );
    }
    for (i, w) in outcome.stats.workers.iter().enumerate() {
        let idx = i.to_string();
        let labels = [("run", run), ("worker", idx.as_str())];
        exp.value(
            "dr_fleet_worker_events_total",
            "Validated events merged per worker stream.",
            "counter",
            &labels,
            w.events as f64,
        );
        exp.value(
            "dr_fleet_worker_malformed_total",
            "Malformed lines rejected per worker stream.",
            "counter",
            &labels,
            w.malformed as f64,
        );
        exp.value(
            "dr_fleet_worker_foreign_total",
            "Lines rejected for a foreign run or shard identity.",
            "counter",
            &labels,
            w.foreign as f64,
        );
        if let Some(seen) = w.last_seen_s {
            exp.value(
                "dr_fleet_worker_last_seen_seconds",
                "Coordinator clock at the worker's last merged event.",
                "gauge",
                &labels,
                seen,
            );
        }
    }
    exp.render().to_string()
}

/// Renders a single-process run as a Prometheus text-format snapshot:
/// phase durations, record/class counts, and cache statistics.
fn run_metrics_text(
    opts: &CliOptions,
    run: &InstrumentedRun,
    store: Option<&crate::store::ResultStore>,
) -> String {
    let mut exp = TextExposition::new();
    let scenario = opts.scenario.name();
    let strategy_name = strategy(opts).name();
    let base = [("scenario", scenario), ("strategy", strategy_name)];
    for (name, seconds) in run.report.phases.entries() {
        let labels = [
            ("scenario", scenario),
            ("strategy", strategy_name),
            ("phase", name.as_str()),
        ];
        exp.value(
            "dr_run_phase_seconds",
            "Wall-clock seconds per pipeline phase.",
            "gauge",
            &labels,
            *seconds,
        );
    }
    exp.value(
        "dr_run_records",
        "Explored implementation records.",
        "gauge",
        &base,
        run.result.records.len() as f64,
    );
    exp.value(
        "dr_run_classes",
        "Performance classes found by labeling.",
        "gauge",
        &base,
        run.result.labeling.num_classes as f64,
    );
    exp.value(
        "dr_run_cache_hits_total",
        "Evaluation cache hits.",
        "counter",
        &base,
        run.cache.hits as f64,
    );
    exp.value(
        "dr_run_cache_misses_total",
        "Evaluation cache misses.",
        "counter",
        &base,
        run.cache.misses as f64,
    );
    if let Some(store) = store {
        let s = store.stats();
        exp.value(
            "dr_run_store_hits_total",
            "Durable result-store hits.",
            "counter",
            &base,
            s.hits as f64,
        );
        exp.value(
            "dr_run_store_misses_total",
            "Durable result-store misses.",
            "counter",
            &base,
            s.misses as f64,
        );
    }
    exp.render().to_string()
}

/// The `bench` command: run both benchmark harnesses (pipeline phases,
/// exploration scaling) and append each report to its committed
/// `BENCH_*.json` history in the working directory. The scenario picks
/// the scale and `DR_SEED` the seed so CLI-appended entries stay
/// comparable with entries appended by the standalone binaries.
fn run_bench(opts: &CliOptions, out: &mut impl std::io::Write) -> Result<(), String> {
    let io = |e: std::io::Error| format!("write failed: {e}");
    let scale = match opts.scenario {
        Scenario::Spmv => "small",
        Scenario::SpmvPaper => "paper",
        _ => return Err("bench supports the spmv (small scale) and spmv-paper scenarios".into()),
    };
    let seed = dr_bench::seed();
    type Harness =
        fn(&str, u64, &mut dyn std::io::Write) -> Result<String, Box<dyn std::error::Error>>;
    let runs: [(&str, &str, Harness); 2] = [
        (
            "pipeline",
            "BENCH_pipeline.json",
            dr_bench::harness::pipeline_report,
        ),
        (
            "explore",
            "BENCH_explore.json",
            dr_bench::harness::explore_report,
        ),
    ];
    for (kind, file, harness) in runs {
        let report = harness(scale, seed, out).map_err(|e| format!("{kind} bench failed: {e}"))?;
        let entries = dr_bench::append_history(Path::new(file), kind, &report)
            .map_err(|e| format!("cannot append to {file}: {e}"))?;
        writeln!(out, "appended to {file} ({entries} entries)").map_err(io)?;
    }
    Ok(())
}

/// Renders a placement as `<op-name>` or `<op-name>@s<stream>`.
fn placement_str(space: &DecisionSpace, p: &Placement) -> String {
    match p.stream {
        Some(s) => format!("{}@s{s}", space.ops()[p.op].name),
        None => space.ops()[p.op].name.clone(),
    }
}

/// Median of an unsorted, non-empty slice (even length: mean of the two
/// middle values).
fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Per-ruleset provenance: the indices (into the explored record set)
/// of the records satisfying the ruleset's predicates, grouped by the
/// records' performance class.
fn ruleset_support(
    space: &DecisionSpace,
    records: &[crate::mcts::ExploredRecord],
    labels: &[usize],
    num_classes: usize,
    rs: &RuleSet,
) -> Vec<Vec<usize>> {
    let mut support = vec![Vec::new(); num_classes];
    for (i, rec) in records.iter().enumerate() {
        if satisfies(space, &rec.traversal, &rs.rules) {
            support[labels[i]].push(i);
        }
    }
    support
}

/// The `explain` command: run a standalone MCTS at the requested budget
/// (the serial tree by default; the shared arena when `DR_SEARCH=shared`
/// or when `Auto` resolves to more than one thread), export per-node
/// visit/value statistics and the top-k principal variations, then mine
/// rules from the explored records and attach per-rule provenance —
/// decision-path predicates, supporting record indices by class, leaf
/// purity, and the simulated-time distribution of each leaf's
/// supporting records.
fn run_explain(
    opts: &CliOptions,
    inst: &Instance,
    out: &mut impl std::io::Write,
) -> Result<(), String> {
    let fail = |e: SimError| format!("simulation failed: {e}");
    let io = |e: std::io::Error| format!("write failed: {e}");
    const TOP_K: usize = 5;
    const MAX_NODES: usize = 12;
    const RULESETS_PER_CLASS: usize = 3;
    const INDICES_SHOWN: usize = 8;

    let eval = SimEvaluator::new(
        &inst.space,
        &inst.workload,
        &inst.platform,
        BenchConfig::quick(),
    );
    let cfg = MctsConfig {
        seed: opts.seed,
        ..Default::default()
    };
    let backend = SearchBackend::from_env();
    let width = resolve_threads(opts.threads);
    let shared = backend == SearchBackend::Shared || (backend == SearchBackend::Auto && width > 1);
    let (snap, records) = if shared {
        explain_shared(
            &inst.space,
            eval,
            cfg,
            width,
            opts.iterations,
            TOP_K,
            MAX_NODES,
        )
        .map_err(fail)?
    } else {
        let mut mcts = Mcts::new(&inst.space, eval, cfg);
        mcts.run(opts.iterations).map_err(fail)?;
        let snap = mcts.snapshot(TOP_K, MAX_NODES);
        (snap, mcts.into_records())
    };
    if records.is_empty() {
        return Err("search explored no implementations (try more iterations)".into());
    }
    let result = mine_rules(&inst.space, records, &PipelineConfig::quick());
    let records = &result.records;
    let labels = &result.labeling.labels;
    let num_classes = result.labeling.num_classes;

    // -- tree statistics --
    writeln!(
        out,
        "== MCTS tree (seed {}, {} iterations requested, {} executed) ==",
        opts.seed, opts.iterations, snap.iterations
    )
    .map_err(io)?;
    writeln!(
        out,
        "nodes {}, max depth {}, fully explored {}, rollouts {}",
        snap.stats.nodes, snap.stats.max_depth, snap.stats.fully_explored, snap.stats.rollouts
    )
    .map_err(io)?;
    writeln!(
        out,
        "times {:.1} µs .. {:.1} µs; space exhausted: {}; quarantined: {}",
        snap.stats.t_min * 1e6,
        snap.stats.t_max * 1e6,
        snap.exhausted,
        snap.failures
    )
    .map_err(io)?;
    let profile: Vec<String> = snap.depth_profile.iter().map(usize::to_string).collect();
    writeln!(out, "nodes per depth: {}", profile.join("/")).map_err(io)?;
    writeln!(out, "top nodes by visits:").map_err(io)?;
    for n in &snap.nodes {
        let action = match &n.action {
            Some(p) => placement_str(&inst.space, p),
            None => "<root>".to_string(),
        };
        writeln!(
            out,
            "  d{} {action}: {} visits, mean {:.1} µs, min {:.1} µs, {} children{}",
            n.depth,
            n.visits,
            n.t_mean * 1e6,
            n.t_min * 1e6,
            n.children,
            if n.fully_explored { ", complete" } else { "" }
        )
        .map_err(io)?;
    }
    writeln!(out, "principal variations:").map_err(io)?;
    for (i, pv) in snap.principal_variations.iter().enumerate() {
        let steps: Vec<String> = pv
            .steps
            .iter()
            .map(|p| placement_str(&inst.space, p))
            .collect();
        writeln!(
            out,
            "  pv{} ({} visits, min {:.1} µs, mean {:.1} µs): {}",
            i + 1,
            pv.visits,
            pv.t_min * 1e6,
            pv.t_mean * 1e6,
            steps.join(" -> ")
        )
        .map_err(io)?;
    }

    // -- per-rule provenance --
    writeln!(
        out,
        "== rule provenance ({} records, {} classes) ==",
        records.len(),
        num_classes
    )
    .map_err(io)?;
    for class in 0..num_classes {
        writeln!(out, "class {class}:").map_err(io)?;
        for rs in rulesets_for_class(&result.rulesets, class)
            .iter()
            .take(RULESETS_PER_CLASS)
        {
            let purity = rs.class_counts.iter().copied().max().unwrap_or(0) as f64
                / (rs.samples.max(1)) as f64;
            writeln!(
                out,
                "  ruleset ({} samples, purity {:.0}%):",
                rs.samples,
                purity * 100.0
            )
            .map_err(io)?;
            for line in render_ruleset(rs, &inst.space) {
                writeln!(out, "    - {line}").map_err(io)?;
            }
            let support = ruleset_support(&inst.space, records, labels, num_classes, rs);
            for (k, idx) in support.iter().enumerate() {
                if idx.is_empty() {
                    continue;
                }
                let shown: Vec<String> = idx
                    .iter()
                    .take(INDICES_SHOWN)
                    .map(usize::to_string)
                    .collect();
                let ellipsis = if idx.len() > INDICES_SHOWN {
                    ", …"
                } else {
                    ""
                };
                writeln!(
                    out,
                    "    support class {k}: {} records [{}{ellipsis}]",
                    idx.len(),
                    shown.join(", ")
                )
                .map_err(io)?;
            }
            let times: Vec<f64> = support
                .iter()
                .flatten()
                .map(|&i| records[i].result.time())
                .collect();
            if !times.is_empty() {
                let min = times.iter().copied().fold(f64::INFINITY, f64::min);
                let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                writeln!(
                    out,
                    "    simulated time over {} supporting records: \
                     {:.1} .. {:.1} µs (median {:.1} µs)",
                    times.len(),
                    min * 1e6,
                    max * 1e6,
                    median(&times) * 1e6
                )
                .map_err(io)?;
            }
        }
    }

    if let Some(path) = &opts.report {
        let json = explain_json(opts, inst, &snap, &result);
        json::validate(&json).map_err(|e| format!("internal: explain JSON invalid: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write report {path:?}: {e}"))?;
        writeln!(out, "wrote explain report to {path}").map_err(io)?;
    }
    Ok(())
}

/// Drives the shared-tree search for `explain`: batches of up to
/// `width` distinct leaves are assembled under virtual loss and
/// evaluated in place (the arena statistics, not wall-clock speed, are
/// what `explain` reports), then the snapshot is taken from the shared
/// arena. Records are sorted by canonical hash so the report is
/// width-invariant at exhaustion, matching the parallel pipeline
/// driver.
fn explain_shared<E: Evaluator>(
    space: &DecisionSpace,
    mut eval: E,
    cfg: MctsConfig,
    width: usize,
    iterations: usize,
    top_k: usize,
    max_nodes: usize,
) -> Result<(TreeSnapshot, Vec<crate::mcts::ExploredRecord>), SimError> {
    let mut mcts = SharedMcts::new(space, cfg);
    let mut remaining = iterations as u64;
    while remaining > 0 && !mcts.is_exhausted() {
        let batch = mcts.select_batch(width, remaining);
        remaining = remaining.saturating_sub(batch.iterations as u64);
        if batch.pending.is_empty() {
            if batch.iterations == 0 {
                break;
            }
            continue;
        }
        let results: Vec<_> = batch
            .pending
            .iter()
            .map(|p| eval.evaluate(&p.traversal, p.eval_seed))
            .collect();
        mcts.commit(batch, results)?;
    }
    let snap = mcts.snapshot(top_k, max_nodes);
    let mut records = mcts.into_records();
    records.sort_by_key(|r| r.traversal.canonical_hash());
    Ok((snap, records))
}

/// Serializes the `explain` command's output as one `dr-explain/v1`
/// JSON object.
fn explain_json(
    opts: &CliOptions,
    inst: &Instance,
    snap: &crate::mcts::TreeSnapshot,
    result: &crate::pipeline::PipelineResult,
) -> String {
    let records = &result.records;
    let labels = &result.labeling.labels;
    let num_classes = result.labeling.num_classes;
    let action_json = |p: &Option<Placement>| match p {
        Some(p) => format!("\"{}\"", json::escape(&placement_str(&inst.space, p))),
        None => "null".to_string(),
    };
    let nodes: Vec<String> = snap
        .nodes
        .iter()
        .map(|n| {
            format!(
                "{{\"depth\":{},\"action\":{},\"visits\":{},\"t_min\":{},\"t_mean\":{},\
                 \"t_max\":{},\"children\":{},\"fully_explored\":{}}}",
                n.depth,
                action_json(&n.action),
                n.visits,
                json::number(n.t_min),
                json::number(n.t_mean),
                json::number(n.t_max),
                n.children,
                n.fully_explored
            )
        })
        .collect();
    let pvs: Vec<String> = snap
        .principal_variations
        .iter()
        .map(|pv| {
            let steps: Vec<String> = pv
                .steps
                .iter()
                .map(|p| format!("\"{}\"", json::escape(&placement_str(&inst.space, p))))
                .collect();
            format!(
                "{{\"visits\":{},\"t_min\":{},\"t_mean\":{},\"steps\":[{}]}}",
                pv.visits,
                json::number(pv.t_min),
                json::number(pv.t_mean),
                steps.join(",")
            )
        })
        .collect();
    let mut rules: Vec<String> = Vec::new();
    for class in 0..num_classes {
        for rs in rulesets_for_class(&result.rulesets, class).iter().take(3) {
            let support = ruleset_support(&inst.space, records, labels, num_classes, rs);
            let support_json: Vec<String> = support
                .iter()
                .map(|idx| {
                    let v: Vec<String> = idx.iter().map(usize::to_string).collect();
                    format!("[{}]", v.join(","))
                })
                .collect();
            let times: Vec<f64> = support
                .iter()
                .flatten()
                .map(|&i| records[i].result.time())
                .collect();
            let times_json = if times.is_empty() {
                "null".to_string()
            } else {
                format!(
                    "{{\"count\":{},\"min\":{},\"median\":{},\"max\":{}}}",
                    times.len(),
                    json::number(times.iter().copied().fold(f64::INFINITY, f64::min)),
                    json::number(median(&times)),
                    json::number(times.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
                )
            };
            let predicates: Vec<String> = render_ruleset(rs, &inst.space)
                .iter()
                .map(|l| format!("\"{}\"", json::escape(l)))
                .collect();
            let purity = rs.class_counts.iter().copied().max().unwrap_or(0) as f64
                / (rs.samples.max(1)) as f64;
            rules.push(format!(
                "{{\"class\":{},\"samples\":{},\"pure\":{},\"purity\":{},\
                 \"predicates\":[{}],\"support\":[{}],\"times\":{}}}",
                rs.class,
                rs.samples,
                rs.pure,
                json::number(purity),
                predicates.join(","),
                support_json.join(","),
                times_json
            ));
        }
    }
    let profile: Vec<String> = snap.depth_profile.iter().map(usize::to_string).collect();
    format!(
        "{{\"schema\":\"{EXPLAIN_SCHEMA}\",\"scenario\":\"{}\",\"seed\":{},\
         \"iterations\":{},\"executed\":{},\"failures\":{},\"exhausted\":{},\
         \"tree\":{{\"nodes\":{},\"max_depth\":{},\"fully_explored\":{},\"rollouts\":{},\
         \"t_min\":{},\"t_max\":{}}},\"depth_profile\":[{}],\"top_nodes\":[{}],\
         \"principal_variations\":[{}],\"records\":{},\"classes\":{},\"rules\":[{}]}}",
        json::escape(opts.scenario.name()),
        opts.seed,
        opts.iterations,
        snap.iterations,
        snap.failures,
        snap.exhausted,
        snap.stats.nodes,
        snap.stats.max_depth,
        snap.stats.fully_explored,
        snap.stats.rollouts,
        json::number(snap.stats.t_min),
        json::number(snap.stats.t_max),
        profile.join(","),
        nodes.join(","),
        pvs.join(","),
        records.len(),
        num_classes,
        rules.join(",")
    )
}

/// The `verify-rules` command: mine rulesets at the requested budget,
/// then statically certify each one. The incremental space linter walks
/// exactly the schedules satisfying each ruleset's conditions (the rules
/// prune the decision-space walk as a prefix filter) and checks every
/// one for error-severity diagnostics — races, deadlocks, malformed
/// schedules. Returns `Err` (nonzero exit) when any fastest-class
/// ruleset is *refuted* — a satisfying schedule with an error-severity
/// diagnostic exists: the paper's contract says following a fast-class
/// ruleset must be safe, so a counterexample is a bug in the mined
/// rules or the scenario DAG. A walk truncated at `--max-schedules` is
/// reported inconclusive (and uncertified in the JSON) but does not
/// fail: on spaces too large to exhaust, the bounded walk is still a
/// meaningful no-counterexample-found check.
fn run_verify_rules(
    opts: &CliOptions,
    inst: &Instance,
    out: &mut impl std::io::Write,
) -> Result<(), String> {
    let fail = |e: SimError| format!("simulation failed: {e}");
    let io = |e: std::io::Error| format!("write failed: {e}");
    let result = run_pipeline(
        &inst.space,
        &inst.workload,
        &inst.platform,
        strategy(opts),
        &PipelineConfig {
            threads: opts.threads.unwrap_or(0),
            search: SearchBackend::from_env(),
            ..PipelineConfig::quick()
        },
    )
    .map_err(fail)?;
    let topo = topology_from_workload(&inst.space, &inst.workload, &inst.platform);
    let cert = certify_rulesets(
        &inst.space,
        Some(&topo),
        &result.rulesets,
        result.labeling.num_classes,
        opts.max_schedules as u64,
    );
    writeln!(
        out,
        "certifying {} ruleset(s) over {} classes (cap {} schedules per ruleset)",
        cert.rulesets.len(),
        cert.classes,
        if opts.max_schedules == 0 {
            "unlimited".to_string()
        } else {
            opts.max_schedules.to_string()
        }
    )
    .map_err(io)?;
    for c in &cert.rulesets {
        let verdict = if c.certified {
            "certified"
        } else if c.truncated {
            "INCONCLUSIVE (truncated)"
        } else {
            "UNCERTIFIED"
        };
        writeln!(
            out,
            "class {} ({} samples{}): {verdict} — {} schedule(s), {} error(s), {} warning(s)",
            c.class,
            c.samples,
            if c.pure { "" } else { ", impure" },
            c.schedules_checked,
            c.errors,
            c.warnings
        )
        .map_err(io)?;
        for p in &c.predicates {
            writeln!(out, "    - {p}").map_err(io)?;
        }
        if let Some(cx) = &c.first_counterexample {
            writeln!(out, "    counterexample: {cx}").map_err(io)?;
        }
    }
    if let Some(path) = &opts.report {
        let json = certify_json(opts, &cert);
        json::validate(&json).map_err(|e| format!("internal: certify JSON invalid: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write report {path:?}: {e}"))?;
        writeln!(out, "wrote certification report to {path}").map_err(io)?;
    }
    let refuted = cert.uncertified_fast().filter(|c| c.errors > 0).count();
    if refuted > 0 {
        return Err(format!(
            "{refuted} fastest-class ruleset(s) refuted by a counterexample"
        ));
    }
    let inconclusive = cert.uncertified_fast().count();
    if inconclusive > 0 {
        writeln!(
            out,
            "note: {inconclusive} fastest-class ruleset(s) inconclusive at the schedule \
             cap; no counterexample found (--max-schedules 0 certifies fully)"
        )
        .map_err(io)?;
    } else {
        writeln!(out, "all fastest-class rulesets certified").map_err(io)?;
    }
    Ok(())
}

/// Serializes the `verify-rules` command's output as one `dr-certify/v1`
/// JSON object.
fn certify_json(opts: &CliOptions, cert: &Certification) -> String {
    let rulesets: Vec<String> = cert
        .rulesets
        .iter()
        .map(|c| {
            let predicates: Vec<String> = c
                .predicates
                .iter()
                .map(|p| format!("\"{}\"", json::escape(p)))
                .collect();
            let counterexample = match &c.first_counterexample {
                Some(cx) => format!("\"{}\"", json::escape(cx)),
                None => "null".to_string(),
            };
            format!(
                "{{\"class\":{},\"samples\":{},\"pure\":{},\"predicates\":[{}],\
                 \"schedules_checked\":{},\"truncated\":{},\"errors\":{},\"warnings\":{},\
                 \"races\":{},\"deadlocks\":{},\"certified\":{},\"first_counterexample\":{}}}",
                c.class,
                c.samples,
                c.pure,
                predicates.join(","),
                c.schedules_checked,
                c.truncated,
                c.errors,
                c.warnings,
                c.races,
                c.deadlocks,
                c.certified,
                counterexample
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"{CERTIFY_SCHEMA}\",\"scenario\":\"{}\",\"seed\":{},\
         \"iterations\":{},\"max_schedules\":{},\"classes\":{},\"rulesets\":[{}],\
         \"all_fast_certified\":{}}}",
        json::escape(opts.scenario.name()),
        opts.seed,
        opts.iterations,
        opts.max_schedules,
        cert.classes,
        rulesets.join(","),
        cert.all_fast_certified
    )
}

/// The `chaos` command: sweep seeded fault plans through the full
/// pipeline, assert the clean control plan is bit-for-bit deterministic,
/// and cross-check drop-induced simulator deadlocks against the static
/// linter's MPI103/MPI104 verdicts (the fault oracle).
/// The `merge` command's body (also the tail of `swarm`): validate the
/// shard set under `dir`, merge its stores bit-identically to the
/// unsharded record sequence, mine rules from the merged records, and
/// append a full ledger entry — to `--ledger` when given, else to the
/// shard directory itself — so `compare` can gate the merged fingerprint
/// against a single-process baseline.
fn run_merge(
    opts: &CliOptions,
    inst: &Instance,
    dir: &Path,
    out: &mut impl std::io::Write,
) -> Result<(), String> {
    let io = |e: std::io::Error| format!("write failed: {e}");
    let strategy = strategy(opts);
    let merged = merge_shards(dir, opts.scenario.name(), &inst.space, strategy)?;
    writeln!(
        out,
        "merged {} shards: {} records, fingerprint {:016x}, store {} hits / {} misses, \
         {} quarantined, {:.2}s compute ({:.2}s critical path)",
        merged.shards,
        merged.records.len(),
        merged.fingerprint,
        merged.store.hits,
        merged.store.misses,
        merged.failures,
        merged.seconds,
        merged.critical_seconds
    )
    .map_err(io)?;
    // The merged records mine exactly like an unsharded run. Swarm
    // workers run concurrently, so the ledger's "explore" phase cost is
    // the critical path (slowest shard), comparable to an unsharded
    // run's wall-clock — not the summed compute.
    let mut phases = Phases::new();
    phases.add("explore", merged.critical_seconds);
    let result = mine_rules_timed(
        &inst.space,
        merged.records,
        &PipelineConfig::quick(),
        &mut phases,
    );
    let telemetry = records_telemetry(&result.records);
    let search = SearchSummary::from_telemetry(strategy.name(), &telemetry);
    let report = RunReport::new(phases, None, search, &result);
    let run = InstrumentedRun {
        result,
        report,
        telemetry,
        cache: CacheStats::default(),
        threads: 1,
    };
    writeln!(
        out,
        "classes  {} — {} rulesets",
        run.result.labeling.num_classes,
        run.result.rulesets.len()
    )
    .map_err(io)?;
    let ledger_dir = opts
        .ledger
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| dir.to_path_buf());
    let ctx = LedgerContext {
        scenario: opts.scenario.name(),
        strategy: strategy.name(),
        seed: opts.seed,
        iterations: opts.iterations as u64,
    };
    let entry = ledger_entry_json(&ctx, &run, &inst.space);
    let path = append_entry(&ledger_dir, &entry).map_err(|e| {
        format!(
            "cannot append ledger entry to {}: {e}",
            ledger_dir.display()
        )
    })?;
    writeln!(out, "appended ledger entry to {}", path.display()).map_err(io)?;
    if let Some(path) = &opts.report {
        std::fs::write(path, run.report.to_json())
            .map_err(|e| format!("cannot write report {path:?}: {e}"))?;
        writeln!(out, "wrote run report to {path}").map_err(io)?;
    }
    if let Some(path) = &opts.telemetry {
        std::fs::write(path, run.telemetry.to_csv())
            .map_err(|e| format!("cannot write telemetry {path:?}: {e}"))?;
        writeln!(
            out,
            "wrote {} telemetry rows to {path}",
            run.telemetry.len()
        )
        .map_err(io)?;
    }
    Ok(())
}

fn run_chaos(
    opts: &CliOptions,
    inst: &Instance,
    out: &mut impl std::io::Write,
) -> Result<(), String> {
    let io = |e: std::io::Error| format!("write failed: {e}");
    let run_once = |faults: FaultConfig| -> Result<InstrumentedRun, SimError> {
        run_pipeline_instrumented(
            &inst.space,
            &inst.workload,
            &inst.platform,
            strategy(opts),
            &PipelineConfig {
                threads: opts.threads.unwrap_or(0),
                faults,
                search: SearchBackend::from_env(),
                ..PipelineConfig::quick()
            },
        )
    };

    // With an inactive config the pipeline consults DR_FAULTS, so an
    // inherited environment changes what "clean" means here.
    let env_faults = FaultConfig::from_env().map_err(|m| format!("invalid DR_FAULTS: {m}"))?;
    if env_faults.is_some() {
        writeln!(out, "note: DR_FAULTS is set; plan 0 runs under it").map_err(io)?;
    }

    // Plan 0, the clean control: with faults disabled the pipeline must
    // behave exactly as if the chaos machinery did not exist, and two
    // runs must agree bit for bit.
    let baseline =
        run_once(FaultConfig::clean()).map_err(|e| format!("clean control run failed: {e}"))?;
    let replay =
        run_once(FaultConfig::clean()).map_err(|e| format!("clean control replay failed: {e}"))?;
    let identical = baseline.result.times() == replay.result.times()
        && baseline.result.labeling.labels == replay.result.labeling.labels;
    writeln!(
        out,
        "plan  0 [clean]: {} records, {} classes, bit-for-bit replay: {}",
        baseline.result.records.len(),
        baseline.result.labeling.num_classes,
        if identical { "ok" } else { "MISMATCH" }
    )
    .map_err(io)?;
    if !identical {
        return Err("clean control plan is not deterministic".into());
    }
    if env_faults.is_none() && baseline.report.resilience.is_some() {
        return Err("clean control plan must not report resilience counters".into());
    }

    // Plans 1..N: alternate survivable presets across distinct seeds.
    let mut aggregate = ResilienceSummary::default();
    let mut failed_plans = 0usize;
    for p in 1..opts.plans as u64 {
        let (preset, name) = if p % 2 == 1 {
            (FaultConfig::light(), "light")
        } else {
            (FaultConfig::heavy(), "heavy")
        };
        let faults = preset.with_seed(opts.seed.wrapping_add(p));
        match run_once(faults) {
            Ok(run) => {
                let r = run
                    .report
                    .resilience
                    .ok_or("chaos plan missing resilience counters")?;
                aggregate.evaluations += r.evaluations;
                aggregate.retries += r.retries;
                aggregate.retry_delay_ms += r.retry_delay_ms;
                aggregate.deadlocks += r.deadlocks;
                aggregate.budget_kills += r.budget_kills;
                aggregate.panics += r.panics;
                aggregate.quarantined += r.quarantined;
                writeln!(
                    out,
                    "plan {p:2} [{name} seed={}]: {} records, {} classes; \
                     {} evaluations ({} retries, {} ms backoff) — {} deadlocks, \
                     {} budget kills, {} panics, {} quarantined",
                    faults.seed,
                    run.result.records.len(),
                    run.result.labeling.num_classes,
                    r.evaluations,
                    r.retries,
                    r.retry_delay_ms,
                    r.deadlocks,
                    r.budget_kills,
                    r.panics,
                    r.quarantined
                )
                .map_err(io)?;
            }
            Err(e) => {
                failed_plans += 1;
                writeln!(
                    out,
                    "plan {p:2} [{name} seed={}]: pipeline failed: {e}",
                    faults.seed
                )
                .map_err(io)?;
            }
        }
    }

    // The fault oracle: for a capped sweep of message-drop plans over the
    // first traversal, the simulator's deadlock outcome and the static
    // linter's verdict on the drop-projected topology must agree exactly.
    let t = inst
        .space
        .enumerate()
        .next()
        .ok_or("empty decision space")?;
    let schedule = build_schedule(&inst.space, &t);
    let prog = CompiledProgram::compile(&schedule, &inst.workload)
        .map_err(|e| format!("oracle compile failed: {e}"))?;
    let drops = FaultConfig::drops().with_seed(opts.seed);
    let (mut checked, mut agreed, mut sim_deadlocks) = (0u32, 0u32, 0u32);
    for s in 0..(opts.plans as u64).min(16) {
        let plan = FaultPlan::derive(&drops, s);
        let faulted = inst
            .platform
            .clone()
            .with_faults(plan)
            .with_budget(1_000_000, 0.0);
        let sim_deadlocked = match benchmark(&prog, &faulted, &BenchConfig::quick(), s) {
            Ok(_) => false,
            Err(SimError::Deadlock { .. } | SimError::Budget { .. }) => true,
            Err(e) => return Err(format!("oracle simulation failed structurally: {e}")),
        };
        let mut topo = topology_from_workload(&inst.space, &inst.workload, &inst.platform);
        apply_fault_plan(&mut topo, &plan);
        let lint_flagged =
            crate::lint::lint_traversal(&inst.space, &t, Some(&topo)).deadlocks() > 0;
        checked += 1;
        if sim_deadlocked == lint_flagged {
            agreed += 1;
        }
        if sim_deadlocked {
            sim_deadlocks += 1;
        }
    }
    writeln!(
        out,
        "oracle: {agreed}/{checked} drop plans agree with dr-lint \
         ({sim_deadlocks} fault-induced deadlocks)"
    )
    .map_err(io)?;
    writeln!(
        out,
        "sweep: {} plans, {} failed; {} evaluations ({} retries, {} ms backoff) — \
         {} deadlocks, {} budget kills, {} panics, {} quarantined",
        opts.plans,
        failed_plans,
        aggregate.evaluations,
        aggregate.retries,
        aggregate.retry_delay_ms,
        aggregate.deadlocks,
        aggregate.budget_kills,
        aggregate.panics,
        aggregate.quarantined
    )
    .map_err(io)?;

    if let Some(path) = &opts.report {
        let json = format!(
            concat!(
                "{{\"plans\":{},\"failed_plans\":{},\"clean_replay_identical\":{},",
                "\"oracle\":{{\"checked\":{},\"agreed\":{},\"sim_deadlocks\":{}}},",
                "\"aggregate\":{{\"evaluations\":{},\"retries\":{},\"retry_delay_ms\":{},",
                "\"deadlocks\":{},\"budget_kills\":{},\"panics\":{},\"quarantined\":{}}}}}"
            ),
            opts.plans,
            failed_plans,
            identical,
            checked,
            agreed,
            sim_deadlocks,
            aggregate.evaluations,
            aggregate.retries,
            aggregate.retry_delay_ms,
            aggregate.deadlocks,
            aggregate.budget_kills,
            aggregate.panics,
            aggregate.quarantined
        );
        std::fs::write(path, json).map_err(|e| format!("cannot write report {path:?}: {e}"))?;
        writeln!(out, "wrote chaos report to {path}").map_err(io)?;
    }

    if agreed != checked {
        return Err(format!(
            "fault oracle disagreement: only {agreed}/{checked} drop plans match dr-lint"
        ));
    }
    if failed_plans > 0 {
        return Err(format!(
            "{failed_plans} of {} chaos plans failed outright",
            opts.plans
        ));
    }
    Ok(())
}

/// Builds the merged Perfetto/Chrome trace: the pipeline's own span
/// rows (one process) next to the best explored implementation's
/// simulated rank/stream timelines (one process per rank), so search
/// overheads and the winning schedule are visible side by side.
fn merged_trace(
    inst: &Instance,
    run: &InstrumentedRun,
    tracer: &Tracer,
    seed: u64,
) -> Result<String, SimError> {
    let pipeline_json = tracer.to_chrome_json(PIPELINE_PID, "dr pipeline");
    let best = run
        .result
        .records
        .iter()
        .min_by(|a, b| a.result.time().partial_cmp(&b.result.time()).unwrap());
    let sim_json = match best {
        Some(rec) => {
            let schedule = build_schedule(&inst.space, &rec.traversal);
            let prog = CompiledProgram::compile(&schedule, &inst.workload)?;
            let (_, trace) = execute_traced(
                &prog,
                &inst.platform.clone().noiseless(),
                &mut SmallRng::seed_from_u64(seed),
            )?;
            trace.to_chrome_json()
        }
        None => String::from("[]"),
    };
    Ok(merge_chrome_json(&[&pipeline_json, &sim_json]))
}

fn bench_traversal(inst: &Instance, t: &Traversal, seed: u64) -> Result<f64, SimError> {
    let schedule = build_schedule(&inst.space, t);
    let prog = CompiledProgram::compile(&schedule, &inst.workload)?;
    Ok(benchmark(&prog, &inst.platform, &BenchConfig::quick(), seed)?.time())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_happy_paths() {
        let o = parse(&argv("spmv rules --iterations 50 --seed 9")).unwrap();
        assert_eq!(o.scenario, Scenario::Spmv);
        assert_eq!(o.command, Command::Rules);
        assert_eq!(o.iterations, 50);
        assert_eq!(o.seed, 9);
        assert!(!o.random);
        let o = parse(&argv("halo explore --random")).unwrap();
        assert_eq!(o.scenario, Scenario::Halo);
        assert!(o.random);
        assert_eq!(o.iterations, 300);
        assert_eq!(o.threads, None);
        let o = parse(&argv("spmv explore --threads 4")).unwrap();
        assert_eq!(o.threads, Some(4));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("nope info")).is_err());
        assert!(parse(&argv("spmv nope")).is_err());
        assert!(parse(&argv("spmv info --bogus")).is_err());
        assert!(parse(&argv("spmv info --iterations")).is_err());
        assert!(parse(&argv("spmv info --iterations many")).is_err());
        assert!(parse(&argv("spmv info --threads")).is_err());
        assert!(parse(&argv("spmv info --threads 0")).is_err());
        assert!(parse(&argv("spmv info --threads some")).is_err());
    }

    #[test]
    fn info_command_prints_space_summary() {
        let opts = parse(&argv("spmv info")).unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("traversals   : 1600"));
        assert!(s.contains("CES-b4-PostSend"));
    }

    #[test]
    fn explore_command_reports_classes() {
        let opts = parse(&argv("spmv explore --iterations 40 --seed 2")).unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("explored"));
        assert!(s.contains("class 0"));
    }

    #[test]
    fn rules_command_prints_rulesets() {
        let opts = parse(&argv("spmv rules --iterations 60 --seed 2")).unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("ruleset"));
        assert!(s.contains(" - "));
    }

    #[test]
    fn synthesize_command_round_trips() {
        let opts = parse(&argv("spmv synthesize --iterations 80 --seed 3")).unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("synthesized implementation"), "{s}");
    }

    #[test]
    fn report_and_telemetry_flags_write_artifacts() {
        let dir = std::env::temp_dir();
        let report = dir.join(format!("dr-rules-report-{}.json", std::process::id()));
        let telem = dir.join(format!("dr-rules-telem-{}.csv", std::process::id()));
        let iterations = 40;
        let opts = parse(&argv(&format!(
            "spmv explore --iterations {iterations} --seed 2 --report {} --telemetry {}",
            report.display(),
            telem.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("wrote run report"), "{s}");

        // The report is one syntactically valid JSON object with the
        // expected top-level sections.
        let json = std::fs::read_to_string(&report).unwrap();
        crate::obs::json::validate(&json).unwrap();
        for key in ["\"phases\"", "\"sim\"", "\"search\"", "\"mining\""] {
            assert!(json.contains(key), "report missing {key}: {json}");
        }

        // The telemetry CSV has exactly one row per search iteration.
        let csv = std::fs::read_to_string(&telem).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines.len(),
            iterations + 1,
            "header + one row per iteration"
        );
        assert!(lines[0].starts_with("iteration,unique_traversals,"));

        std::fs::remove_file(&report).ok();
        std::fs::remove_file(&telem).ok();
    }

    #[test]
    fn parse_accepts_artifact_paths() {
        let o = parse(&argv("spmv explore --report r.json --telemetry t.csv")).unwrap();
        assert_eq!(o.report.as_deref(), Some("r.json"));
        assert_eq!(o.telemetry.as_deref(), Some("t.csv"));
        assert!(parse(&argv("spmv explore --report")).is_err());
        assert!(parse(&argv("spmv explore --telemetry")).is_err());
    }

    #[test]
    fn parse_accepts_lint_command_and_cap() {
        let o = parse(&argv("spmv lint")).unwrap();
        assert_eq!(o.command, Command::Lint);
        assert_eq!(o.max_schedules, 2048);
        let o = parse(&argv("halo lint --max-schedules 16")).unwrap();
        assert_eq!(o.max_schedules, 16);
        assert!(parse(&argv("spmv lint --max-schedules")).is_err());
        assert!(parse(&argv("spmv lint --max-schedules lots")).is_err());
    }

    #[test]
    fn lint_command_verifies_the_whole_spmv_space() {
        // The full small-SpMV space has 1600 traversals; every schedule
        // `build_schedule` emits must verify clean of errors.
        let opts = parse(&argv("spmv lint --max-schedules 0")).unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("schedules 1600: 0 errors"), "{s}");
        assert!(!s.contains("note: stopped"));
    }

    #[test]
    fn lint_command_honors_cap_and_writes_counters() {
        let dir = std::env::temp_dir();
        let report = dir.join(format!("dr-rules-lint-{}.json", std::process::id()));
        let opts = parse(&argv(&format!(
            "spmv lint --max-schedules 5 --report {}",
            report.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("schedules 5: 0 errors"), "{s}");
        assert!(s.contains("note: stopped after 5 schedules"), "{s}");
        let json = std::fs::read_to_string(&report).unwrap();
        crate::obs::json::validate(&json).unwrap();
        assert!(json.contains("\"schedules\":5"), "{json}");
        std::fs::remove_file(&report).ok();
    }

    #[test]
    fn lint_command_streams_lint_events() {
        let dir = std::env::temp_dir();
        let events = dir.join(format!(
            "dr-rules-lint-events-{}.ndjson",
            std::process::id()
        ));
        let opts = parse(&argv(&format!(
            "spmv lint --max-schedules 8 --events {}",
            events.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("incremental:"), "{s}");
        let text = std::fs::read_to_string(&events).unwrap();
        assert!(
            text.lines().any(|l| l.contains("\"kind\":\"lint-start\"")),
            "{text}"
        );
        assert!(
            text.lines().any(|l| l.contains("\"kind\":\"lint-end\"")),
            "{text}"
        );
        std::fs::remove_file(&events).ok();
    }

    #[test]
    fn parse_accepts_verify_rules_command() {
        let o = parse(&argv("spmv verify-rules")).unwrap();
        assert_eq!(o.command, Command::VerifyRules);
        assert_eq!(o.max_schedules, 2048);
        let o = parse(&argv("halo verify-rules --iterations 10 --max-schedules 0")).unwrap();
        assert_eq!(o.command, Command::VerifyRules);
        assert_eq!(o.max_schedules, 0);
        assert_eq!(o.iterations, 10);
    }

    #[test]
    fn verify_rules_command_certifies_spmv_and_writes_report() {
        let dir = std::env::temp_dir();
        let report = dir.join(format!("dr-rules-certify-{}.json", std::process::id()));
        let opts = parse(&argv(&format!(
            "spmv verify-rules --iterations 60 --seed 2 --max-schedules 0 --report {}",
            report.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        // The whole small-SpMV space lints clean, so every satisfying
        // subset certifies.
        assert!(s.contains("all fastest-class rulesets certified"), "{s}");
        assert!(s.contains("certified —"), "{s}");
        let json = std::fs::read_to_string(&report).unwrap();
        crate::obs::json::validate(&json).unwrap();
        assert!(json.contains("\"schema\":\"dr-certify/v1\""), "{json}");
        assert!(json.contains("\"all_fast_certified\":true"), "{json}");
        assert!(json.contains("\"predicates\":["), "{json}");
        std::fs::remove_file(&report).ok();
    }

    #[test]
    fn parse_accepts_chaos_command_and_plans() {
        let o = parse(&argv("spmv chaos")).unwrap();
        assert_eq!(o.command, Command::Chaos);
        assert_eq!(o.plans, 24);
        let o = parse(&argv("halo chaos --plans 21")).unwrap();
        assert_eq!(o.plans, 21);
        assert!(parse(&argv("spmv chaos --plans")).is_err());
        assert!(parse(&argv("spmv chaos --plans 1")).is_err());
        assert!(parse(&argv("spmv chaos --plans lots")).is_err());
    }

    #[test]
    fn chaos_command_sweeps_plans_and_cross_checks_the_oracle() {
        let dir = std::env::temp_dir();
        let report = dir.join(format!("dr-rules-chaos-{}.json", std::process::id()));
        let opts = parse(&argv(&format!(
            "spmv chaos --iterations 12 --plans 21 --seed 2 --threads 2 --report {}",
            report.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("plan  0 [clean]"), "{s}");
        assert!(s.contains("bit-for-bit replay: ok"), "{s}");
        assert!(s.contains("plan  1 [light"), "{s}");
        assert!(s.contains("plan  2 [heavy"), "{s}");
        assert!(s.contains("oracle: 16/16 drop plans agree"), "{s}");
        assert!(s.contains("sweep: 21 plans, 0 failed"), "{s}");

        let json = std::fs::read_to_string(&report).unwrap();
        crate::obs::json::validate(&json).unwrap();
        assert!(json.contains("\"plans\":21"), "{json}");
        assert!(json.contains("\"clean_replay_identical\":true"), "{json}");
        assert!(json.contains("\"agreed\":16"), "{json}");
        std::fs::remove_file(&report).ok();
    }

    #[test]
    fn parse_accepts_trace_ledger_and_compare_grammar() {
        let o = parse(&argv("spmv explore --trace out.json --ledger runs")).unwrap();
        assert_eq!(o.trace.as_deref(), Some("out.json"));
        assert_eq!(o.ledger.as_deref(), Some("runs"));
        // Omitting the command defaults to explore, so the acceptance
        // invocation `dr-rules spmv --trace out.json` parses.
        let o = parse(&argv("spmv --trace out.json")).unwrap();
        assert_eq!(o.command, Command::Explore);
        assert_eq!(o.trace.as_deref(), Some("out.json"));
        let o = parse(&argv(
            "spmv compare a b --threshold 2 --abs-floor-ms 1 --noise-k 4",
        ))
        .unwrap();
        assert_eq!(o.command, Command::Compare);
        assert_eq!(o.compare, Some(("a".into(), "b".into())));
        assert_eq!(o.threshold, 2.0);
        assert_eq!(o.abs_floor_ms, 1.0);
        assert_eq!(o.noise_k, 4.0);
        assert!(parse(&argv("spmv compare")).is_err());
        assert!(parse(&argv("spmv compare a")).is_err());
        assert!(parse(&argv("spmv compare --threshold 2")).is_err());
        assert!(parse(&argv("spmv explore --trace")).is_err());
        assert!(parse(&argv("spmv explore --ledger")).is_err());
    }

    #[test]
    fn trace_flag_writes_a_merged_perfetto_json() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("dr-rules-trace-{}.json", std::process::id()));
        let opts = parse(&argv(&format!(
            "spmv explore --iterations 30 --seed 2 --threads 2 --trace {}",
            path.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("wrote merged trace"), "{s}");

        let json = std::fs::read_to_string(&path).unwrap();
        crate::obs::json::validate(&json).unwrap();
        // Pipeline span rows sit alongside the simulated implementation's
        // rank/stream rows (separate process ids).
        assert!(json.contains("\"dr pipeline\""), "{json}");
        assert!(json.contains("\"pipeline\""), "{json}");
        assert!(json.contains("\"explore\""), "{json}");
        assert!(json.contains("\"rank 0\""), "pipeline-only trace? {s}");
        assert!(json.contains("\"stream0\""), "pipeline-only trace? {s}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_includes_provenance() {
        let dir = std::env::temp_dir();
        let report = dir.join(format!("dr-rules-prov-{}.json", std::process::id()));
        let opts = parse(&argv(&format!(
            "spmv explore --iterations 30 --seed 2 --report {}",
            report.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let json = std::fs::read_to_string(&report).unwrap();
        let v = crate::obs::json::parse(&json).unwrap();
        assert!(v
            .path(&["provenance", "run_id"])
            .and_then(|r| r.as_str())
            .is_some());
        assert!(v
            .path(&["provenance", "git"])
            .and_then(|g| g.as_str())
            .is_some());
        std::fs::remove_file(&report).ok();
    }

    #[test]
    fn compare_command_passes_identical_runs_and_fails_forged_regression() {
        let base = std::env::temp_dir().join(format!("dr-rules-cmp-{}", std::process::id()));
        let (la, lb, lc) = (base.join("a"), base.join("b"), base.join("c"));
        let _ = std::fs::remove_dir_all(&base);
        for ledger in [&la, &lb] {
            let opts = parse(&argv(&format!(
                "spmv explore --iterations 30 --seed 2 --ledger {}",
                ledger.display()
            )))
            .unwrap();
            let mut buf = Vec::new();
            run(&opts, &mut buf).unwrap();
            assert!(String::from_utf8(buf).unwrap().contains("appended ledger"));
        }

        // Same seed, same config: identical records, no regression.
        let opts = parse(&argv(&format!(
            "spmv compare {} {}",
            la.display(),
            lb.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("verdict: OK"), "{s}");

        // Forge a copy of ledger B whose explore phase blew up 100x:
        // compare must exit nonzero.
        let line = std::fs::read_to_string(la.join(super::super::pipeline::LEDGER_FILE)).unwrap();
        let v = crate::obs::json::parse(&line).unwrap();
        let explore = v
            .path(&["phases", "explore"])
            .and_then(|p| p.as_f64())
            .unwrap();
        let forged = line.replace(
            &format!("\"explore\":{}", crate::obs::json::number(explore)),
            &format!(
                "\"explore\":{}",
                crate::obs::json::number(explore * 100.0 + 10.0)
            ),
        );
        assert_ne!(forged, line, "forgery must change the entry");
        std::fs::create_dir_all(&lc).unwrap();
        std::fs::write(lc.join(super::super::pipeline::LEDGER_FILE), forged).unwrap();
        let opts = parse(&argv(&format!(
            "spmv compare {} {}",
            la.display(),
            lc.display()
        )))
        .unwrap();
        let mut buf = Vec::new();
        let err = run(&opts, &mut buf).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("REGRESSION"), "{s}");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn timeline_command_draws_gantt_rows() {
        let opts = parse(&argv("spmv timeline --iterations 30 --seed 4")).unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("fastest"));
        assert!(s.contains("cpu |"));
        assert!(s.contains("stream0 |"));
    }
}
