//! `dr-rules` — the command-line front end of the design-rules toolkit.
//!
//! ```text
//! dr-rules spmv rules --iterations 400
//! dr-rules halo explore --iterations 600 --seed 7
//! dr-rules spmv synthesize
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cuda_mpi_design_rules::cli::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut out = std::io::stdout();
    if let Err(e) = cuda_mpi_design_rules::cli::run(&opts, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
