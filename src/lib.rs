//! Meta-crate re-exporting the full CUDA+MPI design-rules toolkit, plus
//! the `dr-rules` command-line driver.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod progress;
pub mod swarm;

pub use dr_bench as bench;
pub use dr_core as pipeline;
pub use dr_dag as dag;
pub use dr_fleet as fleet;
pub use dr_halo as halo;
pub use dr_lint as lint;
pub use dr_mcts as mcts;
pub use dr_ml as ml;
pub use dr_obs as obs;
pub use dr_par as par;
pub use dr_sim as sim;
pub use dr_spmv as spmv;
pub use dr_store as store;
pub use dr_trace as trace;
