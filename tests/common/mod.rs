//! Shared proptest generators for the integration-level property tests.

use cuda_mpi_design_rules::dag::{CostKey, DagBuilder, DecisionSpace, OpSpec, ProgramDag};
use proptest::prelude::*;

/// A random DAG of up to `max_n` CPU/GPU compute vertices. Edges only go
/// from lower to higher vertex ids, so the graph is acyclic by
/// construction; the builder adds Start/End.
pub fn arb_dag(max_n: usize) -> impl Strategy<Value = ProgramDag> {
    (2..=max_n)
        .prop_flat_map(|n| {
            let kinds = proptest::collection::vec(any::<bool>(), n);
            let edges = proptest::collection::vec(any::<bool>(), n * (n - 1) / 2);
            (Just(n), kinds, edges)
        })
        .prop_map(|(n, kinds, edges)| {
            let mut b = DagBuilder::new();
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    let name = format!("v{i}");
                    let key = CostKey::new(name.clone());
                    if kinds[i] {
                        b.add(name, OpSpec::GpuKernel(key))
                    } else {
                        b.add(name, OpSpec::CpuWork(key))
                    }
                })
                .collect();
            let mut e = 0;
            for i in 0..n {
                for j in i + 1..n {
                    if edges[e] {
                        b.edge(ids[i], ids[j]);
                    }
                    e += 1;
                }
            }
            b.build().expect("forward edges are always acyclic")
        })
}

/// A random decision space over a random DAG with 1–3 streams, filtered
/// to spaces small enough to enumerate.
pub fn arb_small_space(max_n: usize, max_traversals: u128) -> impl Strategy<Value = DecisionSpace> {
    (arb_dag(max_n), 1usize..=3)
        .prop_map(|(dag, streams)| DecisionSpace::new(dag, streams).expect("few ops"))
        .prop_filter("space must be enumerable", move |sp| {
            sp.count_traversals() <= max_traversals
        })
}
