//! Property tests for the shard partitioner: over random decision
//! spaces and every shard count 1..=5, the per-shard work lists must
//! concatenate bit-for-bit to the unsharded exploration order, and no
//! canonical traversal hash may be assigned to two shards.

mod common;

use common::arb_small_space;
use cuda_mpi_design_rules::pipeline::{shard_work, ShardSpec, Strategy};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exhaustive sharding slices `space.enumerate()` order: the shard
    /// work lists concatenate to exactly the unsharded list, every
    /// traversal lands in exactly one shard, and the partition is
    /// deterministic across repeated calls.
    #[test]
    fn exhaustive_shards_partition_the_enumeration(
        space in arb_small_space(4, 200),
        count in 1usize..=5,
    ) {
        let strategy = Strategy::Exhaustive;
        let unsharded: Vec<_> = space.enumerate().collect();
        let mut concat = Vec::new();
        let mut seen = HashSet::new();
        for index in 0..count {
            let spec = ShardSpec { index, count };
            let work = shard_work(&space, strategy, spec)
                .expect("exhaustive strategies always have a work list");
            let again = shard_work(&space, strategy, spec).unwrap();
            prop_assert_eq!(&work, &again, "shard {} not deterministic", spec);
            for t in &work {
                prop_assert!(
                    seen.insert(t.canonical_hash()),
                    "hash {:016x} assigned to two shards",
                    t.canonical_hash()
                );
            }
            concat.extend(work);
        }
        prop_assert_eq!(concat, unsharded);
    }

    /// Random sharding slices the replayed global-dedup sequence: shard
    /// lists concatenate to the unsharded (1-shard) list, which itself
    /// contains no duplicate hashes, and every hash lands in exactly one
    /// shard.
    #[test]
    fn random_shards_partition_the_dedup_sequence(
        space in arb_small_space(4, 200),
        count in 1usize..=5,
        seed in any::<u64>(),
        iterations in 1usize..=32,
    ) {
        let strategy = Strategy::Random { iterations, seed };
        let unsharded = shard_work(&space, strategy, ShardSpec { index: 0, count: 1 })
            .expect("random strategies always have a work list");
        let unique: HashSet<_> = unsharded.iter().map(|t| t.canonical_hash()).collect();
        prop_assert_eq!(unique.len(), unsharded.len(), "unsharded list has duplicates");

        let mut concat = Vec::new();
        let mut seen = HashSet::new();
        for index in 0..count {
            let spec = ShardSpec { index, count };
            let work = shard_work(&space, strategy, spec).unwrap();
            for t in &work {
                prop_assert!(
                    seen.insert(t.canonical_hash()),
                    "hash {:016x} assigned to two shards",
                    t.canonical_hash()
                );
            }
            concat.extend(work);
        }
        prop_assert_eq!(concat, unsharded);
    }
}
