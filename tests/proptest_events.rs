//! Property tests on the structured event stream: for arbitrary small
//! decision spaces and search configurations, a watched pipeline run
//! with four worker threads emits an NDJSON stream in which **every**
//! line parses under the workspace JSON grammar, every line carries the
//! schema tag and the same run id, and the sequence numbers are gapless
//! — while the explored record set stays bit-identical to an unwatched
//! run of the same configuration.

mod common;

use common::arb_small_space;
use cuda_mpi_design_rules::mcts::MctsConfig;
use cuda_mpi_design_rules::obs::json;
use cuda_mpi_design_rules::obs::{EventSink, SharedBuf, EVENTS_SCHEMA};
use cuda_mpi_design_rules::pipeline::{
    run_pipeline, run_pipeline_watched, PipelineConfig, Strategy,
};
use cuda_mpi_design_rules::sim::{Platform, TableWorkload};
use cuda_mpi_design_rules::trace::Tracer;
use proptest::prelude::*;

fn workload_for(space: &cuda_mpi_design_rules::dag::DecisionSpace) -> TableWorkload {
    let mut w = TableWorkload::new(1);
    for (i, op) in space.ops().iter().enumerate() {
        w.cost_all(op.name.clone(), 1e-5 * (i as f64 + 1.0));
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn watched_runs_stream_parsable_gapless_events_and_identical_records(
        space in arb_small_space(4, 200),
        seed in 0u64..1_000,
        iterations in 8usize..48,
        random in any::<bool>(),
    ) {
        let w = workload_for(&space);
        let platform = Platform::perlmutter_like();
        let strategy = if random {
            Strategy::Random { iterations, seed }
        } else {
            Strategy::Mcts {
                iterations,
                config: MctsConfig { seed, ..Default::default() },
            }
        };
        // Four worker threads — the same parallelism `DR_THREADS=4`
        // selects on the command line.
        let cfg = PipelineConfig { threads: 4, ..PipelineConfig::quick() };

        let buf = SharedBuf::new();
        let sink = EventSink::new("run-prop").with_writer(Box::new(buf.clone()));
        let tracer = Tracer::disabled();
        let watched = run_pipeline_watched(
            &space, &w, &platform, strategy, &cfg, &tracer, Some(&sink),
        ).unwrap();
        let silent = run_pipeline(&space, &w, &platform, strategy, &cfg).unwrap();

        // Bit-identity: observation must not perturb the search.
        let key = |r: &cuda_mpi_design_rules::mcts::ExploredRecord| {
            (r.traversal.canonical_hash(), r.result.time().to_bits())
        };
        let mut a: Vec<_> = watched.result.records.iter().map(key).collect();
        let mut b: Vec<_> = silent.records.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);

        // Every line parses; schema/run are constant; seqs are gapless.
        let text = buf.contents();
        let mut seqs: Vec<u64> = Vec::new();
        for line in text.lines() {
            let v = json::parse(line)
                .unwrap_or_else(|e| panic!("unparsable event line: {e}\n{line}"));
            prop_assert_eq!(
                v.get("schema").and_then(json::Value::as_str),
                Some(EVENTS_SCHEMA)
            );
            prop_assert_eq!(v.get("run").and_then(json::Value::as_str), Some("run-prop"));
            prop_assert!(v.get("kind").and_then(json::Value::as_str).is_some());
            seqs.push(v.get("seq").and_then(json::Value::as_u64).unwrap());
        }
        prop_assert_eq!(seqs.len() as u64, sink.seq());
        seqs.sort_unstable();
        prop_assert_eq!(seqs, (0..sink.seq()).collect::<Vec<u64>>());
    }
}
