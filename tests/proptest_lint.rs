//! Property tests on the lint layer: every schedule the lowering emits —
//! for arbitrary DAGs and for the built-in scenarios — must verify clean
//! under the happens-before checker and the deadlock detector. The
//! lowering inserts synchronization for every dependency edge, so an
//! error here is a bug in either the lowering or the verifier.

mod common;

use common::arb_small_space;
use cuda_mpi_design_rules::dag::build_schedule;
use cuda_mpi_design_rules::halo::HaloScenario;
use cuda_mpi_design_rules::lint::{
    lint, lint_space_incremental, lint_traversal, synthesize_fix, LintReport, RuleCode,
    SpaceLintOptions,
};
use cuda_mpi_design_rules::pipeline::topology_from_workload;
use cuda_mpi_design_rules::sim::{execute, CompiledProgram};
use cuda_mpi_design_rules::spmv::SpmvScenario;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_enumerated_schedule_verifies_clean(space in arb_small_space(5, 600)) {
        for t in space.enumerate() {
            let report = lint_traversal(&space, &t, None);
            prop_assert_eq!(
                report.errors().count(),
                0,
                "traversal {:?}:\n{}",
                t,
                report.render_text()
            );
        }
    }

    #[test]
    fn random_rollouts_of_large_spaces_verify_clean(
        space in arb_small_space(6, u128::MAX),
        picks in proptest::collection::vec(any::<u32>(), 64),
    ) {
        // Covers spaces far too large to enumerate via adversarial
        // rollout completion, like the dag-layer property test does.
        let mut i = 0;
        let mut prefix = space.empty_prefix();
        let t = space.complete_with(&mut prefix, |elig| {
            let k = picks.get(i % picks.len()).copied().unwrap_or(0) as usize;
            i += 1;
            k % elig.len()
        });
        let report = lint_traversal(&space, &t, None);
        prop_assert_eq!(report.errors().count(), 0, "{}", report.render_text());
    }

    #[test]
    fn incremental_space_lint_is_bit_identical_to_cold_lint(
        space in arb_small_space(5, 600),
    ) {
        // The checkpointed walk shares happens-before state along common
        // prefixes; the per-schedule reports must nevertheless match a
        // from-scratch lint of each enumerated traversal exactly.
        let cold: Vec<LintReport> = space
            .enumerate()
            .map(|t| lint_traversal(&space, &t, None))
            .collect();
        let mut inc: Vec<(u64, LintReport)> = Vec::new();
        let stats = lint_space_incremental(
            &space,
            None,
            SpaceLintOptions { max_schedules: 0, prune_deadlocks: false },
            None,
            &mut |i, _prefix, report| inc.push((i, report.clone())),
        );
        prop_assert_eq!(stats.schedules as usize, cold.len());
        prop_assert_eq!(inc.len(), cold.len());
        for (i, report) in &inc {
            prop_assert_eq!(report, &cold[*i as usize], "schedule #{}", i);
        }
        prop_assert!(
            stats.hb_expansions <= stats.cold_hb_expansions,
            "sharing can never cost more than cold: {} > {}",
            stats.hb_expansions,
            stats.cold_hb_expansions
        );
    }

    #[test]
    fn autofix_repairs_manufactured_races(space in arb_small_space(5, 600)) {
        // Stripping the lowering's cross-stream glue manufactures HB001
        // races; every fix the synthesizer produces must verifiably
        // reduce the error count when re-linted from scratch.
        for t in space.enumerate().take(8) {
            let mut s = build_schedule(&space, &t);
            let before = s.items.len();
            s.items.retain(|it| !it.name.contains("CSWE"));
            if s.items.len() == before {
                continue; // no cross-stream glue to strip
            }
            let base = lint(&space, &s, None);
            let base_errors = base.errors().count();
            for d in base.diagnostics.iter().filter(|d| d.code == RuleCode::Hb001) {
                let Some(fix) = synthesize_fix(&space, &s, None, d) else {
                    continue;
                };
                let re = lint(&space, &fix.fixed, None);
                prop_assert!(
                    re.errors().count() < base_errors,
                    "fix {:?} did not reduce errors:\n{}",
                    fix.description,
                    re.render_text()
                );
                if base_errors == 1 {
                    prop_assert_eq!(re.errors().count(), 0, "{}", re.render_text());
                }
            }
        }
    }
}

#[test]
fn full_spmv_space_lints_free_of_errors() {
    let sc = SpmvScenario::small(3);
    let topo = topology_from_workload(&sc.space, &sc.workload, &sc.platform);
    let mut n = 0;
    for t in sc.space.enumerate() {
        let report = lint_traversal(&sc.space, &t, Some(&topo));
        assert_eq!(report.errors().count(), 0, "{}", report.render_text());
        n += 1;
    }
    assert_eq!(n, 1600, "the whole space was covered");
}

#[test]
fn halo_schedules_lint_free_of_errors() {
    let sc = HaloScenario::cube2(1);
    let topo = topology_from_workload(&sc.space, &sc.workload, &sc.platform);
    for t in sc.space.enumerate().take(128) {
        let report = lint_traversal(&sc.space, &t, Some(&topo));
        assert_eq!(report.errors().count(), 0, "{}", report.render_text());
    }
}

#[test]
fn incremental_spmv_lint_is_bit_identical_and_measurably_cheaper() {
    // The acceptance bar: over the full 1600-schedule SpMV space the
    // incremental walk must reproduce every cold report exactly while
    // expanding measurably fewer happens-before rows.
    let sc = SpmvScenario::small(3);
    let topo = topology_from_workload(&sc.space, &sc.workload, &sc.platform);
    let cold: Vec<LintReport> = sc
        .space
        .enumerate()
        .map(|t| lint_traversal(&sc.space, &t, Some(&topo)))
        .collect();
    assert_eq!(cold.len(), 1600);
    let mut inc: Vec<LintReport> = Vec::new();
    let stats = lint_space_incremental(
        &sc.space,
        Some(&topo),
        SpaceLintOptions {
            max_schedules: 0,
            prune_deadlocks: false,
        },
        None,
        &mut |_, _, report| inc.push(report.clone()),
    );
    assert_eq!(stats.schedules, 1600);
    assert!(!stats.truncated);
    assert_eq!(inc, cold, "incremental reports diverge from cold lint");
    assert!(
        stats.hb_expansions < stats.cold_hb_expansions,
        "prefix sharing saved nothing: {} vs cold {}",
        stats.hb_expansions,
        stats.cold_hb_expansions
    );
}

#[test]
fn incremental_halo_lint_is_bit_identical_and_measurably_cheaper() {
    let sc = HaloScenario::cube2(1);
    let topo = topology_from_workload(&sc.space, &sc.workload, &sc.platform);
    let cold: Vec<LintReport> = sc
        .space
        .enumerate()
        .take(128)
        .map(|t| lint_traversal(&sc.space, &t, Some(&topo)))
        .collect();
    let mut inc: Vec<LintReport> = Vec::new();
    let stats = lint_space_incremental(
        &sc.space,
        Some(&topo),
        SpaceLintOptions {
            max_schedules: 128,
            prune_deadlocks: false,
        },
        None,
        &mut |_, _, report| inc.push(report.clone()),
    );
    assert_eq!(stats.schedules, 128);
    assert_eq!(inc, cold, "incremental reports diverge from cold lint");
    assert!(
        stats.hb_expansions < stats.cold_hb_expansions,
        "prefix sharing saved nothing: {} vs cold {}",
        stats.hb_expansions,
        stats.cold_hb_expansions
    );
}

#[test]
fn autofix_agrees_with_the_simulation_oracle_on_spmv() {
    // Manufacture an HB001 race in a real SpMV schedule by stripping the
    // cross-stream glue, repair it, and cross-check the repaired
    // schedule against the simulator: it must compile and execute to
    // completion (the inserted synchronization is real, not just
    // lint-appeasing).
    let sc = SpmvScenario::small(3);
    let mut repaired = 0;
    for t in sc.space.enumerate() {
        let mut s = build_schedule(&sc.space, &t);
        let before = s.items.len();
        s.items.retain(|it| !it.name.contains("CSWE"));
        if s.items.len() == before {
            continue;
        }
        let base = lint(&sc.space, &s, None);
        let Some(d) = base
            .diagnostics
            .iter()
            .find(|d| d.code == RuleCode::Hb001)
            .cloned()
        else {
            continue;
        };
        let fix = synthesize_fix(&sc.space, &s, None, &d).expect("HB001 must be repairable");
        let re = lint(&sc.space, &fix.fixed, None);
        assert_eq!(re.errors().count(), 0, "{}", re.render_text());
        let prog = CompiledProgram::compile(&fix.fixed, &sc.workload)
            .expect("fixed schedule must compile");
        let mut rng = SmallRng::seed_from_u64(7);
        let outcome = execute(&prog, &sc.platform, &mut rng).expect("fixed schedule must execute");
        assert!(outcome.time().is_finite());
        repaired += 1;
        if repaired >= 4 {
            break;
        }
    }
    assert!(repaired > 0, "no SpMV schedule had cross-stream glue");
}

#[test]
fn redundant_sync_autofix_keeps_spmv_executable() {
    // The lowering emits minimal synchronization, so SpMV schedules are
    // RS-clean out of the box; inject an extra same-stream record+wait
    // pair (pure overhead) to manufacture RS001. The fix must *remove*
    // it, and the simulator must agree the pruned schedule still runs
    // to completion.
    use cuda_mpi_design_rules::dag::{ScheduleAction, ScheduledItem};
    let sc = SpmvScenario::small(3);
    let mut removed = 0;
    for t in sc.space.enumerate().take(32) {
        let mut s = build_schedule(&sc.space, &t);
        let Some(at) = s.items.iter().position(
            |it| matches!(it.action, ScheduleAction::KernelLaunch { stream, .. } if stream == 0),
        ) else {
            continue;
        };
        let event = s.num_events;
        s.num_events += 1;
        s.items.insert(
            at + 1,
            ScheduledItem {
                name: "CER-extra".into(),
                action: ScheduleAction::EventRecord { event, stream: 0 },
                source: None,
            },
        );
        s.items.insert(
            at + 2,
            ScheduledItem {
                name: "CSWE-extra".into(),
                action: ScheduleAction::StreamWaitEvent { stream: 0, event },
                source: None,
            },
        );
        let base = lint(&sc.space, &s, None);
        let Some(d) = base
            .diagnostics
            .iter()
            .find(|d| matches!(d.code, RuleCode::Rs001 | RuleCode::Rs002 | RuleCode::Rs004))
            .cloned()
        else {
            continue;
        };
        let Some(fix) = synthesize_fix(&sc.space, &s, None, &d) else {
            continue;
        };
        let re = lint(&sc.space, &fix.fixed, None);
        assert_eq!(re.errors().count(), 0, "{}", re.render_text());
        assert!(re.warnings().count() < base.warnings().count());
        let prog = CompiledProgram::compile(&fix.fixed, &sc.workload)
            .expect("pruned schedule must compile");
        let mut rng = SmallRng::seed_from_u64(7);
        let outcome = execute(&prog, &sc.platform, &mut rng).expect("pruned schedule must execute");
        assert!(outcome.time().is_finite());
        removed += 1;
        if removed >= 4 {
            break;
        }
    }
    assert!(
        removed > 0,
        "no SpMV schedule had a removable redundant sync"
    );
}
