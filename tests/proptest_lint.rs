//! Property tests on the lint layer: every schedule the lowering emits —
//! for arbitrary DAGs and for the built-in scenarios — must verify clean
//! under the happens-before checker and the deadlock detector. The
//! lowering inserts synchronization for every dependency edge, so an
//! error here is a bug in either the lowering or the verifier.

mod common;

use common::arb_small_space;
use cuda_mpi_design_rules::halo::HaloScenario;
use cuda_mpi_design_rules::lint::lint_traversal;
use cuda_mpi_design_rules::pipeline::topology_from_workload;
use cuda_mpi_design_rules::spmv::SpmvScenario;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_enumerated_schedule_verifies_clean(space in arb_small_space(5, 600)) {
        for t in space.enumerate() {
            let report = lint_traversal(&space, &t, None);
            prop_assert_eq!(
                report.errors().count(),
                0,
                "traversal {:?}:\n{}",
                t,
                report.render_text()
            );
        }
    }

    #[test]
    fn random_rollouts_of_large_spaces_verify_clean(
        space in arb_small_space(6, u128::MAX),
        picks in proptest::collection::vec(any::<u32>(), 64),
    ) {
        // Covers spaces far too large to enumerate via adversarial
        // rollout completion, like the dag-layer property test does.
        let mut i = 0;
        let mut prefix = space.empty_prefix();
        let t = space.complete_with(&mut prefix, |elig| {
            let k = picks.get(i % picks.len()).copied().unwrap_or(0) as usize;
            i += 1;
            k % elig.len()
        });
        let report = lint_traversal(&space, &t, None);
        prop_assert_eq!(report.errors().count(), 0, "{}", report.render_text());
    }
}

#[test]
fn full_spmv_space_lints_free_of_errors() {
    let sc = SpmvScenario::small(3);
    let topo = topology_from_workload(&sc.space, &sc.workload, &sc.platform);
    let mut n = 0;
    for t in sc.space.enumerate() {
        let report = lint_traversal(&sc.space, &t, Some(&topo));
        assert_eq!(report.errors().count(), 0, "{}", report.render_text());
        n += 1;
    }
    assert_eq!(n, 1600, "the whole space was covered");
}

#[test]
fn halo_schedules_lint_free_of_errors() {
    let sc = HaloScenario::cube2(1);
    let topo = topology_from_workload(&sc.space, &sc.workload, &sc.platform);
    for t in sc.space.enumerate().take(128) {
        let report = lint_traversal(&sc.space, &t, Some(&topo));
        assert_eq!(report.errors().count(), 0, "{}", report.render_text());
    }
}
