//! End-to-end exercise of the observability surface through the real
//! `dr-rules` binary: `--events`/`--progress` runs must produce the
//! bit-identical record set of a silent run (observation never perturbs
//! the search), event streams must parse line-by-line with gapless
//! sequence numbers under `DR_THREADS=4`, `explain` must render tree
//! statistics and per-rule provenance (text + `dr-explain/v1` JSON),
//! and `bench` must append comparable `BENCH_*.json` history entries
//! that pass the `compare` regression gate against themselves.

use cuda_mpi_design_rules::obs::json;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dr-rules")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dr-obs-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(args: &[&str], envs: &[(&str, &str)], cwd: &Path) -> Output {
    let out = Command::new(bin())
        .args(args)
        .current_dir(cwd)
        .env_remove("DR_FAULTS")
        .env_remove("DR_LEDGER")
        .env_remove("DR_THREADS")
        .env_remove("DR_SEARCH")
        .env_remove("DR_SCALE")
        .env_remove("DR_SEED")
        .env_remove("DR_EVENTS_RATE")
        .env_remove("DR_RUN_ID")
        .envs(envs.iter().copied())
        .output()
        .expect("dr-rules spawns");
    assert!(
        out.status.success(),
        "dr-rules {args:?} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The `records.fingerprint` of the single entry in `dir`'s ledger.
fn ledger_fingerprint(dir: &Path) -> String {
    let text = std::fs::read_to_string(dir.join("ledger.jsonl")).unwrap();
    let line = text.lines().next().expect("one ledger entry");
    let v = json::parse(line).unwrap();
    v.path(&["records", "fingerprint"])
        .and_then(|f| f.as_str())
        .expect("ledger entry carries a record fingerprint")
        .to_string()
}

#[test]
fn observed_runs_are_bit_identical_to_silent_runs() {
    let dir = scratch("bit-identity");
    let (silent, observed) = (dir.join("silent"), dir.join("observed"));
    let events = dir.join("events.ndjson");
    run_ok(
        &[
            "spmv",
            "explore",
            "--iterations",
            "30",
            "--seed",
            "2",
            "--ledger",
            &silent.display().to_string(),
        ],
        &[],
        &dir,
    );
    // The same run observed two ways at once: NDJSON stream + progress
    // renderer. The record set must not change by a single bit.
    let out = run_ok(
        &[
            "spmv",
            "explore",
            "--iterations",
            "30",
            "--seed",
            "2",
            "--ledger",
            &observed.display().to_string(),
            "--events",
            &events.display().to_string(),
            "--progress",
        ],
        &[],
        &dir,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("events to"), "{stdout}");
    assert_eq!(ledger_fingerprint(&silent), ledger_fingerprint(&observed));
    // Stderr carried plain progress lines (the test harness pipes
    // stderr, so the renderer is in non-TTY mode — no control codes).
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("traversals"), "{stderr}");
    assert!(
        !stderr.contains('\x1b'),
        "non-TTY must not emit ANSI: {stderr:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn event_stream_parses_with_gapless_seqs_under_four_threads() {
    let dir = scratch("events-threads");
    let events = dir.join("events.ndjson");
    run_ok(
        &[
            "spmv",
            "explore",
            "--iterations",
            "60",
            "--seed",
            "3",
            "--events",
            &events.display().to_string(),
        ],
        &[("DR_THREADS", "4"), ("DR_EVENTS_RATE", "4")],
        &dir,
    );
    let text = std::fs::read_to_string(&events).unwrap();
    let mut seqs: Vec<u64> = Vec::new();
    let mut kinds: Vec<String> = Vec::new();
    let mut runs: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let v = json::parse(line).unwrap_or_else(|e| panic!("line {i} unparsable: {e}\n{line}"));
        assert_eq!(
            v.get("schema").and_then(json::Value::as_str),
            Some("dr-events/v1"),
            "{line}"
        );
        runs.push(
            v.get("run")
                .and_then(json::Value::as_str)
                .unwrap()
                .to_string(),
        );
        seqs.push(v.get("seq").and_then(json::Value::as_u64).unwrap());
        assert!(v.get("t_s").and_then(json::Value::as_f64).unwrap() >= 0.0);
        kinds.push(
            v.get("kind")
                .and_then(json::Value::as_str)
                .unwrap()
                .to_string(),
        );
    }
    // Every line names the same run; the sequence numbers are exactly
    // 0..n once sorted (worker threads may commit lines out of order,
    // but none may be lost or duplicated).
    assert!(runs.windows(2).all(|w| w[0] == w[1]), "mixed run ids");
    seqs.sort_unstable();
    assert_eq!(seqs, (0..seqs.len() as u64).collect::<Vec<u64>>());
    for expected in [
        "run-start",
        "phase-start",
        "phase-end",
        "worker-start",
        "worker-end",
        "mcts-iter",
        "eval",
        "run-end",
    ] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "missing {expected} in {kinds:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_renders_tree_and_rule_provenance_on_spmv() {
    let dir = scratch("explain");
    let report = dir.join("explain.json");
    let out = run_ok(
        &[
            "spmv",
            "explain",
            "--iterations",
            "60",
            "--seed",
            "2",
            "--report",
            &report.display().to_string(),
        ],
        &[],
        &dir,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "== MCTS tree",
        "top nodes by visits:",
        "principal variations:",
        "== rule provenance",
        "support class",
        "simulated time over",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }

    let text = std::fs::read_to_string(&report).unwrap();
    let v = json::parse(&text).unwrap();
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some("dr-explain/v1")
    );
    let records = v.get("records").and_then(json::Value::as_u64).unwrap();
    assert!(records > 0);
    assert!(
        v.path(&["tree", "nodes"])
            .and_then(json::Value::as_u64)
            .unwrap()
            > 0
    );
    assert!(
        v.path(&["tree", "rollouts"])
            .and_then(json::Value::as_u64)
            .unwrap()
            > 0
    );
    let pvs = v
        .get("principal_variations")
        .and_then(json::Value::as_arr)
        .unwrap();
    assert!(!pvs.is_empty(), "no principal variations");
    let rules = v.get("rules").and_then(json::Value::as_arr).unwrap();
    assert!(!rules.is_empty(), "no rule provenance");
    for rule in rules {
        let support = rule.get("support").and_then(json::Value::as_arr).unwrap();
        for class_indices in support {
            for idx in class_indices.as_arr().unwrap() {
                assert!(
                    idx.as_u64().unwrap() < records,
                    "support index out of range"
                );
            }
        }
        assert!(!rule
            .get("predicates")
            .and_then(json::Value::as_arr)
            .unwrap()
            .is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_renders_identical_stats_from_the_shared_arena() {
    // `DR_SEARCH=shared` routes `explain` through the shared-tree arena;
    // the rendered statistics must keep the exact serial-tree shape
    // (same needles, same `dr-explain/v1` schema) and be bit-identical
    // across repeated runs regardless of the worker count.
    let dir = scratch("explain-shared");
    let report = dir.join("explain-shared.json");
    let args = [
        "spmv",
        "explain",
        "--iterations",
        "60",
        "--seed",
        "2",
        "--report",
        &report.display().to_string(),
    ];
    let envs = [("DR_SEARCH", "shared"), ("DR_THREADS", "4")];
    let first = run_ok(&args, &envs, &dir);
    let first_stdout = String::from_utf8_lossy(&first.stdout).to_string();
    let first_json = std::fs::read_to_string(&report).unwrap();
    for needle in [
        "== MCTS tree (seed 2, 60 iterations requested",
        "nodes per depth:",
        "top nodes by visits:",
        "principal variations:",
        "== rule provenance",
        "support class",
    ] {
        assert!(
            first_stdout.contains(needle),
            "missing {needle:?} in:\n{first_stdout}"
        );
    }
    let v = json::parse(&first_json).unwrap();
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some("dr-explain/v1")
    );
    assert!(
        v.path(&["tree", "nodes"])
            .and_then(json::Value::as_u64)
            .unwrap()
            > 0
    );

    let again = run_ok(&args, &envs, &dir);
    assert_eq!(
        first_stdout,
        String::from_utf8_lossy(&again.stdout),
        "shared-arena explain must be deterministic"
    );
    assert_eq!(
        first_json,
        std::fs::read_to_string(&report).unwrap(),
        "shared-arena explain JSON must be deterministic"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_appends_histories_that_pass_their_own_compare_gate() {
    let dir = scratch("bench");
    // `bench` writes into the working directory, so pin it to scratch —
    // the committed repo-root histories must not grow during tests.
    let out = run_ok(&["spmv", "bench"], &[], &dir);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("appended to BENCH_pipeline.json (1 entries)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("appended to BENCH_explore.json (1 entries)"),
        "{stdout}"
    );
    for file in ["BENCH_pipeline.json", "BENCH_explore.json"] {
        let text = std::fs::read_to_string(dir.join(file)).unwrap();
        let v = json::parse(&text).unwrap();
        assert_eq!(
            v.get("schema").and_then(json::Value::as_str),
            Some("dr-bench/v1"),
            "{file}"
        );
        assert_eq!(
            v.get("entries")
                .and_then(json::Value::as_arr)
                .unwrap()
                .len(),
            1
        );
    }
    // A history must compare clean against itself under the CI bands.
    let out = run_ok(
        &[
            "spmv",
            "compare",
            "BENCH_pipeline.json",
            "BENCH_pipeline.json",
            "--threshold",
            "25",
            "--abs-floor-ms",
            "250",
            "--noise-k",
            "8",
        ],
        &[],
        &dir,
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bench pipeline"), "{stdout}");
    assert!(stdout.contains("verdict: OK"), "{stdout}");
    // Mixed-kind comparisons are rejected up front.
    let out = Command::new(bin())
        .args([
            "spmv",
            "compare",
            "BENCH_pipeline.json",
            "BENCH_explore.json",
        ])
        .current_dir(&dir)
        .output()
        .expect("dr-rules spawns");
    assert!(!out.status.success(), "kind mismatch must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot compare"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
