//! End-to-end integration: the full Fig.-2 pipeline on the SpMV
//! demonstration workload, spanning every crate in the workspace.

use cuda_mpi_design_rules::mcts::MctsConfig;
use cuda_mpi_design_rules::ml::FeatureKind;
use cuda_mpi_design_rules::pipeline::{labeling_accuracy, run_pipeline, PipelineConfig, Strategy};
use cuda_mpi_design_rules::sim::BenchConfig;
use cuda_mpi_design_rules::spmv::SpmvScenario;

fn fast_config() -> PipelineConfig {
    PipelineConfig {
        bench: BenchConfig {
            t_measure: 1e-4,
            num_measurements: 3,
            max_samples: 3,
        },
        ..Default::default()
    }
}

#[test]
fn spmv_space_is_paper_scale() {
    let sc = SpmvScenario::small(1);
    let count = sc.space.count_traversals();
    assert_eq!(count, 1600, "documented demonstration space size");
}

#[test]
fn mcts_pipeline_discovers_multiple_classes_and_learns_them() {
    let sc = SpmvScenario::small(3);
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Mcts {
            iterations: 250,
            config: MctsConfig {
                seed: 3,
                ..Default::default()
            },
        },
        &fast_config(),
    )
    .unwrap();
    assert!(
        result.labeling.num_classes >= 2,
        "the SpMV landscape is multi-modal"
    );
    assert!(
        result.search.error < 0.05,
        "orderings/streams explain the classes: err {}",
        result.search.error
    );
    // The rules must reference both ordering and stream features.
    let kinds: Vec<FeatureKind> = result
        .rulesets
        .iter()
        .flat_map(|rs| rs.rules.iter().map(|r| r.kind))
        .collect();
    assert!(kinds.iter().any(|k| matches!(k, FeatureKind::Before(_, _))));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, FeatureKind::SameStream(_, _))));
}

#[test]
fn subset_rules_classify_their_own_records_perfectly() {
    let sc = SpmvScenario::small(5);
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Mcts {
            iterations: 120,
            config: MctsConfig {
                seed: 5,
                ..Default::default()
            },
        },
        &fast_config(),
    )
    .unwrap();
    if result.search.error == 0.0 {
        let truth: Vec<_> = result
            .records
            .iter()
            .map(|r| (r.traversal.clone(), r.result.time()))
            .collect();
        let report = labeling_accuracy(&sc.space, &result, &truth, 0.0);
        assert_eq!(report.accuracy(), 1.0);
    }
}

#[test]
fn more_iterations_never_reduce_explored_count() {
    let sc = SpmvScenario::small(9);
    let mut prev = 0usize;
    for iters in [20usize, 60, 120] {
        let result = run_pipeline(
            &sc.space,
            &sc.workload,
            &sc.platform,
            Strategy::Mcts {
                iterations: iters,
                config: MctsConfig {
                    seed: 9,
                    ..Default::default()
                },
            },
            &fast_config(),
        )
        .unwrap();
        assert!(result.records.len() >= prev);
        assert!(result.records.len() <= iters);
        prev = result.records.len();
    }
}

#[test]
fn random_strategy_also_supports_the_pipeline() {
    let sc = SpmvScenario::small(13);
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Random {
            iterations: 100,
            seed: 13,
        },
        &fast_config(),
    )
    .unwrap();
    assert!(!result.records.is_empty());
    assert!(!result.rulesets.is_empty());
    // Every ruleset's class is a valid label.
    for rs in &result.rulesets {
        assert!(rs.class < result.labeling.num_classes);
    }
}

#[test]
fn fastest_class_rules_actually_produce_fast_implementations() {
    // Mine rules, then check them *forward*: traversals satisfying the
    // fastest class's dominant ruleset must benchmark inside (or near)
    // that class's range — the paper's intended use of the rules.
    let sc = SpmvScenario::small(17);
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Mcts {
            iterations: 300,
            config: MctsConfig {
                seed: 17,
                ..Default::default()
            },
        },
        &fast_config(),
    )
    .unwrap();
    if result.search.error > 0.0 {
        return; // tree imperfect; forward guarantee does not apply
    }
    let (_, hi) = result.labeling.class_ranges[0];
    let all: Vec<_> = sc.space.enumerate().collect();
    let mut checked = 0;
    // Step must be coprime-ish with the space layout and small enough that
    // the sweep hits class-0 members regardless of the rng stream.
    for t in all.iter().step_by(7) {
        if result.classify(&sc.space, t) == 0 {
            let time = sc.benchmark(t, &fast_config().bench, 1234).unwrap().time();
            assert!(
                time <= hi * 1.10,
                "claimed-fast implementation measured {time}, class-0 max {hi}"
            );
            checked += 1;
        }
    }
    assert!(
        checked > 0,
        "the sweep must hit at least one fast implementation"
    );
}

#[test]
fn synthesized_implementations_obey_their_rulesets() {
    use cuda_mpi_design_rules::ml::rulesets_for_class;
    use cuda_mpi_design_rules::pipeline::{satisfies, synthesize};
    let sc = SpmvScenario::small(23);
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Mcts {
            iterations: 150,
            config: MctsConfig {
                seed: 23,
                ..Default::default()
            },
        },
        &fast_config(),
    )
    .unwrap();
    for class in 0..result.labeling.num_classes {
        for rs in rulesets_for_class(&result.rulesets, class).iter().take(2) {
            let t = synthesize(&sc.space, &rs.rules)
                .expect("rules mined from real traversals are satisfiable");
            assert!(satisfies(&sc.space, &t, &rs.rules));
            sc.space.validate(&t).unwrap();
            // The learned tree classifies the synthesized implementation
            // into the ruleset's class (the path conditions pin it down,
            // provided the synthesized vector matches the leaf).
            if rs.pure && result.search.error == 0.0 {
                assert_eq!(result.classify(&sc.space, &t), class);
            }
        }
    }
}
