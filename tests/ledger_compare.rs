//! End-to-end exercise of the run ledger and the `compare` regression
//! gate through the real `dr-rules` binary: same-seed runs must compare
//! clean (exit 0), while a fault-injected run must be flagged as
//! resilience drift (exit nonzero). Also covers the acceptance
//! invocation `dr-rules spmv --trace out.json`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dr-rules")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dr-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let out = Command::new(bin())
        .args(args)
        .env_remove("DR_FAULTS")
        .env_remove("DR_LEDGER")
        .envs(envs.iter().copied())
        .output()
        .expect("dr-rules spawns");
    assert!(
        out.status.success(),
        "dr-rules {args:?} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn explore_into(ledger: &Path, seed: u64, envs: &[(&str, &str)]) {
    let ledger = ledger.display().to_string();
    let seed = seed.to_string();
    let args = [
        "spmv",
        "explore",
        "--iterations",
        "25",
        "--seed",
        &seed,
        "--ledger",
        &ledger,
    ];
    let out = run_ok(&args, envs);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("appended ledger entry"), "{stdout}");
}

fn compare(a: &Path, b: &Path) -> Output {
    Command::new(bin())
        .args([
            "spmv",
            "compare",
            &a.display().to_string(),
            &b.display().to_string(),
        ])
        .env_remove("DR_FAULTS")
        .output()
        .expect("dr-rules spawns")
}

#[test]
fn same_seed_runs_compare_identical_and_exit_zero() {
    let dir = scratch("same-seed");
    let (la, lb) = (dir.join("a"), dir.join("b"));
    explore_into(&la, 2, &[]);
    explore_into(&lb, 2, &[]);

    let out = compare(&la, &lb);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "compare regressed:\n{stdout}");
    assert!(stdout.contains("records: identical"), "{stdout}");
    assert!(stdout.contains("verdict: OK"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ledger_env_var_is_honored() {
    let dir = scratch("env-ledger");
    let ledger = dir.join("from-env");
    let out = run_ok(
        &["spmv", "explore", "--iterations", "25", "--seed", "2"],
        &[("DR_LEDGER", &ledger.display().to_string())],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("appended ledger entry"), "{stdout}");
    assert!(ledger.join("ledger.jsonl").is_file());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faulted_run_is_flagged_as_regression_with_nonzero_exit() {
    let dir = scratch("faulted");
    let (clean, faulted) = (dir.join("clean"), dir.join("faulted"));
    explore_into(&clean, 2, &[]);
    // The same run under light fault injection: resilience counters
    // appear where the baseline had none — the compare gate must flag
    // the drift and exit nonzero.
    explore_into(&faulted, 2, &[("DR_FAULTS", "light")]);

    let out = compare(&clean, &faulted);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "fault drift must exit nonzero:\n{stdout}"
    );
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("resilience"), "{stdout}");
    assert!(stderr.contains("regression"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn omitted_command_with_trace_writes_merged_perfetto_json() {
    let dir = scratch("trace");
    let trace = dir.join("out.json");
    // The acceptance invocation: no command, just `--trace`.
    let out = run_ok(
        &[
            "spmv",
            "--trace",
            &trace.display().to_string(),
            "--iterations",
            "25",
            "--seed",
            "2",
        ],
        &[],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote merged trace"), "{stdout}");
    let json = std::fs::read_to_string(&trace).unwrap();
    cuda_mpi_design_rules::obs::json::validate(&json).unwrap();
    // Pipeline span rows and the simulated implementation's rank/stream
    // rows coexist in one file under distinct process names.
    assert!(json.contains("\"dr pipeline\""));
    assert!(json.contains("\"pipeline\""));
    assert!(json.contains("\"rank 0\""));
    assert!(json.contains("\"stream0\""));
    let _ = std::fs::remove_dir_all(&dir);
}
