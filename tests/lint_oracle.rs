//! Cross-checks the static lint layer against the simulator (the ground
//! truth for deadlock) and against hand-injected schedule faults: each
//! corruption must surface as exactly the expected rule code.

use cuda_mpi_design_rules::dag::{
    build_schedule, CommKey, CostKey, DagBuilder, DecisionSpace, OpSpec, Schedule, ScheduleAction,
};
use cuda_mpi_design_rules::lint::{lint, RuleCode};
use cuda_mpi_design_rules::pipeline::topology_from_workload;
use cuda_mpi_design_rules::sim::{execute, CompiledProgram, Platform, SimError, TableWorkload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The canonical exchange program: post sends/recvs, then wait for both.
fn exchange_space() -> DecisionSpace {
    let key = CommKey::new("x");
    let mut b = DagBuilder::new();
    let ps = b.add("ps", OpSpec::PostSends(key.clone()));
    let pr = b.add("pr", OpSpec::PostRecvs(key.clone()));
    let ws = b.add("ws", OpSpec::WaitSends(key.clone()));
    let wr = b.add("wr", OpSpec::WaitRecvs(key));
    b.edge(ps, ws);
    b.edge(pr, wr);
    b.edge(ps, wr);
    DecisionSpace::new(b.build().unwrap(), 1).unwrap()
}

/// Every traversal of the exchange space, judged by both the lint layer
/// and the simulator: the deadlock verdicts must agree exactly, eager and
/// rendezvous alike.
#[test]
fn lint_deadlock_verdict_matches_the_simulator() {
    let platform = Platform::perlmutter_like().noiseless();
    for bytes in [256, 1 << 20] {
        let space = exchange_space();
        let mut w = TableWorkload::new(2);
        w.comm_all_to_all("x", bytes);
        let topo = topology_from_workload(&space, &w, &platform);
        let (mut clean, mut dead) = (0, 0);
        for t in space.enumerate() {
            let schedule = build_schedule(&space, &t);
            let report = lint(&space, &schedule, Some(&topo));
            let prog = CompiledProgram::compile(&schedule, &w).unwrap();
            let sim = execute(&prog, &platform, &mut SmallRng::seed_from_u64(0));
            let sim_deadlocked = matches!(sim, Err(SimError::Deadlock { .. }));
            assert_eq!(
                report.deadlocks() > 0,
                sim_deadlocked,
                "verdicts disagree at {bytes} B on {:?}:\n{}",
                schedule.names(),
                report.render_text()
            );
            if sim_deadlocked {
                dead += 1;
            } else {
                clean += 1;
            }
        }
        assert!(clean > 0, "some orders complete at {bytes} B");
        if bytes > platform.eager_threshold {
            assert!(dead > 0, "some rendezvous orders must deadlock");
        } else {
            assert_eq!(dead, 0, "eager messages never deadlock here");
        }
    }
}

/// A two-kernel dependent space wide enough to force cross-stream glue.
fn two_kernel_space() -> DecisionSpace {
    let mut b = DagBuilder::new();
    let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
    let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
    b.edge(g1, g2);
    DecisionSpace::new(b.build().unwrap(), 2).unwrap()
}

/// A lowered schedule that actually uses a `StreamWaitEvent` (kernels on
/// different streams).
fn cross_stream_schedule(space: &DecisionSpace) -> Schedule {
    space
        .enumerate()
        .map(|t| build_schedule(space, &t))
        .find(|s| {
            s.items
                .iter()
                .any(|i| matches!(i.action, ScheduleAction::StreamWaitEvent { .. }))
        })
        .expect("a 2-stream space has a cross-stream lowering")
}

#[test]
fn dropping_the_stream_wait_is_a_race() {
    let space = two_kernel_space();
    let mut s = cross_stream_schedule(&space);
    s.items
        .retain(|i| !matches!(i.action, ScheduleAction::StreamWaitEvent { .. }));
    let report = lint(&space, &s, None);
    assert!(report.has_code(RuleCode::Hb001), "{}", report.render_text());
    assert!(report.races() > 0);
}

#[test]
fn swapping_record_and_wait_order_is_flagged() {
    let space = two_kernel_space();
    let mut s = cross_stream_schedule(&space);
    let rec = s
        .items
        .iter()
        .position(|i| matches!(i.action, ScheduleAction::EventRecord { .. }))
        .unwrap();
    let wait = s
        .items
        .iter()
        .position(|i| matches!(i.action, ScheduleAction::StreamWaitEvent { .. }))
        .unwrap();
    assert!(rec < wait, "lowering records before waiting");
    s.items.swap(rec, wait);
    let report = lint(&space, &s, None);
    assert!(report.has_code(RuleCode::Hb002), "{}", report.render_text());
    assert!(report.races() > 0);
}

#[test]
fn waiting_for_sends_that_are_never_posted_is_a_deadlock() {
    // A receive-only program against a topology that expects traffic:
    // the matching remote PostSends never appears in the (SPMD) schedule.
    let key = CommKey::new("x");
    let mut b = DagBuilder::new();
    let pr = b.add("pr", OpSpec::PostRecvs(key.clone()));
    let wr = b.add("wr", OpSpec::WaitRecvs(key));
    b.edge(pr, wr);
    let space = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
    let mut w = TableWorkload::new(2);
    w.comm_all_to_all("x", 1 << 20);
    let topo = topology_from_workload(&space, &w, &Platform::perlmutter_like());
    let t = space.enumerate().next().unwrap();
    let report = lint(&space, &build_schedule(&space, &t), Some(&topo));
    assert!(
        report.has_code(RuleCode::Mpi103),
        "{}",
        report.render_text()
    );
    assert!(report.deadlocks() > 0);
}

#[test]
fn over_synchronized_join_is_reported_as_redundant() {
    // Two GPU kernels feeding one CPU join: when both land on the same
    // stream, the lowering's per-edge event sync is partly dominated by
    // stream FIFO order — the lint layer must say so.
    let mut b = DagBuilder::new();
    let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
    let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
    let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
    b.edge(g1, c);
    b.edge(g2, c);
    let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
    let same_stream = space
        .enumerate()
        .find(|t| {
            let streams: Vec<_> = t.steps.iter().filter_map(|p| p.stream).collect();
            streams.len() == 2 && streams[0] == streams[1]
        })
        .expect("some traversal runs both kernels on one stream");
    let report = lint(&space, &build_schedule(&space, &same_stream), None);
    assert_eq!(report.errors().count(), 0, "{}", report.render_text());
    assert!(report.has_code(RuleCode::Rs003), "{}", report.render_text());
    assert!(report.redundant_syncs() > 0);
}
