//! Property tests on the rule-mining pipeline: labeling, features, and
//! the CART implementation obey their invariants on arbitrary inputs.

mod common;

use common::arb_small_space;
use cuda_mpi_design_rules::dag::Traversal;
use cuda_mpi_design_rules::ml::{
    featurize, label_times, signal, BitRow, DecisionTree, LabelingConfig, TrainConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn labeling_partitions_the_samples(
        times in proptest::collection::vec(1e-6f64..1.0, 1..400),
    ) {
        let l = label_times(&times, &LabelingConfig::default());
        prop_assert_eq!(l.labels.len(), times.len());
        prop_assert_eq!(l.num_classes, l.boundaries.len() + 1);
        prop_assert_eq!(l.class_ranges.len(), l.num_classes);
        // Boundaries strictly increase and stay interior.
        for w in l.boundaries.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        if let (Some(&first), Some(&last)) = (l.boundaries.first(), l.boundaries.last()) {
            prop_assert!(first > 0 && last < times.len());
        }
        // Every class is non-empty and labels cover 0..num_classes.
        for c in 0..l.num_classes {
            prop_assert!(l.labels.contains(&c), "class {} empty", c);
        }
        // Faster samples never get a slower class than slower samples.
        let mut idx: Vec<usize> = (0..times.len()).collect();
        idx.sort_by(|&a, &b| times[a].partial_cmp(&times[b]).unwrap());
        for w in idx.windows(2) {
            prop_assert!(l.labels[w[0]] <= l.labels[w[1]]);
        }
        // Class ranges are ordered and consistent with membership.
        for (c, &(lo, hi)) in l.class_ranges.iter().enumerate() {
            prop_assert!(lo <= hi);
            for (i, &t) in times.iter().enumerate() {
                if l.labels[i] == c {
                    prop_assert!(t >= lo && t <= hi);
                }
            }
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded(
        mut data in proptest::collection::vec(-1e3f64..1e3, 1..100),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0,
    ) {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let p_lo = signal::percentile(&data, lo);
        let p_hi = signal::percentile(&data, hi);
        prop_assert!(p_lo <= p_hi + 1e-12);
        prop_assert!(p_lo >= data[0] - 1e-12);
        prop_assert!(p_hi <= data[data.len() - 1] + 1e-12);
    }

    #[test]
    fn peaks_are_interior_local_maxima_with_positive_prominence(
        data in proptest::collection::vec(-10.0f64..10.0, 3..200),
    ) {
        let peaks = signal::find_peaks(&data);
        let proms = signal::peak_prominences(&data, &peaks);
        for (&p, &prom) in peaks.iter().zip(&proms) {
            prop_assert!(p > 0 && p < data.len() - 1);
            prop_assert!(prom > 0.0, "peak {} has prominence {}", p, prom);
            prop_assert!(prom <= data[p] - data.iter().cloned().fold(f64::INFINITY, f64::min) + 1e-12);
        }
    }

    #[test]
    fn cart_beats_or_matches_the_majority_baseline(
        rows in proptest::collection::vec(
            (proptest::collection::vec(any::<bool>(), 4), 0usize..3),
            4..120,
        ),
    ) {
        let x: Vec<BitRow> = rows.iter().map(|(f, _)| BitRow::from_bools(f)).collect();
        let y: Vec<usize> = rows.iter().map(|(_, c)| *c).collect();
        let tree = DecisionTree::fit(&x, &y, 3, &TrainConfig::default());
        // Weighted error of predicting the best single class everywhere.
        let cfg = TrainConfig { max_leaf_nodes: Some(1), ..Default::default() };
        let stump = DecisionTree::fit(&x, &y, 3, &cfg);
        prop_assert!(tree.error(&x, &y) <= stump.error(&x, &y) + 1e-12);
        // Depth/leaf invariants.
        prop_assert!(tree.num_leaves() >= 1);
        prop_assert!(tree.depth() < tree.num_leaves().max(2));
    }

    #[test]
    fn cart_respects_leaf_budget(
        rows in proptest::collection::vec(
            (proptest::collection::vec(any::<bool>(), 3), 0usize..2),
            4..80,
        ),
        budget in 1usize..6,
    ) {
        let x: Vec<BitRow> = rows.iter().map(|(f, _)| BitRow::from_bools(f)).collect();
        let y: Vec<usize> = rows.iter().map(|(_, c)| *c).collect();
        let cfg = TrainConfig { max_leaf_nodes: Some(budget), ..Default::default() };
        let tree = DecisionTree::fit(&x, &y, 2, &cfg);
        prop_assert!(tree.num_leaves() <= budget.max(1));
    }

    #[test]
    fn feature_matrix_has_no_constant_or_duplicate_columns(
        space in arb_small_space(4, 300),
    ) {
        let all: Vec<_> = space.enumerate().collect();
        let refs: Vec<&Traversal> = all.iter().collect();
        let fs = featurize(&space, &refs);
        prop_assert_eq!(fs.num_samples(), all.len());
        for j in 0..fs.num_features() {
            let col: Vec<bool> = fs.matrix.iter().map(|r| r[j]).collect();
            prop_assert!(col.iter().any(|&b| b) && col.iter().any(|&b| !b));
            for k in j + 1..fs.num_features() {
                let col_k: Vec<bool> = fs.matrix.iter().map(|r| r[k]).collect();
                prop_assert_ne!(&col, &col_k);
            }
        }
        // vector_of round-trips every sample.
        for (s, t) in all.iter().enumerate() {
            prop_assert_eq!(&fs.vector_of(&space, t), &fs.matrix[s]);
        }
    }
}
