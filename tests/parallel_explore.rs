//! Determinism regression for the parallel exploration engine: for every
//! strategy and thread count, `explore_parallel` must produce the same
//! `(traversal, time)` set as the serial backend — on a *noisy* platform,
//! where any seed drift (per-index seeds, worker-dependent seeds, cache
//! races) would surface as differing measurement bits.

use cuda_mpi_design_rules::dag::{CostKey, DagBuilder, DecisionSpace, OpSpec, Traversal};
use cuda_mpi_design_rules::mcts::{MctsConfig, SimEvaluator};
use cuda_mpi_design_rules::pipeline::{
    explore_instrumented, explore_parallel, explore_parallel_backend, records_fingerprint,
    SearchBackend, Strategy,
};
use cuda_mpi_design_rules::sim::{BenchConfig, Platform, TableWorkload};
use std::collections::HashSet;

/// A small space (12 traversals) whose every traversal any reasonable
/// budget covers, on a platform with measurement noise left ON.
fn setup() -> (DecisionSpace, TableWorkload, Platform) {
    let mut b = DagBuilder::new();
    let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
    let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
    let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
    b.edge(a, c);
    b.edge(g, c);
    let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
    let mut w = TableWorkload::new(1);
    w.cost_all("a", 3e-4)
        .cost_all("b", 2e-4)
        .cost_all("c", 1e-5);
    (space, w, Platform::perlmutter_like())
}

type RecordSet = HashSet<(Traversal, u64)>;

fn serial_set(strategy: Strategy) -> RecordSet {
    let (space, w, platform) = setup();
    let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
    let (records, _, _) = explore_instrumented(&space, eval, strategy).unwrap();
    records
        .into_iter()
        .map(|r| (r.traversal, r.result.time().to_bits()))
        .collect()
}

fn parallel_set(strategy: Strategy, threads: usize) -> (RecordSet, u64) {
    let (space, w, platform) = setup();
    let out = explore_parallel(
        &space,
        || SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
        strategy,
        threads,
    )
    .unwrap();
    let sim_runs = out.sim.as_ref().map(|s| s.runs).unwrap_or(0);
    let set = out
        .records
        .into_iter()
        .map(|r| (r.traversal, r.result.time().to_bits()))
        .collect();
    (set, sim_runs)
}

fn assert_thread_count_invariant(strategy: Strategy) {
    let serial = serial_set(strategy);
    assert!(!serial.is_empty());
    let (_, serial_runs) = parallel_set(strategy, 1);
    for threads in [1usize, 2, 4] {
        let (par, runs) = parallel_set(strategy, threads);
        assert_eq!(
            par,
            serial,
            "{} with {threads} threads diverged from the serial record set",
            strategy.name()
        );
        // Each unique traversal is simulated exactly once per run, so
        // the merged u64 sim counters are thread-count-invariant too.
        assert_eq!(runs, serial_runs, "{} sim runs drifted", strategy.name());
    }
}

#[test]
fn exhaustive_is_thread_count_invariant() {
    assert_thread_count_invariant(Strategy::Exhaustive);
}

#[test]
fn random_is_thread_count_invariant() {
    assert_thread_count_invariant(Strategy::Random {
        iterations: 60,
        seed: 5,
    });
}

#[test]
fn mcts_at_exhaustion_is_thread_count_invariant() {
    // 300 iterations vastly exceed the 12-traversal space: every worker
    // tree exhausts, so the merged set equals the serial search's.
    assert_thread_count_invariant(Strategy::Mcts {
        iterations: 300,
        config: MctsConfig {
            seed: 17,
            ..Default::default()
        },
    });
}

#[test]
fn shared_tree_fingerprints_match_serial_bit_for_bit_at_exhaustion() {
    // The run ledger's record fingerprint hashes the record *list* in
    // order, so this is stricter than set equality: the shared-tree
    // backend must hand back the identical sequence of (traversal, time)
    // bits at one and at four workers once the space exhausts.
    let strategy = Strategy::Mcts {
        iterations: 300,
        config: MctsConfig {
            seed: 17,
            ..Default::default()
        },
    };
    let (space, w, platform) = setup();
    let fingerprint = |threads: usize| {
        let out = explore_parallel_backend(
            &space,
            || SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
            strategy,
            threads,
            SearchBackend::Shared,
        )
        .unwrap();
        (records_fingerprint(&out.records), out.records.len())
    };
    let (serial_fp, serial_len) = fingerprint(1);
    assert_eq!(serial_len, 12, "budget must exhaust the 12-traversal space");
    let (par_fp, par_len) = fingerprint(4);
    assert_eq!(par_len, serial_len);
    assert_eq!(
        par_fp, serial_fp,
        "shared-tree record fingerprint drifted between 1 and 4 workers"
    );
    // And the shared backend agrees with the serial tree's record set.
    let serial = serial_set(strategy);
    let shared: RecordSet = {
        let out = explore_parallel_backend(
            &space,
            || SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
            strategy,
            4,
            SearchBackend::Shared,
        )
        .unwrap();
        out.records
            .into_iter()
            .map(|r| (r.traversal, r.result.time().to_bits()))
            .collect()
    };
    assert_eq!(shared, serial);
}

#[test]
fn parallel_runs_are_repeatable() {
    // Same (seed, threads) twice → identical everything, including on
    // the racy-by-construction root-parallel MCTS path.
    let strategy = Strategy::Mcts {
        iterations: 300,
        config: MctsConfig {
            seed: 23,
            ..Default::default()
        },
    };
    let (a, _) = parallel_set(strategy, 4);
    let (b, _) = parallel_set(strategy, 4);
    assert_eq!(a, b);
}
