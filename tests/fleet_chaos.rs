//! Chaos proof for the fleet anomaly detector: inject faults into
//! exactly one worker (`DR_SWARM_FAULT_SHARD` + `DR_SWARM_FAULTS`) and
//! require the coordinator to put a structured `anomaly` verdict on
//! record naming that worker and the tripped metric — *before* any kill
//! decision it later explains. Fingerprints are never compared here:
//! fault-injected workers measure under perturbation, so the merged
//! record set is not the clean run's (and a measurement conflict
//! between a faulted and a clean shard may legitimately fail the final
//! merge).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dr-rules")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dr-fleet-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A 3-worker swarm over `store` with chaos knobs in `env`, faults
/// targeted at worker 1 via `fault_spec`, and the merged dr-fleet/v1
/// stream captured to `store/fleet.ndjson`.
fn swarm(store: &Path, iterations: &str, fault_spec: &str, env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args([
        "spmv",
        "swarm",
        "--workers",
        "3",
        "--store",
        &store.display().to_string(),
        "--iterations",
        iterations,
        "--seed",
        "7",
        "--fleet-events",
        &store.join("fleet.ndjson").display().to_string(),
    ])
    .env_remove("DR_FAULTS")
    .env_remove("DR_LEDGER")
    .env("DR_HEARTBEAT_MS", "20")
    .env("DR_SWARM_FAULT_SHARD", "1")
    .env("DR_SWARM_FAULTS", fault_spec);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("dr-rules spawns")
}

/// Index of the first merged-stream line matching every needle.
fn stream_find(stream: &str, needles: &[&str]) -> Option<usize> {
    stream
        .lines()
        .position(|l| needles.iter().all(|n| l.contains(n)))
}

#[test]
fn silent_worker_anomaly_is_on_record_before_the_kill() {
    let store = scratch("kill");
    // Worker 1 drops every simulated message: its first eval fails
    // forever and the huge retry budget (50 ms backoff per attempt)
    // pins it inside the evaluator after its single initial heartbeat.
    // The detector must flag the silence at half the 1 s stall window;
    // the coordinator then kills and — with one attempt allowed —
    // quarantines, failing the swarm.
    let out = swarm(
        &store,
        "60",
        "drop_prob=1.0",
        &[
            ("DR_RETRY_MAX", "100000"),
            ("DR_RETRY_BACKOFF_MS", "50"),
            ("DR_SWARM_STALL_MS", "1000"),
            ("DR_SWARM_MAX_ATTEMPTS", "1"),
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "quarantine must fail the swarm:\n{stdout}\n{stderr}"
    );

    // Anchor both finds to shard 1: on a loaded machine a *healthy*
    // worker's eval chunk can outlast the short stall window too, and
    // its kill line must not satisfy (or break) the ordering check.
    let anomaly_at = stdout
        .find("anomaly: worker 1 silent-worker")
        .unwrap_or_else(|| panic!("no silent-worker anomaly for worker 1:\n{stdout}"));
    let kill_at = stdout
        .find("shard 1/3: stalled")
        .unwrap_or_else(|| panic!("no stall kill of shard 1:\n{stdout}"));
    assert!(
        anomaly_at < kill_at,
        "anomaly must be on record before the kill:\n{stdout}"
    );
    // The kill decision cites the anomaly that explains it.
    let kill_line = stdout[kill_at..].lines().next().unwrap();
    assert!(
        kill_line.contains("after anomaly silent-worker (stream_silence_s)"),
        "{stdout}"
    );
    assert!(
        kill_line.contains("quarantined after 1 attempts"),
        "{stdout}"
    );
    assert!(stderr.contains("quarantined"), "{stderr}");

    // The merged stream carries the same story as structured events, in
    // the same order: the anomaly names worker 1 and its metric, and is
    // globally sequenced before the kill.
    let stream = std::fs::read_to_string(store.join("fleet.ndjson")).unwrap();
    let anomaly_line = stream_find(
        &stream,
        &[
            "\"kind\":\"anomaly\"",
            "\"worker\":1",
            "\"anomaly\":\"silent-worker\"",
            "\"metric\":\"stream_silence_s\"",
        ],
    )
    .unwrap_or_else(|| panic!("no structured anomaly event:\n{stream}"));
    let kill_line = stream_find(&stream, &["\"kind\":\"worker-kill\"", "\"shard\":1"])
        .unwrap_or_else(|| panic!("no structured worker-kill event:\n{stream}"));
    assert!(
        anomaly_line < kill_line,
        "anomaly event must precede the kill event in the merged stream"
    );

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn completing_straggler_is_named_without_a_kill() {
    let store = scratch("straggle");
    // Worker 1 limps: with a 0.08 per-message drop rate roughly 4 in 10
    // eval attempts deadlock, and each failed attempt burns ~40-80 ms of
    // retry backoff before a reseeded attempt (usually) succeeds. Its
    // eval rate sits far below the fleet median while workers 0 and 2
    // finish their 100-eval budgets fast and anchor the rate
    // distribution; the generous retry budget keeps quarantines rare so
    // the shard's search tree never exhausts early. The default 10 s
    // stall window means nobody is killed — the straggler verdict must
    // appear even though the worker finishes its shard. (The swarm's
    // exit status is NOT asserted: the final merge may reject the
    // faulted worker's perturbed measurements, which is its job.)
    let out = swarm(
        &store,
        "300",
        "drop_prob=0.08",
        &[("DR_RETRY_MAX", "4"), ("DR_RETRY_BACKOFF_MS", "80")],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    assert!(
        stdout.contains("anomaly: worker 1 straggler"),
        "no straggler anomaly for worker 1:\n{stdout}"
    );
    assert!(stdout.contains("(eval_rate"), "{stdout}");
    // All three shards finished; no worker was killed.
    assert_eq!(
        stdout.matches("complete —").count(),
        3,
        "all shards complete:\n{stdout}"
    );
    assert!(!stdout.contains("killed"), "{stdout}");

    // Structured form: a straggler anomaly naming worker 1 and the
    // eval-rate metric, with no kill event anywhere in the stream.
    let stream = std::fs::read_to_string(store.join("fleet.ndjson")).unwrap();
    assert!(
        stream_find(
            &stream,
            &[
                "\"kind\":\"anomaly\"",
                "\"worker\":1",
                "\"anomaly\":\"straggler\"",
                "\"metric\":\"eval_rate\"",
            ],
        )
        .is_some(),
        "no structured straggler event:\n{stream}"
    );
    assert!(
        stream_find(&stream, &["\"kind\":\"worker-kill\""]).is_none(),
        "nobody should be killed"
    );

    let _ = std::fs::remove_dir_all(&store);
}
