//! Numeric validation of the SpMV decomposition: the pack → exchange →
//! local/remote multiply algorithm that the DAG schedules must compute
//! exactly the same product as a serial SpMV, for every rank count.

use cuda_mpi_design_rules::spmv::{banded_matrix, BandedSpec, Csr, DistributedSpmv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_x(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect()
}

fn assert_close(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() < 1e-8 * (1.0 + y.abs()),
            "row {i}: {x} vs {y}"
        );
    }
}

#[test]
fn distributed_equals_serial_across_rank_counts() {
    let a = banded_matrix(&BandedSpec {
        n: 2000,
        nnz: 22_000,
        bandwidth: 500,
        seed: 4,
    });
    let x = random_x(a.ncols, 5);
    let want = a.spmv(&x);
    for ranks in [1, 2, 3, 4, 5, 8] {
        let d = DistributedSpmv::new(&a, ranks);
        assert_close(&d.multiply(&x), &want);
    }
}

#[test]
fn distributed_equals_serial_on_paper_proportions() {
    // Same n/bandwidth ratio as the paper input, scaled down 50×.
    let a = banded_matrix(&BandedSpec {
        n: 3000,
        nnz: 30_000,
        bandwidth: 750,
        seed: 6,
    });
    let x = random_x(a.ncols, 7);
    let d = DistributedSpmv::new(&a, 4);
    assert_close(&d.multiply(&x), &a.spmv(&x));
}

#[test]
fn dense_block_matrix_decomposes_correctly() {
    // A fully dense small matrix: every rank needs every remote entry.
    let n = 24;
    let triplets = (0..n).flat_map(|r| (0..n).map(move |c| (r, c, (r * n + c) as f64 * 0.01)));
    let a = Csr::from_triplets(n, n, triplets);
    let x = random_x(n, 8);
    for ranks in [2, 3, 4] {
        let d = DistributedSpmv::new(&a, ranks);
        assert_close(&d.multiply(&x), &a.spmv(&x));
        // Dense: every rank receives from every other rank.
        for rm in &d.ranks {
            assert_eq!(rm.recv_lists.len(), ranks - 1);
        }
    }
}

#[test]
fn empty_rows_are_handled() {
    let a = Csr::from_triplets(10, 10, [(0, 0, 1.0), (9, 9, 2.0)]);
    let x = random_x(10, 9);
    let d = DistributedSpmv::new(&a, 3);
    assert_close(&d.multiply(&x), &a.spmv(&x));
}

#[test]
fn identity_matrix_round_trips() {
    let n = 100;
    let a = Csr::from_triplets(n, n, (0..n).map(|i| (i, i, 1.0)));
    let x = random_x(n, 10);
    let d = DistributedSpmv::new(&a, 4);
    assert_close(&d.multiply(&x), &x);
    // Diagonal: no communication at all.
    for rm in &d.ranks {
        assert_eq!(rm.num_send(), 0);
        assert_eq!(rm.num_recv(), 0);
    }
}
