//! Reproducibility: every stochastic component is seed-deterministic, so
//! the whole pipeline is bit-for-bit repeatable.

use cuda_mpi_design_rules::mcts::MctsConfig;
use cuda_mpi_design_rules::pipeline::{run_pipeline, PipelineConfig, Strategy};
use cuda_mpi_design_rules::sim::BenchConfig;
use cuda_mpi_design_rules::spmv::SpmvScenario;

fn fast_config() -> PipelineConfig {
    PipelineConfig {
        bench: BenchConfig {
            t_measure: 1e-4,
            num_measurements: 3,
            max_samples: 3,
        },
        ..Default::default()
    }
}

fn fingerprint(seed: u64) -> (Vec<f64>, Vec<usize>, usize, f64) {
    let sc = SpmvScenario::small(seed);
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Mcts {
            iterations: 60,
            config: MctsConfig {
                seed,
                ..Default::default()
            },
        },
        &fast_config(),
    )
    .unwrap();
    (
        result.times(),
        result.labeling.labels.clone(),
        result.labeling.num_classes,
        result.search.error,
    )
}

#[test]
fn pipeline_is_bit_for_bit_reproducible() {
    assert_eq!(fingerprint(21), fingerprint(21));
}

#[test]
fn different_seeds_give_different_explorations() {
    let a = fingerprint(21);
    let b = fingerprint(22);
    assert_ne!(a.0, b.0, "different seeds must explore/measure differently");
}

#[test]
fn matrix_generation_is_independent_of_call_order() {
    use cuda_mpi_design_rules::spmv::{banded_matrix, BandedSpec};
    let spec = BandedSpec::small(33);
    let a = banded_matrix(&spec);
    let _unrelated = banded_matrix(&BandedSpec::small(99));
    let b = banded_matrix(&spec);
    assert_eq!(a, b);
}
