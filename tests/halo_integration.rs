//! Integration tests for the halo-exchange workload: numeric correctness
//! of the scheduled algorithm plus end-to-end rule mining on a space far
//! too large to enumerate.

use cuda_mpi_design_rules::halo::{jacobi_step, DistributedGrid, Grid3, HaloScenario, RankGrid};
use cuda_mpi_design_rules::mcts::MctsConfig;
use cuda_mpi_design_rules::pipeline::{run_pipeline, PipelineConfig, Strategy};
use cuda_mpi_design_rules::sim::BenchConfig;

fn fast_config() -> PipelineConfig {
    PipelineConfig {
        bench: BenchConfig {
            t_measure: 1e-4,
            num_measurements: 2,
            max_samples: 2,
        },
        ..Default::default()
    }
}

#[test]
fn distributed_jacobi_is_exact_on_asymmetric_topologies() {
    let g = Grid3::from_fn([12, 6, 4], |x, y, z| ((x + 2 * y + 3 * z) % 7) as f64 - 3.0);
    let mut serial = g.clone();
    let mut d = DistributedGrid::from_global(&g, RankGrid::new([4, 3, 2]));
    for _ in 0..3 {
        serial = jacobi_step(&serial);
        d.exchange_ghosts();
        d.jacobi_step();
    }
    let got = d.gather();
    for (i, (a, b)) in got.data.iter().zip(&serial.data).enumerate() {
        assert!((a - b).abs() < 1e-12, "cell {i}: {a} vs {b}");
    }
}

#[test]
fn halo_space_is_searchable_but_not_enumerable() {
    let sc = HaloScenario::cube2(1);
    assert!(sc.space.count_traversals() > 1_000_000_000_000u128);
    assert!(sc.space.num_ops() <= 64);
}

#[test]
fn mcts_mines_rules_on_the_halo_space() {
    let sc = HaloScenario::cube2(3);
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Mcts {
            iterations: 120,
            config: MctsConfig {
                seed: 3,
                ..Default::default()
            },
        },
        &fast_config(),
    )
    .unwrap();
    assert!(result.records.len() > 50);
    assert!(result.labeling.num_classes >= 2);
    assert!(!result.rulesets.is_empty());
    // Interior-kernel placement should matter: at least one rule should
    // mention Interior (ordering or stream).
    let interior = sc.space.op_by_name("Interior").unwrap();
    let mentions_interior = result
        .rulesets
        .iter()
        .flat_map(|rs| &rs.rules)
        .any(|r| match r.kind {
            cuda_mpi_design_rules::ml::FeatureKind::Before(u, v) => u == interior || v == interior,
            cuda_mpi_design_rules::ml::FeatureKind::SameStream(u, v) => {
                u == interior || v == interior
            }
        });
    assert!(mentions_interior, "rules: {:?}", result.rulesets.len());
}

#[test]
fn one_dimensional_halo_pipeline_runs_exhaustively_sampled() {
    // The 1D variant has an enumerable space; run the pipeline on a
    // random subset for speed and sanity-check the outputs.
    let sc = HaloScenario::line2(5);
    let result = run_pipeline(
        &sc.space,
        &sc.workload,
        &sc.platform,
        Strategy::Random {
            iterations: 80,
            seed: 5,
        },
        &fast_config(),
    )
    .unwrap();
    assert!(!result.records.is_empty());
    for rs in &result.rulesets {
        assert!(rs.class < result.labeling.num_classes);
    }
}
