//! Kill-resume chaos proof for the sharded swarm, end to end through
//! the real `dr-rules` binary: SIGKILL a shard worker mid-run, tear the
//! shard's store segment tail, then let `swarm --workers 3` resume the
//! wreckage — the merged ledger fingerprint must be bit-identical to a
//! clean single-process run, and the resumed shard's manifest must
//! prove via its store hit counter that the committed prefix was never
//! re-simulated.

use cuda_mpi_design_rules::pipeline::ShardManifest;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const ITERATIONS: &str = "60";
const SEED: &str = "7";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dr-rules")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dr-swarm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(args: &[&str]) -> Output {
    let out = Command::new(bin())
        .args(args)
        .env_remove("DR_FAULTS")
        .env_remove("DR_LEDGER")
        .env("DR_HEARTBEAT_MS", "20")
        .output()
        .expect("dr-rules spawns");
    assert!(
        out.status.success(),
        "dr-rules {args:?} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The `"fingerprint"` hex field of the single entry in `dir/ledger.jsonl`.
fn ledger_fingerprint(dir: &Path) -> String {
    let text = std::fs::read_to_string(dir.join("ledger.jsonl")).expect("ledger exists");
    let tail = text
        .split("\"fingerprint\":\"")
        .nth(1)
        .unwrap_or_else(|| panic!("no fingerprint in ledger: {text}"));
    tail[..16].to_string()
}

/// Spawns the shard-0-of-3 worker exactly as the swarm coordinator
/// would, streaming events (and heartbeats) to its NDJSON file.
fn spawn_shard0_worker(store: &Path) -> std::process::Child {
    Command::new(bin())
        .args([
            "spmv",
            "explore",
            "--random",
            "--shard",
            "0/3",
            "--store",
            &store.display().to_string(),
            "--events",
            &store
                .join("shard-0-of-3.events.ndjson")
                .display()
                .to_string(),
            "--iterations",
            ITERATIONS,
            "--seed",
            SEED,
            "--threads",
            "1",
        ])
        .env_remove("DR_FAULTS")
        .env_remove("DR_LEDGER")
        .env("DR_HEARTBEAT_MS", "20")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("shard worker spawns")
}

/// Committed record count in a shard's store (opening performs the same
/// torn-tail recovery the resuming worker will).
fn committed_records(shard_dir: &Path) -> usize {
    cuda_mpi_design_rules::store::ResultStore::open(shard_dir)
        .expect("shard store opens")
        .len()
}

#[test]
fn sigkilled_worker_and_torn_segment_resume_to_the_baseline_fingerprint() {
    let root = scratch("chaos");
    let baseline_ledger = root.join("baseline");
    let swarm_ledger = root.join("swarm-ledger");
    let store = root.join("store");
    std::fs::create_dir_all(&store).unwrap();

    // 1. Clean unsharded baseline: one process, no store, no shards.
    let out = run_ok(&[
        "spmv",
        "explore",
        "--random",
        "--iterations",
        ITERATIONS,
        "--seed",
        SEED,
        "--ledger",
        &baseline_ledger.display().to_string(),
    ]);
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("appended ledger entry"),
        "baseline must land in the ledger"
    );
    let baseline_fp = ledger_fingerprint(&baseline_ledger);

    // 2. Genuine mid-shard SIGKILL: start the shard-0 worker and kill it
    //    the moment its store segment holds any bytes. On a fast machine
    //    the worker may still outrun the signal — step 3 shapes the
    //    crash state deterministically either way.
    let shard_dir = store.join("shard-0-of-3");
    let segment = shard_dir.join("segment-000.drs");
    let manifest_path = store.join("shard-0-of-3.manifest.json");
    let mut worker = spawn_shard0_worker(&store);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let grown = std::fs::metadata(&segment)
            .map(|m| m.len() > 8)
            .unwrap_or(false);
        let exited = worker.try_wait().expect("worker pollable").is_some();
        if grown || exited {
            break;
        }
        assert!(Instant::now() < deadline, "worker never wrote its segment");
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = worker.kill(); // SIGKILL on unix; no-op if it already exited
    let _ = worker.wait();

    // 3. Deterministic crash shaping. The kill may have landed anywhere
    //    — before the first commit, mid-record, or after the manifest
    //    was published. Guarantee the interesting state: a non-trivial
    //    committed prefix, a torn segment tail, and no commit marker.
    //    Counting records opens the store, which snaps the file to the
    //    committed boundary — so count BEFORE tearing the tail, never
    //    after (a later open would repair the tear we want the resuming
    //    worker to find).
    if committed_records(&shard_dir) < 2 {
        // Killed too early to leave a prefix worth resuming: let a
        // second worker attempt run to completion, then crash "later".
        let out = spawn_shard0_worker(&store)
            .wait_with_output()
            .expect("rerun worker");
        assert!(out.status.success(), "shard rerun must publish");
    }
    let committed = committed_records(&shard_dir);
    assert!(committed >= 2, "need at least two committed records");
    let _ = std::fs::remove_file(&manifest_path); // un-commit the shard
    let len = std::fs::metadata(&segment).expect("segment exists").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    f.set_len(len - 3).unwrap(); // tear the last committed record
    drop(f);
    // The tear costs exactly the final record; everything before it is
    // the prefix the resuming worker must answer from the store.
    let prefix = committed - 1;

    // 4. Resume: the swarm re-issues shard 0 (which replays the prefix
    //    from the store), runs shards 1 and 2 fresh, and merges.
    let out = run_ok(&[
        "spmv",
        "swarm",
        "--workers",
        "3",
        "--random",
        "--iterations",
        ITERATIONS,
        "--seed",
        SEED,
        "--store",
        &store.display().to_string(),
        "--ledger",
        &swarm_ledger.display().to_string(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("merged 3 shards"), "{stdout}");
    assert!(stdout.contains("appended ledger entry"), "{stdout}");

    // 5. The merged fingerprint is bit-identical to the clean run.
    let swarm_fp = ledger_fingerprint(&swarm_ledger);
    assert_eq!(
        swarm_fp, baseline_fp,
        "kill-resume must reproduce the baseline fingerprint bit for bit:\n{stdout}"
    );

    // 6. The store proves the committed prefix was never re-simulated:
    //    every prefix record was answered as a hit, only the torn tail
    //    was re-evaluated, and the tear itself was seen by recovery.
    let manifest = ShardManifest::from_json(
        &std::fs::read_to_string(&manifest_path).expect("resumed shard committed"),
    )
    .expect("manifest parses");
    assert!(
        manifest.store.hits >= prefix as u64,
        "resume must answer the {prefix}-record prefix from the store: {:?}",
        manifest.store
    );
    assert!(
        manifest.store.hits > 0
            && manifest.store.hits + manifest.store.appended == manifest.records as u64,
        "hits + appended must account for every record: {:?}",
        manifest.store
    );
    assert!(
        manifest.store.truncated_bytes > 0,
        "recovery must report the torn tail: {:?}",
        manifest.store
    );

    // 7. The regression gate agrees end to end: compare the baseline
    //    ledger against the swarm's merged entry.
    let out = Command::new(bin())
        .args([
            "spmv",
            "compare",
            &baseline_ledger.display().to_string(),
            &swarm_ledger.display().to_string(),
        ])
        .env_remove("DR_FAULTS")
        .output()
        .expect("dr-rules spawns");
    let cmp = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "compare regressed:\n{cmp}");
    assert!(cmp.contains("records: identical"), "{cmp}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn interrupted_swarm_rerun_resumes_completed_shards() {
    let root = scratch("resume");
    let store = root.join("store");
    std::fs::create_dir_all(&store).unwrap();
    let swarm_args = [
        "spmv",
        "swarm",
        "--workers",
        "2",
        "--random",
        "--iterations",
        ITERATIONS,
        "--seed",
        SEED,
        "--store",
        &store.display().to_string(),
    ];

    // First swarm run completes both shards and publishes manifests.
    run_ok(&swarm_args.clone());

    // A rerun over the same store must not respawn finished shards: the
    // manifests are the commit markers, so both resume instantly and
    // the merge replays entirely from the durable record set.
    let out = run_ok(&swarm_args);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.matches("already complete").count() == 2,
        "both shards must resume without respawning:\n{stdout}"
    );
    assert!(!stdout.contains("worker spawned"), "{stdout}");
    assert!(stdout.contains("merged 2 shards"), "{stdout}");

    let _ = std::fs::remove_dir_all(&root);
}
