//! Property tests on the platform simulator: sanity laws that must hold
//! for any program and any cost assignment.

mod common;

use common::arb_small_space;
use cuda_mpi_design_rules::dag::build_schedule;
use cuda_mpi_design_rules::sim::{execute, CompiledProgram, Platform, TableWorkload};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn workload_for(space: &cuda_mpi_design_rules::dag::DecisionSpace, costs: &[f64]) -> TableWorkload {
    let mut w = TableWorkload::new(2);
    for (i, op) in space.dag().user_vertices().enumerate() {
        let name = space.dag().vertex(op).name.clone();
        w.cost_all(name, costs[i % costs.len()].abs() + 1e-9);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn execution_time_bounds(
        space in arb_small_space(5, 300),
        costs in proptest::collection::vec(1e-6f64..1e-3, 5),
    ) {
        let w = workload_for(&space, &costs);
        let platform = Platform::perlmutter_like().noiseless();
        let user_count = space.dag().user_vertices().count();
        let max_cost = (0..user_count)
            .map(|i| costs[i % costs.len()].abs() + 1e-9)
            .fold(0.0f64, f64::max);
        let sum_cost: f64 = (0..user_count)
            .map(|i| costs[i % costs.len()].abs() + 1e-9)
            .sum();
        // Generous overhead budget: launches, events, syncs.
        let overhead = 1e-4 * user_count as f64;
        for t in space.enumerate().take(48) {
            let s = build_schedule(&space, &t);
            let prog = CompiledProgram::compile(&s, &w).unwrap();
            let out = execute(&prog, &platform, &mut SmallRng::seed_from_u64(1)).unwrap();
            let time = out.time();
            // No op can be skipped: at least the longest op must elapse.
            prop_assert!(time >= max_cost, "time {time} < max op {max_cost}");
            // And everything serialized plus overheads is an upper bound
            // (contention can only stretch overlap, never beyond serial).
            prop_assert!(
                time <= sum_cost * (1.0 + platform.gpu_contention) + overhead,
                "time {time} > serial bound {}",
                sum_cost + overhead
            );
        }
    }

    #[test]
    fn noiseless_execution_is_deterministic(
        space in arb_small_space(5, 300),
        costs in proptest::collection::vec(1e-6f64..1e-3, 5),
    ) {
        let w = workload_for(&space, &costs);
        let platform = Platform::perlmutter_like().noiseless();
        if let Some(t) = space.enumerate().next() {
            let s = build_schedule(&space, &t);
            let prog = CompiledProgram::compile(&s, &w).unwrap();
            let a = execute(&prog, &platform, &mut SmallRng::seed_from_u64(1)).unwrap();
            let b = execute(&prog, &platform, &mut SmallRng::seed_from_u64(99)).unwrap();
            prop_assert_eq!(a, b, "noiseless runs must not depend on the rng");
        }
    }

    #[test]
    fn increasing_a_cost_never_speeds_the_program_up(
        space in arb_small_space(4, 200),
        costs in proptest::collection::vec(1e-6f64..1e-3, 5),
        bump_idx in 0usize..5,
    ) {
        let platform = Platform::perlmutter_like().noiseless();
        let w1 = workload_for(&space, &costs);
        let mut bumped = costs.clone();
        let bi = bump_idx % bumped.len();
        bumped[bi] *= 3.0;
        let w2 = workload_for(&space, &bumped);
        for t in space.enumerate().take(16) {
            let s = build_schedule(&space, &t);
            let p1 = CompiledProgram::compile(&s, &w1).unwrap();
            let p2 = CompiledProgram::compile(&s, &w2).unwrap();
            let t1 = execute(&p1, &platform, &mut SmallRng::seed_from_u64(1)).unwrap().time();
            let t2 = execute(&p2, &platform, &mut SmallRng::seed_from_u64(1)).unwrap().time();
            prop_assert!(t2 >= t1 - 1e-12, "monotonicity violated: {t1} -> {t2}");
        }
    }

    #[test]
    fn all_ranks_finish_and_times_are_finite(
        space in arb_small_space(5, 300),
        costs in proptest::collection::vec(1e-6f64..1e-3, 5),
    ) {
        let w = workload_for(&space, &costs);
        let platform = Platform::perlmutter_like(); // with noise
        for (i, t) in space.enumerate().take(24).enumerate() {
            let s = build_schedule(&space, &t);
            let prog = CompiledProgram::compile(&s, &w).unwrap();
            let out = execute(&prog, &platform, &mut SmallRng::seed_from_u64(i as u64)).unwrap();
            prop_assert_eq!(out.rank_times.len(), 2);
            for rt in &out.rank_times {
                prop_assert!(rt.is_finite() && *rt > 0.0);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulated_time_never_beats_the_critical_path(
        space in arb_small_space(5, 300),
        costs in proptest::collection::vec(1e-6f64..1e-3, 5),
    ) {
        use cuda_mpi_design_rules::dag::critical_path;
        let w = workload_for(&space, &costs);
        let platform = Platform::perlmutter_like().noiseless();
        let dag = space.dag();
        let cp = critical_path(dag, |v| {
            use cuda_mpi_design_rules::sim::Workload;
            match &dag.vertex(v).spec {
                cuda_mpi_design_rules::dag::OpSpec::CpuWork(k)
                | cuda_mpi_design_rules::dag::OpSpec::GpuKernel(k) => {
                    w.cost(0, k).unwrap_or(0.0)
                }
                _ => 0.0,
            }
        });
        for t in space.enumerate().take(24) {
            let s = build_schedule(&space, &t);
            let prog = CompiledProgram::compile(&s, &w).unwrap();
            let time = execute(&prog, &platform, &mut SmallRng::seed_from_u64(1))
                .unwrap()
                .time();
            prop_assert!(
                time >= cp.length - 1e-12,
                "no schedule can beat the dependency chain: {} < {}",
                time,
                cp.length
            );
        }
    }
}
