//! End-to-end fleet-aggregation proof through the real `dr-rules`
//! binary: a `swarm --workers 3` run with full telemetry (merged
//! dr-fleet/v1 stream, swarm timeline, metrics snapshot) must commit a
//! ledger fingerprint bit-identical to a silent swarm run (aggregation
//! is inert), and the merged stream must be lossless — every line each
//! worker wrote appears in it exactly once, verbatim, under a gapless
//! global sequence. Also covers `compare` on fleet streams and the
//! `runs` ledger-analytics commands, whose `diff` exit status must
//! match `compare` on the same entries.

use cuda_mpi_design_rules::obs::json;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const ITERATIONS: &str = "60";
const SEED: &str = "7";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dr-rules")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dr-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .env_remove("DR_FAULTS")
        .env_remove("DR_LEDGER")
        .env_remove("DR_SWARM_FAULT_SHARD")
        .env("DR_HEARTBEAT_MS", "20")
        .output()
        .expect("dr-rules spawns")
}

fn run_ok(args: &[&str]) -> String {
    let out = run(args);
    assert!(
        out.status.success(),
        "dr-rules {args:?} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The `"fingerprint"` hex field of the single entry in `dir/ledger.jsonl`.
fn ledger_fingerprint(dir: &Path) -> String {
    let text = std::fs::read_to_string(dir.join("ledger.jsonl")).expect("ledger exists");
    let tail = text
        .split("\"fingerprint\":\"")
        .nth(1)
        .unwrap_or_else(|| panic!("no fingerprint in ledger: {text}"));
    tail[..16].to_string()
}

/// Runs a 3-worker swarm over `store`, with or without the fleet
/// telemetry artifacts, and returns captured stdout.
fn swarm(store: &Path, with_fleet_artifacts: bool) -> String {
    let store_s = store.display().to_string();
    let fleet = store.join("fleet.ndjson").display().to_string();
    let trace = store.join("timeline.json").display().to_string();
    let metrics = store.join("metrics.prom").display().to_string();
    let mut args = vec![
        "spmv",
        "swarm",
        "--workers",
        "3",
        "--store",
        &store_s,
        "--iterations",
        ITERATIONS,
        "--seed",
        SEED,
    ];
    if with_fleet_artifacts {
        args.extend_from_slice(&[
            "--fleet-events",
            &fleet,
            "--trace",
            &trace,
            "--metrics-text",
            &metrics,
        ]);
    }
    run_ok(&args)
}

/// Splits one merged `dr-fleet/v1` line into (gseq, worker, embedded
/// original line). The embedded event is verbatim, so equality with
/// the worker's own file is a plain string check.
fn split_merged(line: &str) -> (u64, Option<usize>, String) {
    let v = json::parse(line).expect("merged line parses");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("dr-fleet/v1"),
        "{line}"
    );
    let gseq = v.get("gseq").and_then(|g| g.as_u64()).expect("gseq");
    let worker = v
        .get("worker")
        .filter(|w| !w.is_null())
        .and_then(|w| w.as_u64())
        .map(|w| w as usize);
    let (_, embedded) = line.split_once("\"event\":").expect("event field");
    let embedded = embedded.strip_suffix('}').expect("wrapper brace");
    (gseq, worker, embedded.to_string())
}

#[test]
fn merged_stream_is_lossless_gapless_and_inert() {
    let with = scratch("loud");
    let silent = scratch("silent");
    let stdout = swarm(&with, true);
    swarm(&silent, false);

    // Inert: full aggregation changes nothing about the committed run.
    assert_eq!(
        ledger_fingerprint(&with),
        ledger_fingerprint(&silent),
        "aggregation perturbed the merged records"
    );
    assert!(stdout.contains("merged fleet events"), "{stdout}");
    assert!(stdout.contains("wrote swarm timeline"), "{stdout}");
    assert!(stdout.contains("wrote metrics snapshot"), "{stdout}");

    // Gapless: gseq is dense from 0 in file order.
    let merged = std::fs::read_to_string(with.join("fleet.ndjson")).unwrap();
    let mut per_worker: HashMap<usize, Vec<String>> = HashMap::new();
    let mut coordinator_events = 0usize;
    for (i, line) in merged.lines().enumerate() {
        let (gseq, worker, embedded) = split_merged(line);
        assert_eq!(gseq, i as u64, "gseq gap at line {i}: {line}");
        match worker {
            Some(w) => per_worker.entry(w).or_default().push(embedded),
            None => coordinator_events += 1,
        }
    }
    assert!(coordinator_events > 0, "coordinator events missing");
    assert_eq!(per_worker.len(), 3, "all three workers merged");

    // Lossless: every line of every worker's own stream appears in the
    // merged stream exactly once, verbatim, and nothing else does.
    for w in 0..3usize {
        let own = std::fs::read_to_string(with.join(format!("shard-{w}-of-3.events.ndjson")))
            .expect("worker stream exists");
        let own: Vec<&str> = own.lines().collect();
        let merged_w = per_worker.remove(&w).unwrap_or_default();
        assert_eq!(
            merged_w, own,
            "worker {w}: merged events differ from its stream"
        );
    }

    // The timeline is one valid JSON array with a process per worker
    // and issue→completion flow arrows.
    let timeline = std::fs::read_to_string(with.join("timeline.json")).unwrap();
    json::validate(&timeline).expect("timeline is valid JSON");
    for name in ["swarm coordinator", "shard 0/3", "shard 2/3", "fleet-flow"] {
        assert!(timeline.contains(name), "timeline missing {name}");
    }

    // The metrics snapshot is Prometheus text format with fleet totals
    // and per-worker series.
    let metrics = std::fs::read_to_string(with.join("metrics.prom")).unwrap();
    assert!(
        metrics.contains("# TYPE dr_fleet_merged_events_total counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains("dr_fleet_worker_events_total{run=\"swarm-"),
        "{metrics}"
    );
    assert!(metrics.contains("worker=\"2\""), "{metrics}");

    let _ = std::fs::remove_dir_all(&with);
    let _ = std::fs::remove_dir_all(&silent);
}

#[test]
fn compare_gates_fleet_streams_and_rejects_kind_mixes() {
    let a = scratch("cmp-a");
    let b = scratch("cmp-b");
    swarm(&a, true);
    swarm(&b, true);
    let fa = a.join("fleet.ndjson").display().to_string();
    let fb = b.join("fleet.ndjson").display().to_string();

    // Two clean runs of the same swarm have the same shape: OK.
    let out = run_ok(&["spmv", "compare", &fa, &fb]);
    assert!(out.contains("verdict: OK"), "{out}");

    // Fleet stream vs run ledger is a kind mismatch, named clearly.
    let ledger = a.join("ledger.jsonl").display().to_string();
    let out = run(&["spmv", "compare", &fa, &ledger]);
    assert!(!out.status.success(), "kind mix must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("cannot compare a \"fleet\" history against a \"ledger\" history"),
        "{err}"
    );

    // A truncated candidate stream (dropped completions) regresses.
    let kept: String = std::fs::read_to_string(a.join("fleet.ndjson"))
        .unwrap()
        .lines()
        .filter(|l| !l.contains("\"kind\":\"shard-done\""))
        .map(|l| format!("{l}\n"))
        .collect();
    let torn = a.join("torn.ndjson");
    std::fs::write(&torn, kept).unwrap();
    let torn_s = torn.display().to_string();
    let out = run(&["spmv", "compare", &fa, &torn_s]);
    assert!(!out.status.success(), "torn stream must regress");

    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn runs_commands_query_the_ledger_with_compare_parity() {
    let dir = scratch("runs");
    let ledger = dir.join("ledger");
    let ledger_s = ledger.display().to_string();
    for _ in 0..2 {
        run_ok(&[
            "spmv",
            "explore",
            "--iterations",
            "30",
            "--seed",
            "2",
            "--ledger",
            &ledger_s,
        ]);
    }

    // list: one summary per entry plus trends and a match count.
    let out = run_ok(&["spmv", "runs", "list", "--ledger", &ledger_s]);
    assert!(out.contains("[0]"), "{out}");
    assert!(out.contains("[1]"), "{out}");
    assert!(out.contains("2 of 2 ledger entries match"), "{out}");
    // A seed filter that matches nothing empties the listing.
    let out = run_ok(&[
        "spmv", "runs", "list", "--ledger", &ledger_s, "--seed", "999",
    ]);
    assert!(out.contains("0 of 2 ledger entries match"), "{out}");

    // show: full detail for one entry by index.
    let out = run_ok(&["spmv", "runs", "show", "0", "--ledger", &ledger_s]);
    assert!(out.contains("records fp "), "{out}");
    assert!(out.contains("phase explore:"), "{out}");

    // diff on identical entries: OK, like compare.
    let out = run_ok(&["spmv", "runs", "diff", "0", "1", "--ledger", &ledger_s]);
    assert!(out.contains("verdict: OK"), "{out}");

    // Forge a third entry whose explore phase blew up 100x; `runs diff`
    // and `compare` must agree the pair regresses (both exit nonzero).
    let text = std::fs::read_to_string(ledger.join("ledger.jsonl")).unwrap();
    let first = text.lines().next().unwrap().to_string();
    let v = json::parse(&first).unwrap();
    let explore = v
        .path(&["phases", "explore"])
        .and_then(|p| p.as_f64())
        .unwrap();
    let forged = first.replace(
        &format!("\"explore\":{}", json::number(explore)),
        &format!("\"explore\":{}", json::number(explore * 100.0 + 10.0)),
    );
    assert_ne!(forged, first, "forgery must change the entry");
    std::fs::write(ledger.join("ledger.jsonl"), format!("{text}{forged}\n")).unwrap();
    let diff = run(&["spmv", "runs", "diff", "0", "2", "--ledger", &ledger_s]);
    assert!(!diff.status.success(), "forged regression must fail diff");

    // Parity check: compare on single-entry ledgers built from the same
    // two entries reaches the same verdict.
    let (ca, cb) = (dir.join("only-a"), dir.join("only-b"));
    std::fs::create_dir_all(&ca).unwrap();
    std::fs::create_dir_all(&cb).unwrap();
    std::fs::write(ca.join("ledger.jsonl"), format!("{first}\n")).unwrap();
    std::fs::write(cb.join("ledger.jsonl"), format!("{forged}\n")).unwrap();
    let cmp = run(&[
        "spmv",
        "compare",
        &ca.display().to_string(),
        &cb.display().to_string(),
    ]);
    assert_eq!(
        diff.status.success(),
        cmp.status.success(),
        "runs diff and compare disagree on the same entries"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
