//! Property tests on the DAG substrate: enumeration, canonicalization,
//! and schedule lowering hold for arbitrary DAGs, not just the SpMV one.

mod common;

use common::arb_small_space;
use cuda_mpi_design_rules::dag::{build_schedule, ScheduleAction};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn enumeration_is_exact_unique_and_valid(space in arb_small_space(5, 2000)) {
        let all: Vec<_> = space.enumerate().collect();
        prop_assert_eq!(all.len() as u128, space.count_traversals());
        let set: std::collections::HashSet<_> = all.iter().collect();
        prop_assert_eq!(set.len(), all.len(), "traversals must be unique");
        for t in &all {
            prop_assert!(space.validate(t).is_ok());
        }
    }

    #[test]
    fn every_traversal_is_a_permutation_of_all_ops(space in arb_small_space(5, 2000)) {
        for t in space.enumerate() {
            prop_assert_eq!(t.steps.len(), space.num_ops());
            let mut seen = vec![false; space.num_ops()];
            for p in &t.steps {
                prop_assert!(!seen[p.op], "op repeated");
                seen[p.op] = true;
                prop_assert_eq!(
                    p.stream.is_some(),
                    space.ops()[p.op].kind.needs_stream(),
                    "stream binding exactly for GPU ops"
                );
            }
        }
    }

    #[test]
    fn canonical_form_pins_first_gpu_to_stream_zero(space in arb_small_space(5, 2000)) {
        for t in space.enumerate() {
            if let Some(first_gpu) = t.steps.iter().find(|p| p.stream.is_some()) {
                prop_assert_eq!(first_gpu.stream, Some(0));
            }
            // Streams are introduced in order: stream s appears only after
            // streams 0..s have been used.
            let mut used = 0usize;
            for p in &t.steps {
                if let Some(s) = p.stream {
                    prop_assert!(s <= used, "stream {} introduced too early", s);
                    if s == used {
                        used += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn precedence_constraints_hold_in_every_traversal(space in arb_small_space(5, 2000)) {
        for t in space.enumerate() {
            let pos = t.positions(space.num_ops());
            for op in 0..space.num_ops() {
                for &p in space.op_preds(op) {
                    prop_assert!(pos[p] < pos[op], "pred must precede");
                }
            }
        }
    }

    #[test]
    fn schedules_record_events_before_use(space in arb_small_space(5, 500)) {
        for t in space.enumerate().take(64) {
            let s = build_schedule(&space, &t);
            let mut recorded = std::collections::HashSet::new();
            for item in &s.items {
                match &item.action {
                    ScheduleAction::EventRecord { event, .. } => {
                        recorded.insert(*event);
                    }
                    ScheduleAction::EventSync { events } => {
                        for e in events {
                            prop_assert!(recorded.contains(e));
                        }
                    }
                    ScheduleAction::StreamWaitEvent { event, .. } => {
                        prop_assert!(recorded.contains(event));
                    }
                    _ => {}
                }
            }
            prop_assert!(matches!(
                s.items.last().unwrap().action,
                ScheduleAction::DeviceSync
            ));
            prop_assert!(s.num_streams <= space.num_streams());
        }
    }

    #[test]
    fn rollout_completion_always_yields_valid_traversals(
        space in arb_small_space(6, u128::MAX),
        picks in proptest::collection::vec(any::<u32>(), 64),
    ) {
        // complete_with must terminate and produce a valid traversal for
        // arbitrary (even adversarial) pick sequences — this also covers
        // spaces far too large to enumerate.
        let mut i = 0;
        let mut prefix = space.empty_prefix();
        let t = space.complete_with(&mut prefix, |elig| {
            let k = picks.get(i % picks.len()).copied().unwrap_or(0) as usize;
            i += 1;
            k % elig.len()
        });
        prop_assert!(space.validate(&t).is_ok());
    }
}
