//! Property tests on the parallel exploration substrate: the striped
//! result cache is observationally transparent, and per-worker simulator
//! statistics merge back to exactly what a serial accumulation yields.

mod common;

use common::arb_small_space;
use cuda_mpi_design_rules::dag::eval_seed;
use cuda_mpi_design_rules::mcts::{CachingEvaluator, Evaluator, SimEvaluator};
use cuda_mpi_design_rules::par::{par_map_stream_with, StripedCache};
use cuda_mpi_design_rules::sim::{BenchConfig, Platform, SimStats, TableWorkload};
use proptest::prelude::*;

fn workload_for(space: &cuda_mpi_design_rules::dag::DecisionSpace) -> TableWorkload {
    let mut w = TableWorkload::new(1);
    for (i, op) in space.ops().iter().enumerate() {
        w.cost_all(op.name.clone(), 1e-5 * (i as f64 + 1.0));
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cache-wrapped evaluator returns bit-identical results to the
    /// bare evaluator for every traversal, including repeats, and its
    /// hit/miss counters account for exactly the repeats.
    #[test]
    fn cached_evaluation_equals_direct_evaluation(
        space in arb_small_space(4, 200),
        repeats in 1usize..4,
    ) {
        let w = workload_for(&space);
        let platform = Platform::perlmutter_like();
        let uniques: Vec<_> = space.enumerate().collect();

        let mut direct = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let cache = StripedCache::new(8);
        let inner = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let mut cached = CachingEvaluator::new(inner, &cache);

        for _ in 0..repeats {
            for t in &uniques {
                let seed = eval_seed(7, t);
                let a = direct.evaluate(t, seed).unwrap();
                let b = cached.evaluate(t, seed).unwrap();
                prop_assert_eq!(a, b);
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.misses as usize, uniques.len());
        prop_assert_eq!(stats.hits as usize, uniques.len() * (repeats - 1));
        prop_assert_eq!(cache.len(), uniques.len());
    }

    /// Evaluating a space partitioned across workers and merging the
    /// per-worker SimStats in worker order reproduces the serial
    /// accumulation: u64 counters exactly, busy-time sums to fp
    /// tolerance (summation order differs).
    #[test]
    fn worker_stats_merge_to_serial_accumulation(
        space in arb_small_space(4, 200),
        threads in 2usize..5,
    ) {
        let w = workload_for(&space);
        let platform = Platform::perlmutter_like();

        let mut serial = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        for t in space.enumerate() {
            serial.evaluate(&t, eval_seed(11, &t)).unwrap();
        }
        let serial_stats = serial.stats().clone();

        let (_, states) = par_map_stream_with(
            space.enumerate(),
            threads,
            |_worker| SimEvaluator::new(&space, &w, &platform, BenchConfig::quick()),
            |eval, _i, t| eval.evaluate(&t, eval_seed(11, &t)),
        )
        .unwrap();
        let mut merged = SimStats::default();
        for s in &states {
            merged.merge(s.stats());
        }

        prop_assert_eq!(merged.runs, serial_stats.runs);
        prop_assert_eq!(merged.instructions, serial_stats.instructions);
        prop_assert_eq!(merged.eager_msgs, serial_stats.eager_msgs);
        prop_assert_eq!(merged.rendezvous_msgs, serial_stats.rendezvous_msgs);
        prop_assert_eq!(merged.bytes_moved, serial_stats.bytes_moved);
        prop_assert_eq!(merged.collective_ops, serial_stats.collective_ops);
        prop_assert_eq!(merged.sync_ops(), serial_stats.sync_ops());
        prop_assert_eq!(merged.cpu_busy.len(), serial_stats.cpu_busy.len());
        for (a, b) in merged.cpu_busy.iter().zip(&serial_stats.cpu_busy) {
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
        for (ra, rb) in merged.stream_busy.iter().zip(&serial_stats.stream_busy) {
            for (a, b) in ra.iter().zip(rb) {
                prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
    }
}
