//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io; this crate provides the
//! API subset the workspace's benches use ([`Criterion`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`criterion_group!`],
//! [`criterion_main!`]). Instead of criterion's statistical machinery it
//! runs each routine for the configured measurement time and prints the
//! mean wall-clock duration per iteration — enough for relative
//! comparisons between commits on the same machine.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Runs and times one benchmark routine.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Mean seconds per iteration, filled by `iter`/`iter_batched`.
    mean: Option<f64>,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly for the configured measurement time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up.
        let warm_until = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.config.sample_size as u64
            || start.elapsed() < self.config.measurement_time
        {
            black_box(routine());
            iters += 1;
            if iters >= 1_000_000_000 {
                break;
            }
        }
        self.mean = Some(start.elapsed().as_secs_f64() / iters as f64);
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let budget = self.config.warm_up_time + self.config.measurement_time;
        let start = Instant::now();
        while iters < self.config.sample_size as u64 || measured < self.config.measurement_time {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
            if start.elapsed() > budget * 4 {
                break; // setup-dominated benchmark; don't hang
            }
        }
        self.mean = Some(measured.as_secs_f64() / iters as f64);
    }
}

#[derive(Debug, Clone)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config {
                warm_up_time: Duration::from_millis(300),
                measurement_time: Duration::from_millis(1000),
                sample_size: 10,
            },
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the minimum number of iterations.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: &self.config,
            mean: None,
        };
        f(&mut b);
        match b.mean {
            Some(mean) => {
                let (value, unit) = if mean >= 1.0 {
                    (mean, "s")
                } else if mean >= 1e-3 {
                    (mean * 1e3, "ms")
                } else if mean >= 1e-6 {
                    (mean * 1e6, "µs")
                } else {
                    (mean * 1e9, "ns")
                };
                println!("{name:<40} {value:>10.3} {unit}/iter");
            }
            None => println!("{name:<40} (no measurement)"),
        }
        self
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        // `ran` was captured mutably; at least sample_size iterations ran.
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .sample_size(2);
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 2);
    }
}
