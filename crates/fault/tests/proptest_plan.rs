//! Property tests for the fault-plan contract: a [`FaultPlan`] is a pure
//! function of `(config, evaluation seed)` and the queried identity —
//! independent of query order, repetition, and thread count — and every
//! injected value stays inside the configured bounds.

use dr_fault::{key_hash, FaultConfig, FaultPlan, MessageFault};
use proptest::prelude::*;

/// Arbitrary fault configurations with in-range probabilities and
/// magnitudes (factors >= 1, as the config documents).
fn configs() -> impl Strategy<Value = FaultConfig> {
    (
        (any::<u64>(), 0f64..1.0, 1f64..8.0),
        (0f64..0.5, 0f64..1e-3, 0f64..0.5),
        (0f64..1.0, 1f64..8.0),
        (0f64..1.0, 1f64..64.0),
    )
        .prop_map(
            |(
                (seed, straggler_prob, straggler_factor),
                (delay_prob, delay_seconds, drop_prob),
                (spike_prob, spike_factor),
                (outlier_prob, outlier_factor),
            )| FaultConfig {
                seed,
                straggler_prob,
                straggler_factor,
                delay_prob,
                delay_seconds,
                drop_prob,
                spike_prob,
                spike_factor,
                outlier_prob,
                outlier_factor,
            },
        )
}

/// A full fingerprint of a plan over a small identity window, so two
/// plans can be compared query-by-query.
fn fingerprint(plan: &FaultPlan, key: u64) -> Vec<(f64, f64, f64, Option<MessageFault>)> {
    (0..32)
        .map(|i| {
            (
                plan.rank_factor(i),
                plan.kernel_spike(i, i * 3 + 1),
                plan.outlier(i),
                plan.message(key, i, (i + 1) % 32),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn derivation_is_pure_and_order_independent(
        cfg in configs(),
        eval_seed in any::<u64>(),
    ) {
        let a = FaultPlan::derive(&cfg, eval_seed);
        let b = FaultPlan::derive(&cfg, eval_seed);
        prop_assert_eq!(a, b);
        let key = key_hash("exchange");
        // Query b backwards and repeatedly before fingerprinting: answers
        // must not depend on who asked first or how often.
        for i in (0..32).rev() {
            let _ = b.message(key, i, (i + 1) % 32);
            let _ = b.outlier(i);
            let _ = b.outlier(i);
            let _ = b.kernel_spike(i, i * 3 + 1);
            let _ = b.rank_factor(i);
        }
        prop_assert_eq!(fingerprint(&a, key), fingerprint(&b, key));
    }

    #[test]
    fn injected_values_respect_the_configured_bounds(
        cfg in configs(),
        eval_seed in any::<u64>(),
    ) {
        let plan = FaultPlan::derive(&cfg, eval_seed);
        let key = key_hash("halo");
        for i in 0..64 {
            let rf = plan.rank_factor(i);
            prop_assert!(rf == 1.0 || rf == cfg.straggler_factor, "rank_factor {rf}");
            let ks = plan.kernel_spike(i, 7);
            prop_assert!(ks == 1.0 || ks == cfg.spike_factor, "kernel_spike {ks}");
            let ol = plan.outlier(i);
            prop_assert!(ol == 1.0 || ol == cfg.outlier_factor, "outlier {ol}");
            match plan.message(key, i, i + 1) {
                None | Some(MessageFault::Drop) => {}
                Some(MessageFault::Delay(d)) => prop_assert_eq!(d, cfg.delay_seconds),
            }
        }
    }

    #[test]
    fn certain_drops_win_over_delays(
        (seed, eval_seed) in (any::<u64>(), any::<u64>()),
        delay_prob in 0f64..1.0,
    ) {
        let cfg = FaultConfig {
            drop_prob: 1.0,
            delay_prob,
            delay_seconds: 1e-3,
            ..FaultConfig::clean()
        }
        .with_seed(seed);
        let plan = FaultPlan::derive(&cfg, eval_seed);
        for i in 0..16 {
            prop_assert_eq!(
                plan.message(key_hash("x"), i, i + 1),
                Some(MessageFault::Drop)
            );
        }
    }

    #[test]
    fn clean_configs_inject_nothing_for_any_seed(
        (seed, eval_seed) in (any::<u64>(), any::<u64>()),
    ) {
        let cfg = FaultConfig::clean().with_seed(seed);
        prop_assert!(!cfg.is_active());
        let plan = FaultPlan::derive(&cfg, eval_seed);
        for i in 0..64 {
            prop_assert_eq!(plan.rank_factor(i), 1.0);
            prop_assert_eq!(plan.kernel_spike(i, i), 1.0);
            prop_assert_eq!(plan.outlier(i), 1.0);
            prop_assert_eq!(plan.message(key_hash("any"), i, i + 1), None);
        }
    }

    #[test]
    fn plans_answer_identically_from_every_thread(
        cfg in configs(),
        eval_seed in any::<u64>(),
    ) {
        let plan = FaultPlan::derive(&cfg, eval_seed);
        let key = key_hash("exchange");
        let baseline = fingerprint(&plan, key);
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(move || fingerprint(&plan, key)))
            .collect();
        for h in handles {
            let from_thread = h.join().expect("fingerprint thread panicked");
            prop_assert_eq!(&from_thread, &baseline);
        }
    }

    #[test]
    fn distinct_eval_seeds_change_the_landscape(
        (a, b) in (any::<u64>(), any::<u64>()).prop_filter("distinct", |(a, b)| a != b),
    ) {
        let cfg = FaultConfig {
            straggler_prob: 0.5,
            straggler_factor: 3.0,
            ..FaultConfig::clean()
        };
        let pa = FaultPlan::derive(&cfg, a);
        let pb = FaultPlan::derive(&cfg, b);
        let differs = (0..256).any(|i| pa.rank_factor(i) != pb.rank_factor(i));
        prop_assert!(differs, "seeds {a} and {b} draw identical landscapes");
    }
}
