//! dr-fault: deterministic, seed-derived fault injection plans.
//!
//! The paper's pipeline assumes every explored implementation yields a
//! usable `(sequence, time)` pair. Real clusters disagree: ranks straggle,
//! messages stall or vanish, kernels spike, and timers report nonsense.
//! This crate makes those failure modes a *reproducible input*: a
//! [`FaultConfig`] describes fault rates and magnitudes, and a
//! [`FaultPlan`] derived from `(config, evaluation seed)` answers every
//! injection question as a **pure function** of the plan seed and the
//! entity's identity (rank, message endpoints, instruction index,
//! measurement index). No RNG state is threaded anywhere, so fault
//! decisions are independent of evaluation order and thread count — the
//! serial==parallel determinism contract of the exploration engine
//! survives under injected chaos.
//!
//! Fault taxonomy:
//!
//! * **Straggler ranks** — a rank's compute (CPU work and kernel time) is
//!   scaled by `straggler_factor`.
//! * **Message delay** — a point-to-point transfer's wire time gains
//!   `delay_seconds`.
//! * **Message drop** — a send is lost: the receiver (and a rendezvous
//!   sender) can never complete the wait, driving the simulator's MPI
//!   engine into a structured deadlock report.
//! * **Kernel spikes** — one kernel launch site runs `spike_factor`
//!   slower (GPU clock throttling, ECC scrubbing, ...).
//! * **Measurement outliers** — one benchmarking measurement is scaled by
//!   `outlier_factor` (heavy-tailed timer contamination).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01B3;

/// One FNV-1a mixing step over a 64-bit word.
fn mix(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(FNV_PRIME)
}

/// SplitMix64-style finalizer: avalanches the FNV accumulator so that
/// nearby inputs (rank 0 vs rank 1) produce decorrelated draws.
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (avalanche(h) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Hashes an arbitrary identifier string (e.g. a comm key's display form)
/// into the 64-bit identity used by [`FaultPlan::message`]. Both the
/// simulator and the static lint pass hash keys through this function, so
/// their drop-fault decisions agree by construction.
pub fn key_hash(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in s.as_bytes() {
        h = mix(h, u64::from(b));
    }
    h
}

// Domain tags keep the per-channel draws independent even when the raw
// coordinates collide (rank 3 vs measurement 3).
const TAG_STRAGGLER: u64 = 0x5354_5241_4747;
const TAG_MESSAGE: u64 = 0x4D_4553_5341_4745;
const TAG_SPIKE: u64 = 0x53_5049_4B45;
const TAG_OUTLIER: u64 = 0x4F_5554_4C49_4552;

/// Fault rates and magnitudes. All probabilities are per-entity (per
/// rank, per message, per launch site, per measurement); the all-zero
/// default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Base seed mixed into every derived plan; sweeping it sweeps the
    /// whole fault landscape while keeping each plan reproducible.
    pub seed: u64,
    /// Probability that a rank is a straggler.
    pub straggler_prob: f64,
    /// Compute-time multiplier applied to straggler ranks (>= 1).
    pub straggler_factor: f64,
    /// Probability that a point-to-point message is delayed.
    pub delay_prob: f64,
    /// Extra wire seconds added to delayed messages.
    pub delay_seconds: f64,
    /// Probability that a point-to-point message is dropped outright.
    pub drop_prob: f64,
    /// Probability that a kernel launch site spikes.
    pub spike_prob: f64,
    /// Kernel-time multiplier at spiking launch sites (>= 1).
    pub spike_factor: f64,
    /// Probability that a benchmark measurement is an outlier.
    pub outlier_prob: f64,
    /// Multiplier applied to outlier measurements (heavy tail).
    pub outlier_factor: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::clean()
    }
}

impl FaultConfig {
    /// No faults at all; [`FaultConfig::is_active`] is `false`.
    pub fn clean() -> Self {
        FaultConfig {
            seed: 0,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
            delay_prob: 0.0,
            delay_seconds: 0.0,
            drop_prob: 0.0,
            spike_prob: 0.0,
            spike_factor: 1.0,
            outlier_prob: 0.0,
            outlier_factor: 1.0,
        }
    }

    /// Gentle contamination: rare measurement outliers only. Intended to
    /// be survivable by the benchmarking protocol's median without any
    /// special handling, so a full test suite stays green under it.
    pub fn light() -> Self {
        FaultConfig {
            outlier_prob: 0.02,
            outlier_factor: 10.0,
            ..FaultConfig::clean()
        }
    }

    /// Aggressive but non-fatal faults: stragglers, delays, spikes, and
    /// frequent outliers — everything except message loss.
    pub fn heavy() -> Self {
        FaultConfig {
            straggler_prob: 0.15,
            straggler_factor: 2.5,
            delay_prob: 0.10,
            delay_seconds: 5e-4,
            spike_prob: 0.10,
            spike_factor: 4.0,
            outlier_prob: 0.05,
            outlier_factor: 50.0,
            ..FaultConfig::clean()
        }
    }

    /// Message-loss faults: a quarter of point-to-point messages vanish,
    /// driving schedules into rendezvous stalls and deadlocks.
    pub fn drops() -> Self {
        FaultConfig {
            drop_prob: 0.25,
            ..FaultConfig::clean()
        }
    }

    /// Whether any fault channel has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.straggler_prob > 0.0
            || self.delay_prob > 0.0
            || self.drop_prob > 0.0
            || self.spike_prob > 0.0
            || self.outlier_prob > 0.0
    }

    /// Returns a copy with `seed` replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Reads the `DR_FAULTS` environment variable. Unset or empty means
    /// no configuration (`None`); otherwise the value is parsed with
    /// [`FaultConfig::parse`], and a malformed value reports its error.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("DR_FAULTS") {
            Ok(v) if v.trim().is_empty() => Ok(None),
            Ok(v) => FaultConfig::parse(&v).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// Parses a fault spec: a preset name (`clean`, `light`, `heavy`,
    /// `drops`), `key=value` overrides, or both, comma-separated — e.g.
    /// `"heavy,seed=7"` or `"drop_prob=0.3,delay_prob=0.1"`. Overrides
    /// apply on top of the preset (default `clean`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = FaultConfig::clean();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part {
                "clean" => cfg = FaultConfig::clean(),
                "light" => cfg = FaultConfig::light(),
                "heavy" => cfg = FaultConfig::heavy(),
                "drops" => cfg = FaultConfig::drops(),
                _ => {
                    let (key, value) = part
                        .split_once('=')
                        .ok_or_else(|| format!("bad fault spec segment {part:?}"))?;
                    let key = key.trim();
                    let value = value.trim();
                    if key == "seed" {
                        cfg.seed = value
                            .parse()
                            .map_err(|e| format!("bad fault seed {value:?}: {e}"))?;
                        continue;
                    }
                    let num: f64 = value
                        .parse()
                        .map_err(|e| format!("bad fault value {value:?} for {key}: {e}"))?;
                    if !num.is_finite() || num < 0.0 {
                        return Err(format!("fault value for {key} must be finite and >= 0"));
                    }
                    match key {
                        "straggler_prob" => cfg.straggler_prob = num,
                        "straggler_factor" => cfg.straggler_factor = num,
                        "delay_prob" => cfg.delay_prob = num,
                        "delay_seconds" => cfg.delay_seconds = num,
                        "drop_prob" => cfg.drop_prob = num,
                        "spike_prob" => cfg.spike_prob = num,
                        "spike_factor" => cfg.spike_factor = num,
                        "outlier_prob" => cfg.outlier_prob = num,
                        "outlier_factor" => cfg.outlier_factor = num,
                        _ => return Err(format!("unknown fault key {key:?}")),
                    }
                }
            }
        }
        Ok(cfg)
    }
}

/// What, if anything, happens to one point-to-point message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MessageFault {
    /// The transfer's wire time gains this many extra seconds.
    Delay(f64),
    /// The send is lost; the receiver never observes it.
    Drop,
}

/// A concrete fault assignment, derived from `(config, evaluation seed)`.
///
/// Every query is a pure function of the plan and its arguments: calling
/// [`FaultPlan::rank_factor`] for rank 3 returns the same answer no
/// matter which thread asks, how many times, or in what order. Deriving
/// a plan from the same `(config, seed)` pair always yields the same
/// plan, which is what makes chaos runs replayable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
    seed: u64,
}

impl FaultPlan {
    /// Derives the plan for one evaluation. `eval_seed` is the
    /// evaluation's own seed (in the pipeline: a pure function of the
    /// traversal hash), so distinct traversals draw distinct faults
    /// while repeated evaluations of the same traversal replay exactly.
    pub fn derive(cfg: &FaultConfig, eval_seed: u64) -> Self {
        FaultPlan {
            cfg: *cfg,
            seed: avalanche(mix(mix(FNV_OFFSET, cfg.seed), eval_seed)),
        }
    }

    /// The configuration the plan was derived from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The derived plan seed (diagnostic).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn draw(&self, tag: u64, coords: &[u64]) -> f64 {
        let mut h = mix(self.seed, tag);
        for &c in coords {
            h = mix(h, c);
        }
        unit(h)
    }

    /// Compute-time multiplier for `rank`: `straggler_factor` when the
    /// rank straggles under this plan, `1.0` otherwise.
    pub fn rank_factor(&self, rank: usize) -> f64 {
        if self.cfg.straggler_prob > 0.0
            && self.draw(TAG_STRAGGLER, &[rank as u64]) < self.cfg.straggler_prob
        {
            self.cfg.straggler_factor
        } else {
            1.0
        }
    }

    /// Fault affecting the message `src -> dst` under the comm key whose
    /// [`key_hash`] is `key`. Drop takes precedence over delay (a single
    /// draw decides: `[0, drop_prob)` drops, the next `delay_prob` span
    /// delays).
    pub fn message(&self, key: u64, src: usize, dst: usize) -> Option<MessageFault> {
        if self.cfg.drop_prob <= 0.0 && self.cfg.delay_prob <= 0.0 {
            return None;
        }
        let u = self.draw(TAG_MESSAGE, &[key, src as u64, dst as u64]);
        if u < self.cfg.drop_prob {
            Some(MessageFault::Drop)
        } else if u < self.cfg.drop_prob + self.cfg.delay_prob {
            Some(MessageFault::Delay(self.cfg.delay_seconds))
        } else {
            None
        }
    }

    /// Kernel-time multiplier for the launch at instruction index `pc`
    /// on `rank`: `spike_factor` when the site spikes, `1.0` otherwise.
    pub fn kernel_spike(&self, rank: usize, pc: usize) -> f64 {
        if self.cfg.spike_prob > 0.0
            && self.draw(TAG_SPIKE, &[rank as u64, pc as u64]) < self.cfg.spike_prob
        {
            self.cfg.spike_factor
        } else {
            1.0
        }
    }

    /// Multiplier for benchmark measurement number `measurement`:
    /// `outlier_factor` when the measurement is contaminated, `1.0`
    /// otherwise.
    pub fn outlier(&self, measurement: usize) -> f64 {
        if self.cfg.outlier_prob > 0.0
            && self.draw(TAG_OUTLIER, &[measurement as u64]) < self.cfg.outlier_prob
        {
            self.cfg.outlier_factor
        } else {
            1.0
        }
    }
}

/// Counts of faults actually injected during a run (as opposed to the
/// *rates* in [`FaultConfig`]). Accumulated by the simulator and summed
/// across workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Straggler scalings applied to compute time.
    pub stragglers: u64,
    /// Messages delayed.
    pub delays: u64,
    /// Messages dropped.
    pub drops: u64,
    /// Kernel launches spiked.
    pub spikes: u64,
    /// Measurements contaminated.
    pub outliers: u64,
}

impl FaultCounters {
    /// Total faults injected across all channels.
    pub fn total(&self) -> u64 {
        self.stragglers + self.delays + self.drops + self.spikes + self.outliers
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.stragglers += other.stragglers;
        self.delays += other.delays;
        self.drops += other.drops;
        self.spikes += other.spikes;
        self.outliers += other.outliers;
    }
}

impl fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stragglers {} delays {} drops {} spikes {} outliers {}",
            self.stragglers, self.delays, self.drops, self.spikes, self.outliers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_injects_nothing() {
        let plan = FaultPlan::derive(&FaultConfig::clean(), 12345);
        for rank in 0..64 {
            assert_eq!(plan.rank_factor(rank), 1.0);
            assert_eq!(plan.kernel_spike(rank, rank * 3), 1.0);
            assert_eq!(plan.outlier(rank), 1.0);
            assert_eq!(plan.message(key_hash("x"), rank, rank + 1), None);
        }
        assert!(!FaultConfig::clean().is_active());
        assert!(FaultConfig::light().is_active());
    }

    #[test]
    fn plan_queries_are_pure_and_seed_sensitive() {
        let cfg = FaultConfig::heavy().with_seed(9);
        let a = FaultPlan::derive(&cfg, 42);
        let b = FaultPlan::derive(&cfg, 42);
        assert_eq!(a, b);
        for rank in 0..32 {
            assert_eq!(a.rank_factor(rank), b.rank_factor(rank));
            assert_eq!(a.kernel_spike(rank, 7), b.kernel_spike(rank, 7));
            assert_eq!(a.outlier(rank), b.outlier(rank));
        }
        // A different evaluation seed must produce a different landscape
        // somewhere in a reasonable window.
        let c = FaultPlan::derive(&cfg, 43);
        let differs = (0..256).any(|i| {
            a.rank_factor(i) != c.rank_factor(i)
                || a.outlier(i) != c.outlier(i)
                || a.kernel_spike(i, 0) != c.kernel_spike(i, 0)
        });
        assert!(differs, "seed 42 and 43 landscapes are identical");
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let cfg = FaultConfig::drops().with_seed(1);
        let plan = FaultPlan::derive(&cfg, 7);
        let key = key_hash("exchange");
        let dropped = (0..1000)
            .filter(|&i| plan.message(key, i, (i + 1) % 1000) == Some(MessageFault::Drop))
            .count();
        // drop_prob = 0.25; allow a wide deterministic tolerance.
        assert!((150..=350).contains(&dropped), "dropped {dropped}/1000");
    }

    #[test]
    fn message_drop_takes_precedence_over_delay() {
        let cfg = FaultConfig {
            drop_prob: 1.0,
            delay_prob: 1.0,
            delay_seconds: 1.0,
            ..FaultConfig::clean()
        };
        let plan = FaultPlan::derive(&cfg, 0);
        assert_eq!(plan.message(key_hash("x"), 0, 1), Some(MessageFault::Drop));
        let delay_only = FaultConfig {
            delay_prob: 1.0,
            delay_seconds: 2e-3,
            ..FaultConfig::clean()
        };
        let plan = FaultPlan::derive(&delay_only, 0);
        assert_eq!(
            plan.message(key_hash("x"), 0, 1),
            Some(MessageFault::Delay(2e-3))
        );
    }

    #[test]
    fn parse_presets_and_overrides() {
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::clean());
        assert_eq!(FaultConfig::parse("light").unwrap(), FaultConfig::light());
        assert_eq!(
            FaultConfig::parse("heavy,seed=11").unwrap(),
            FaultConfig::heavy().with_seed(11)
        );
        let custom =
            FaultConfig::parse("drop_prob=0.5,delay_prob=0.25,delay_seconds=1e-3").unwrap();
        assert_eq!(custom.drop_prob, 0.5);
        assert_eq!(custom.delay_prob, 0.25);
        assert_eq!(custom.delay_seconds, 1e-3);
        assert!(FaultConfig::parse("bogus").is_err());
        assert!(FaultConfig::parse("drop_prob=minus").is_err());
        assert!(FaultConfig::parse("drop_prob=-1").is_err());
        assert!(FaultConfig::parse("drop_prob=inf").is_err());
    }

    #[test]
    fn counters_merge_and_total() {
        let mut a = FaultCounters {
            stragglers: 1,
            delays: 2,
            drops: 3,
            spikes: 4,
            outliers: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 30);
        assert_eq!(a.drops, 6);
        assert!(a.to_string().contains("drops 6"));
    }

    #[test]
    fn key_hash_distinguishes_keys() {
        assert_ne!(key_hash("x"), key_hash("y"));
        assert_eq!(key_hash("halo"), key_hash("halo"));
    }
}
