//! Per-iteration search telemetry.
//!
//! Each search iteration appends one [`TelemetryRow`] capturing how the
//! search is progressing — the data behind convergence plots (paper
//! Fig. 7 shows exactly this: measured-time spread vs. iteration).
//! Exported as CSV (one row per iteration) or JSON.

use dr_obs::{csv_row, json};

/// One iteration's snapshot of the search state.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRow {
    /// 1-based iteration number.
    pub iteration: u64,
    /// Distinct traversals benchmarked so far.
    pub unique_traversals: usize,
    /// Fastest measured time so far (seconds).
    pub best_time: f64,
    /// Slowest measured time so far (seconds).
    pub worst_time: f64,
    /// Materialized tree nodes (0 for tree-less searches).
    pub tree_nodes: usize,
    /// Deepest materialized node so far (root = 0).
    pub max_depth: usize,
    /// Placements chosen during this iteration's random rollout phase.
    pub rollout_len: usize,
}

/// The full per-iteration history of one search.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchTelemetry {
    rows: Vec<TelemetryRow>,
}

impl SearchTelemetry {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one iteration's row.
    pub fn push(&mut self, row: TelemetryRow) {
        self.rows.push(row);
    }

    /// All rows, in iteration order.
    pub fn rows(&self) -> &[TelemetryRow] {
        &self.rows
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no iterations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The latest row (the search's current state), if any.
    pub fn last(&self) -> Option<&TelemetryRow> {
        self.rows.last()
    }

    /// Renders a CSV document: a header line plus one row per iteration.
    pub fn to_csv(&self) -> String {
        let mut out = csv_row(&[
            "iteration".into(),
            "unique_traversals".into(),
            "best_time".into(),
            "worst_time".into(),
            "tree_nodes".into(),
            "max_depth".into(),
            "rollout_len".into(),
        ]);
        for r in &self.rows {
            out.push_str(&csv_row(&[
                r.iteration.to_string(),
                r.unique_traversals.to_string(),
                format!("{:e}", r.best_time),
                format!("{:e}", r.worst_time),
                r.tree_nodes.to_string(),
                r.max_depth.to_string(),
                r.rollout_len.to_string(),
            ]));
        }
        out
    }

    /// Renders a JSON array of per-iteration objects.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "{{\"iteration\":{},\"unique_traversals\":{},",
                        "\"best_time\":{},\"worst_time\":{},\"tree_nodes\":{},",
                        "\"max_depth\":{},\"rollout_len\":{}}}"
                    ),
                    r.iteration,
                    r.unique_traversals,
                    json::number(r.best_time),
                    json::number(r.worst_time),
                    r.tree_nodes,
                    r.max_depth,
                    r.rollout_len
                )
            })
            .collect();
        format!("[{}]", rows.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: u64) -> TelemetryRow {
        TelemetryRow {
            iteration: i,
            unique_traversals: i as usize,
            best_time: 1e-4,
            worst_time: 2e-4,
            tree_nodes: 3 * i as usize,
            max_depth: 2,
            rollout_len: 4,
        }
    }

    #[test]
    fn csv_has_header_plus_one_line_per_row() {
        let mut t = SearchTelemetry::new();
        t.push(row(1));
        t.push(row(2));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "iteration,unique_traversals,best_time,worst_time,tree_nodes,max_depth,rollout_len"
        );
        assert!(lines[1].starts_with("1,1,"));
        assert!(lines[2].starts_with("2,2,"));
    }

    #[test]
    fn json_is_wellformed() {
        let mut t = SearchTelemetry::new();
        t.push(row(1));
        json::validate(&t.to_json()).unwrap();
        assert!(t.to_json().contains("\"iteration\":1"));
        assert_eq!(SearchTelemetry::new().to_json(), "[]");
    }

    #[test]
    fn last_tracks_latest_row() {
        let mut t = SearchTelemetry::new();
        assert!(t.last().is_none());
        assert!(t.is_empty());
        t.push(row(1));
        t.push(row(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.last().unwrap().iteration, 2);
    }
}
