//! Evaluation of candidate traversals: the bridge between the search and
//! the (simulated) platform.

use dr_dag::{build_schedule, DecisionSpace, Traversal};
use dr_par::StripedCache;
use dr_sim::{
    benchmark_memo_instrumented, BenchConfig, BenchResult, CompiledProgram, Platform, SimError,
    SimMemo, SimStats, Workload,
};

/// Measures the empirical performance of a complete traversal.
///
/// The search calls this once per distinct rollout result. `seed` is the
/// traversal's evaluation seed; evaluators that use the simulator's
/// memoized protocol key noise by *position* instead and may ignore it —
/// either way the result is a pure function of the traversal, which is
/// what keeps record sets thread-count-invariant.
pub trait Evaluator {
    /// Benchmarks `t` and returns its measurement record.
    fn evaluate(&mut self, t: &Traversal, seed: u64) -> Result<BenchResult, SimError>;

    /// Simulator statistics accumulated across every evaluation so far.
    /// `None` for evaluators that do not run the simulator (the default).
    fn sim_stats(&self) -> Option<&SimStats> {
        None
    }
}

impl<F> Evaluator for F
where
    F: FnMut(&Traversal, u64) -> Result<BenchResult, SimError>,
{
    fn evaluate(&mut self, t: &Traversal, seed: u64) -> Result<BenchResult, SimError> {
        self(t, seed)
    }
}

/// The standard evaluator: lower the traversal to a schedule, compile it
/// against a workload, and run the paper's measurement protocol on the
/// platform simulator.
///
/// Uses the *memoized* protocol ([`benchmark_memo_instrumented`]): noise
/// is position-keyed and the `(measurement, sample)` noise cells are
/// shared across traversals, so the per-seed noise-factor tables built
/// for one schedule replay for every sibling — the Box-Muller draws that
/// dominate short executions are computed once per cell. On programs
/// long enough to clear the memo's snapshot floor, executor snapshots
/// taken at checkpoint boundaries additionally let sibling schedules
/// re-simulate only their suffix. Results are a pure function of
/// `(traversal, workload, platform, cfg)`: the `seed` argument is
/// ignored, the memo can only change wall time, never measurements.
pub struct SimEvaluator<'a, W: Workload> {
    space: &'a DecisionSpace,
    workload: &'a W,
    platform: &'a Platform,
    cfg: BenchConfig,
    stats: SimStats,
    memo: SimMemo,
}

impl<'a, W: Workload> SimEvaluator<'a, W> {
    /// Creates an evaluator over the given space/workload/platform.
    pub fn new(
        space: &'a DecisionSpace,
        workload: &'a W,
        platform: &'a Platform,
        cfg: BenchConfig,
    ) -> Self {
        SimEvaluator {
            space,
            workload,
            platform,
            cfg,
            stats: SimStats::default(),
            memo: SimMemo::default(),
        }
    }

    /// Simulator statistics summed over every sample of every evaluated
    /// traversal.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// `(hits, misses)` of the prefix-checkpoint memo: how many
    /// executions resumed from a cached snapshot vs ran cold. Both stay
    /// zero on programs below the memo's snapshot floor, where only the
    /// noise tables are in play.
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.memo.hits(), self.memo.misses())
    }

    /// Number of per-seed noise-factor tables the memo has built — one
    /// per distinct `(measurement, sample)` cell seed the protocol has
    /// touched, shared across every traversal evaluated so far.
    pub fn noise_tables(&self) -> usize {
        self.memo.noise_tables()
    }
}

impl<W: Workload> Evaluator for SimEvaluator<'_, W> {
    fn evaluate(&mut self, t: &Traversal, _seed: u64) -> Result<BenchResult, SimError> {
        let schedule = build_schedule(self.space, t);
        let prog = CompiledProgram::compile(&schedule, self.workload)?;
        let (result, stats) =
            benchmark_memo_instrumented(&prog, self.platform, &self.cfg, &mut self.memo)?;
        self.stats.merge(&stats);
        Ok(result)
    }

    fn sim_stats(&self) -> Option<&SimStats> {
        Some(&self.stats)
    }
}

/// Memoizing wrapper: consults a shared [`StripedCache`] before running
/// the inner evaluator, so repeated rollouts of the same traversal —
/// within one search or across parallel root-MCTS workers — are
/// simulated exactly once.
///
/// Because the parallel exploration engine seeds every evaluation with
/// [`dr_dag::eval_seed`] (a pure function of the traversal), the cached
/// [`BenchResult`] is exactly what a fresh evaluation would return;
/// caching changes wall time, never results. The cache key is the full
/// traversal with [`Traversal::canonical_hash`] used only for stripe and
/// bucket selection, so a hash collision costs a probe, never a wrong
/// answer. `sim_stats` delegates to the inner evaluator and therefore
/// counts only the simulations this worker actually ran — merging those
/// per-worker stats recovers the global "work done" picture without
/// double-counting cache hits.
pub struct CachingEvaluator<'c, E> {
    inner: E,
    cache: &'c StripedCache<Traversal, BenchResult>,
}

impl<'c, E> CachingEvaluator<'c, E> {
    /// Wraps `inner`, memoizing through the shared `cache`.
    pub fn new(inner: E, cache: &'c StripedCache<Traversal, BenchResult>) -> Self {
        CachingEvaluator { inner, cache }
    }
}

impl<E: Evaluator> Evaluator for CachingEvaluator<'_, E> {
    fn evaluate(&mut self, t: &Traversal, seed: u64) -> Result<BenchResult, SimError> {
        let inner = &mut self.inner;
        self.cache
            .get_or_try_insert(t.canonical_hash(), t, || inner.evaluate(t, seed))
    }

    fn sim_stats(&self) -> Option<&SimStats> {
        self.inner.sim_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_sim::TableWorkload;

    #[test]
    fn sim_evaluator_benchmarks_a_traversal() {
        let mut b = DagBuilder::new();
        b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
        let space = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let mut w = TableWorkload::new(2);
        w.cost_all("k", 1e-4);
        let platform = Platform::perlmutter_like().noiseless();
        let mut eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let t = space.enumerate().next().unwrap();
        let res = eval.evaluate(&t, 1).unwrap();
        assert!(res.time() >= 1e-4);
    }

    #[test]
    fn memo_reuse_is_order_independent_and_seed_free() {
        // Evaluations are pure functions of the traversal: warm-memo
        // results equal cold ones regardless of visit order or seed.
        let mut b = DagBuilder::new();
        b.add("x", OpSpec::GpuKernel(CostKey::new("x")));
        b.add("y", OpSpec::GpuKernel(CostKey::new("y")));
        b.add("z", OpSpec::GpuKernel(CostKey::new("z")));
        let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(2);
        w.cost_all("x", 1e-4)
            .cost_all("y", 2e-4)
            .cost_all("z", 5e-5);
        let platform = Platform::perlmutter_like(); // noisy
        let all: Vec<Traversal> = space.enumerate().collect();
        assert!(all.len() >= 2);

        let mut forward = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let fwd: Vec<_> = all
            .iter()
            .map(|t| forward.evaluate(t, 1).unwrap())
            .collect();
        // Small programs sit below the snapshot floor (no state clones);
        // the shared work is the per-cell noise tables, reused by every
        // sibling schedule.
        assert_eq!(forward.memo_stats(), (0, 0), "snapshot floor engaged");
        assert!(
            forward.noise_tables() > 0,
            "noise cells must be tabulated and shared across schedules"
        );

        let mut backward = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let mut bwd: Vec<_> = all
            .iter()
            .rev()
            .map(|t| backward.evaluate(t, 2).unwrap())
            .collect();
        bwd.reverse();
        assert_eq!(fwd, bwd, "memo state and seed must never leak into results");
    }

    #[test]
    fn closures_are_evaluators() {
        let mut calls = 0usize;
        {
            let mut eval = |_: &Traversal, _: u64| -> Result<BenchResult, SimError> {
                calls += 1;
                Ok(BenchResult {
                    measurements: vec![1.0],
                    percentiles: dr_sim::Percentiles {
                        p01: 1.0,
                        p10: 1.0,
                        p50: 1.0,
                        p90: 1.0,
                        p99: 1.0,
                    },
                })
            };
            let t = Traversal { steps: vec![] };
            assert_eq!(Evaluator::evaluate(&mut eval, &t, 0).unwrap().time(), 1.0);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn caching_evaluator_simulates_each_traversal_once() {
        let mut b = DagBuilder::new();
        b.add("x", OpSpec::GpuKernel(CostKey::new("x")));
        b.add("y", OpSpec::GpuKernel(CostKey::new("y")));
        let space = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(2);
        w.cost_all("x", 1e-4).cost_all("y", 2e-4);
        let platform = Platform::perlmutter_like().noiseless();
        let all: Vec<Traversal> = space.enumerate().collect();
        assert!(all.len() >= 2);

        let cache = StripedCache::new(8);
        let mut calls = 0usize;
        {
            let counting = |t: &Traversal, seed: u64| {
                calls += 1;
                let mut inner = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
                inner.evaluate(t, seed)
            };
            let mut eval = CachingEvaluator::new(counting, &cache);
            let first: Vec<_> = all
                .iter()
                .map(|t| eval.evaluate(t, dr_dag::eval_seed(3, t)).unwrap())
                .collect();
            let second: Vec<_> = all
                .iter()
                .map(|t| eval.evaluate(t, dr_dag::eval_seed(3, t)).unwrap())
                .collect();
            assert_eq!(first, second, "cached results must equal fresh results");
        }
        assert_eq!(calls, all.len(), "each distinct traversal simulated once");
        let stats = cache.stats();
        assert_eq!(stats.misses, all.len() as u64);
        assert_eq!(stats.hits, all.len() as u64);
    }
}
