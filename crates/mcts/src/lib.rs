//! # dr-mcts — Monte-Carlo tree search over CUDA+MPI design spaces
//!
//! Implements the paper's search strategy (Section III-C): the design
//! space of a CUDA+MPI program — operation orderings × stream assignments
//! — is explored by MCTS whose *exploitation* signal is not raw speed but
//! the **performance range** observed in a subtree. The search therefore
//! gravitates toward regions where design decisions have a large impact,
//! which is exactly the data the downstream rule-mining pipeline needs.
//!
//! * [`Mcts`] — the four-phase search (selection / expansion / rollout /
//!   backpropagation) with exhaustion detection;
//! * [`SharedMcts`] — the shared-tree variant: one arena-backed tree whose
//!   leaf evaluations are batched for parallel workers, with virtual loss
//!   steering concurrent descents apart;
//! * [`Evaluator`] / [`SimEvaluator`] — measurement of rollouts via the
//!   platform simulator;
//! * [`random_search`] — the uniform random-sampling baseline the paper's
//!   future work calls for (used by the ablation benchmark).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod eval;
mod random;
mod shared;
mod telemetry;
mod tree;

pub use eval::{CachingEvaluator, Evaluator, SimEvaluator};
pub use random::{random_rollout, random_search, random_search_telemetry, shard_root_seed};
pub use shared::{Batch, PendingEval, SharedMcts};
pub use telemetry::{SearchTelemetry, TelemetryRow};
pub use tree::{
    Exploitation, ExploredRecord, Mcts, MctsConfig, NodeStat, PrincipalVariation, PruneHook,
    StepOutcome, TreeSnapshot, TreeStats,
};
