//! Monte-Carlo tree search over traversal prefixes (paper Section III-C).
//!
//! The tree's nodes are placements; a node's ancestors form the prefix
//! `P_k` taken to reach it. Each iteration runs four phases:
//!
//! 1. **Selection** — recursively pick the child maximizing
//!    `exploration + exploitation`, where exploration is the UCT term
//!    `c·sqrt(ln N / n)` (−∞ for fully explored subtrees) and exploitation
//!    is the *coverage ratio* `V = (t_max^c − t_min^c)/(t_max^p − t_min^p)`
//!    (1 until both sides have two observations). Selection stops at any
//!    node with an unvisited child.
//! 2. **Expansion** — materialize one zero-rollout child of the selected
//!    node.
//! 3. **Rollout** — randomly complete the prefix into a full traversal,
//!    benchmark it, and record the measurement percentiles alongside the
//!    sequence. The rollout's nodes are added to the tree to retain their
//!    performance information.
//! 4. **Backpropagation** — update `(n, t_min, t_max)` on every node along
//!    the path.
//!
//! For MPI programs, the paper executes the search on a single rank with
//! all ranks participating in measurements; here the "measurement" is the
//! platform simulator, so the search is just a sequential loop.

use crate::eval::Evaluator;
use crate::telemetry::{SearchTelemetry, TelemetryRow};
use dr_dag::{eval_seed, DecisionSpace, Placement, Prefix, Traversal};
use dr_obs::events::EventSink;
use dr_sim::{BenchResult, SimError};
use dr_trace::Lane;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The exploitation term of the selection rule. The paper uses
/// [`Exploitation::CoverageRange`]; the alternatives are the baselines its
/// future work calls for ("other MCTS strategies should be considered").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exploitation {
    /// Paper Section III-C-1: the child's observed time range as a
    /// fraction of the parent's — favors subtrees where design decisions
    /// have a large performance impact.
    #[default]
    CoverageRange,
    /// Classic minimizing UCT: `(t_max^root − mean_child) / (t_max^root −
    /// t_min^root)` — favors *fast* subtrees, the usual choice when MCTS
    /// hunts a single optimum rather than mapping the landscape.
    MeanTime,
    /// Constant 1: selection degenerates to pure UCT exploration.
    Constant,
}

/// Search hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MctsConfig {
    /// Exploration constant `c` (paper: √2).
    pub exploration_c: f64,
    /// Exploitation signal (paper: coverage range).
    pub exploitation: Exploitation,
    /// Seed for rollout randomness and per-evaluation noise seeds.
    pub seed: u64,
    /// Evaluator errors tolerated before the search aborts. Each failing
    /// traversal is quarantined (its subtree is marked fully explored, no
    /// record is added, no statistics are backpropagated) and the search
    /// continues; once more than `max_failures` distinct traversals have
    /// failed, the next error propagates. `0` (the default) keeps the
    /// pre-chaos fail-fast behavior.
    pub max_failures: usize,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            exploration_c: std::f64::consts::SQRT_2,
            exploitation: Exploitation::default(),
            seed: 0,
            max_failures: 0,
        }
    }
}

/// Aggregate statistics of an MCTS search tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStats {
    /// Materialized tree nodes.
    pub nodes: usize,
    /// Deepest materialized node (root = 0).
    pub max_depth: usize,
    /// Nodes whose subtrees are fully benchmarked.
    pub fully_explored: usize,
    /// Total rollouts backpropagated through the root.
    pub rollouts: u64,
    /// Fastest time observed anywhere.
    pub t_min: f64,
    /// Slowest time observed anywhere.
    pub t_max: f64,
}

/// Statistics of one materialized tree node, exported by
/// [`Mcts::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStat {
    /// Depth below the root (root = 0).
    pub depth: usize,
    /// The placement on the incoming edge (`None` for the root).
    pub action: Option<Placement>,
    /// Rollouts backpropagated through this node.
    pub visits: u64,
    /// Fastest simulated time observed in this node's subtree.
    pub t_min: f64,
    /// Slowest simulated time observed in this node's subtree.
    pub t_max: f64,
    /// Mean simulated time over the node's rollouts (NaN when
    /// unvisited).
    pub t_mean: f64,
    /// Materialized children.
    pub children: usize,
    /// Whether the subtree is fully benchmarked.
    pub fully_explored: bool,
}

/// One principal variation: a root-to-leaf path following the
/// most-visited materialized child at every level.
#[derive(Debug, Clone, PartialEq)]
pub struct PrincipalVariation {
    /// The placements along the path, root first.
    pub steps: Vec<Placement>,
    /// Visit count of the opening placement (the ranking key).
    pub visits: u64,
    /// Fastest time observed at the path's end.
    pub t_min: f64,
    /// Mean time over the opening placement's rollouts.
    pub t_mean: f64,
}

/// A full introspection snapshot of the search tree, exported by
/// [`Mcts::snapshot`] for the `explain` command.
#[derive(Debug, Clone)]
pub struct TreeSnapshot {
    /// Aggregate tree statistics (same as [`Mcts::stats`]).
    pub stats: TreeStats,
    /// Whether every traversal in the space has been benchmarked.
    pub exhausted: bool,
    /// Iterations executed so far.
    pub iterations: u64,
    /// Distinct traversals quarantined after evaluator errors.
    pub failures: usize,
    /// Materialized node count per depth (index = depth; `[0]` is 1).
    pub depth_profile: Vec<usize>,
    /// The most-visited nodes, visit-count descending (capped by the
    /// `max_nodes` argument).
    pub nodes: Vec<NodeStat>,
    /// Top-k principal variations, opening-visits descending.
    pub principal_variations: Vec<PrincipalVariation>,
}

/// One explored implementation: the traversal and its measurements.
#[derive(Debug, Clone)]
pub struct ExploredRecord {
    /// The complete traversal.
    pub traversal: Traversal,
    /// The measurement record (percentiles over measurements).
    pub result: BenchResult,
}

/// A static prefix filter installed via [`Mcts::set_prune`]: return
/// `true` when *every* completion of the prefix is provably worthless
/// (e.g. statically deadlocked), and the search retires the subtree
/// without spending a single evaluation in it. The hook owns its data
/// (`'static`) so the same closure serves serial, root-parallel, and
/// shared-tree searches.
pub type PruneHook = std::sync::Arc<dyn Fn(&Prefix) -> bool + Send + Sync>;

/// Outcome of one search iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A rollout completed; `record` indexes [`Mcts::records`], `new` is
    /// false when the rollout regenerated an already-benchmarked
    /// traversal (its cached measurement is reused).
    Explored {
        /// Index into the record list.
        record: usize,
        /// Whether this traversal was first seen this iteration.
        new: bool,
    },
    /// Every traversal in the space has been benchmarked.
    Exhausted,
    /// The rollout's evaluation failed and the traversal was quarantined
    /// (tolerated under [`MctsConfig::max_failures`]): no record was
    /// added, no statistics were backpropagated, and the offending
    /// subtree was marked fully explored so the search moves on.
    Quarantined,
    /// The expanded prefix was rejected by the [`PruneHook`]: its whole
    /// subtree was retired without a rollout or an evaluation.
    Pruned,
}

type NodeId = usize;

struct Node {
    children: Vec<(Placement, NodeId)>,
    /// Number of eligible placements at this node's prefix.
    num_actions: usize,
    /// Children whose subtrees are fully explored.
    fully_explored_children: usize,
    fully_explored: bool,
    /// Whether this node's fully-explored state has been counted in its
    /// parent's `fully_explored_children` (each child counts once).
    counted_in_parent: bool,
    n: u64,
    t_min: f64,
    t_max: f64,
    t_sum: f64,
}

impl Node {
    fn new(num_actions: usize) -> Self {
        Node {
            children: Vec::new(),
            num_actions,
            fully_explored_children: 0,
            fully_explored: num_actions == 0,
            counted_in_parent: false,
            n: 0,
            t_min: f64::INFINITY,
            t_max: f64::NEG_INFINITY,
            t_sum: 0.0,
        }
    }

    fn child(&self, p: Placement) -> Option<NodeId> {
        self.children
            .iter()
            .find(|&&(q, _)| q == p)
            .map(|&(_, id)| id)
    }
}

/// The Monte-Carlo tree search state.
pub struct Mcts<'a, E: Evaluator> {
    space: &'a DecisionSpace,
    eval: E,
    cfg: MctsConfig,
    nodes: Vec<Node>,
    records: Vec<ExploredRecord>,
    /// Canonical-hash index into `records` (values are candidate record
    /// indices; equality is re-checked, so a hash collision costs a probe
    /// and never a misattributed measurement). Keyed by hash rather than
    /// by owned `Traversal` so recording a rollout moves the traversal
    /// into its record instead of cloning it.
    seen: HashMap<u64, Vec<usize>>,
    /// Canonical-hash index of quarantined traversals (same
    /// collision-tolerant layout as `seen`): re-rolling a known-failed
    /// traversal is skipped without re-evaluating it or consuming
    /// another failure credit.
    failed: HashMap<u64, Vec<Traversal>>,
    failures: usize,
    rng: SmallRng,
    iterations: u64,
    telemetry: SearchTelemetry,
    /// Deepest materialized node, maintained incrementally so telemetry
    /// rows avoid the full-tree walk [`Mcts::stats`] performs.
    max_depth: usize,
    /// Sampled per-iteration tracing: `(lane, every)` set by
    /// [`Mcts::set_trace`]. `None` (the default) costs nothing.
    trace: Option<(Lane, usize)>,
    /// Sampled per-iteration event emission: `(sink, every)` set by
    /// [`Mcts::set_events`]. `None` (the default) costs nothing.
    events: Option<(EventSink, usize)>,
    /// Static prefix filter set by [`Mcts::set_prune`]. `None` (the
    /// default) costs nothing.
    prune: Option<PruneHook>,
    /// Subtrees retired by the prune hook.
    pruned: u64,
}

impl<'a, E: Evaluator> Mcts<'a, E> {
    /// Creates a search over `space` using `eval` to measure rollouts.
    pub fn new(space: &'a DecisionSpace, eval: E, cfg: MctsConfig) -> Self {
        let root_actions = space.eligible(&space.empty_prefix()).len();
        Mcts {
            space,
            eval,
            cfg,
            nodes: vec![Node::new(root_actions)],
            records: Vec::new(),
            seen: HashMap::new(),
            failed: HashMap::new(),
            failures: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            iterations: 0,
            telemetry: SearchTelemetry::new(),
            max_depth: 0,
            trace: None,
            events: None,
            prune: None,
            pruned: 0,
        }
    }

    /// Enables sampled iteration tracing: every `every`-th iteration
    /// (starting with the first) records an `mcts-iter` span on `lane`,
    /// annotated with the iteration number, unique-traversal count, tree
    /// size, and the iteration's outcome. Sampling keeps the span volume
    /// proportional to `budget / every` so deep searches stay cheap to
    /// trace; `every` is clamped to at least 1.
    pub fn set_trace(&mut self, lane: Lane, every: usize) {
        self.trace = Some((lane, every.max(1)));
    }

    /// Enables sampled iteration event emission (`mcts-iter` events on
    /// `sink`): the same sampling schedule as [`Mcts::set_trace`] —
    /// iterations 1, 1+`every`, 1+2·`every`, … — carrying the iteration
    /// number, unique-traversal count, tree size/depth, best time, and
    /// the iteration's outcome. Emission only reads search state, so it
    /// cannot perturb the search.
    pub fn set_events(&mut self, sink: EventSink, every: usize) {
        self.events = Some((sink, every.max(1)));
    }

    /// Installs a static prune hook: when expansion materializes a new
    /// child whose prefix the hook rejects, the child's subtree is
    /// immediately marked fully explored — no rollout, no evaluation —
    /// and the iteration reports [`StepOutcome::Pruned`]. The hook must
    /// only reject prefixes whose *every* completion is worthless
    /// (soundness is the caller's obligation; see
    /// `dr-lint`'s `PrefixDeadlockOracle`).
    pub fn set_prune(&mut self, hook: PruneHook) {
        self.prune = Some(hook);
    }

    /// Subtrees retired by the prune hook so far.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// All explored implementations, in discovery order.
    pub fn records(&self) -> &[ExploredRecord] {
        &self.records
    }

    /// Consumes the search and returns the explored records.
    pub fn into_records(self) -> Vec<ExploredRecord> {
        self.records
    }

    /// Per-iteration telemetry rows (one per [`Mcts::step`] that ran a
    /// rollout).
    pub fn telemetry(&self) -> &SearchTelemetry {
        &self.telemetry
    }

    /// Consumes the search, returning the explored records together with
    /// the telemetry history and the evaluator (whose accumulated
    /// simulator statistics outlive the search).
    pub fn into_parts(self) -> (Vec<ExploredRecord>, SearchTelemetry, E) {
        (self.records, self.telemetry, self.eval)
    }

    /// True when every traversal of the space has been benchmarked.
    pub fn is_exhausted(&self) -> bool {
        self.nodes[0].fully_explored
    }

    /// Number of iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Number of distinct traversals quarantined after evaluator errors
    /// (bounded by [`MctsConfig::max_failures`]).
    pub fn failures(&self) -> usize {
        self.failures
    }

    /// Number of tree nodes materialized.
    pub fn tree_size(&self) -> usize {
        self.nodes.len()
    }

    /// Aggregate statistics of the search tree.
    pub fn stats(&self) -> TreeStats {
        let mut max_depth = 0usize;
        let mut stack = vec![(0usize, 0usize)];
        let mut fully_explored = 0usize;
        while let Some((id, depth)) = stack.pop() {
            max_depth = max_depth.max(depth);
            if self.nodes[id].fully_explored {
                fully_explored += 1;
            }
            for &(_, c) in &self.nodes[id].children {
                stack.push((c, depth + 1));
            }
        }
        TreeStats {
            nodes: self.nodes.len(),
            max_depth,
            fully_explored,
            rollouts: self.nodes[0].n,
            t_min: self.nodes[0].t_min,
            t_max: self.nodes[0].t_max,
        }
    }

    /// Exports an introspection snapshot of the search tree: aggregate
    /// statistics, the per-depth node profile, the `max_nodes`
    /// most-visited nodes, and the top-`top_k` principal variations.
    ///
    /// A principal variation starts at one of the root's children
    /// (ranked by visit count, descending) and follows the most-visited
    /// materialized child at every level — the search's preferred
    /// completion of that opening decision. Ties break toward the
    /// earlier-materialized child, so the export is deterministic.
    pub fn snapshot(&self, top_k: usize, max_nodes: usize) -> TreeSnapshot {
        // One BFS walk computes depths for stats, profile, and export.
        let mut depth_of = vec![0usize; self.nodes.len()];
        let mut depth_profile: Vec<usize> = Vec::new();
        let mut queue = std::collections::VecDeque::from([0usize]);
        let mut order: Vec<NodeId> = Vec::new();
        while let Some(id) = queue.pop_front() {
            order.push(id);
            let d = depth_of[id];
            if depth_profile.len() <= d {
                depth_profile.resize(d + 1, 0);
            }
            depth_profile[d] += 1;
            for &(_, c) in &self.nodes[id].children {
                depth_of[c] = d + 1;
                queue.push_back(c);
            }
        }

        let action_of = |id: NodeId| -> Option<Placement> {
            // Parent links are not stored; recover the incoming edge by
            // scanning (snapshotting is a once-per-run export, so the
            // quadratic scan is confined to the exported node set).
            self.nodes
                .iter()
                .find_map(|n| n.children.iter().find(|&&(_, c)| c == id).map(|&(p, _)| p))
        };
        let mut ranked: Vec<NodeId> = order.clone();
        ranked.sort_by(|&a, &b| {
            self.nodes[b]
                .n
                .cmp(&self.nodes[a].n)
                .then(depth_of[a].cmp(&depth_of[b]))
                .then(a.cmp(&b))
        });
        let nodes: Vec<NodeStat> = ranked
            .into_iter()
            .take(max_nodes)
            .map(|id| {
                let n = &self.nodes[id];
                NodeStat {
                    depth: depth_of[id],
                    action: if id == 0 { None } else { action_of(id) },
                    visits: n.n,
                    t_min: n.t_min,
                    t_max: n.t_max,
                    t_mean: if n.n > 0 {
                        n.t_sum / n.n as f64
                    } else {
                        f64::NAN
                    },
                    children: n.children.len(),
                    fully_explored: n.fully_explored,
                }
            })
            .collect();

        // Principal variations: top-k root children by visits, each
        // greedily completed along most-visited children.
        let mut openings: Vec<(Placement, NodeId)> = self.nodes[0].children.clone();
        openings.sort_by(|&(_, a), &(_, b)| self.nodes[b].n.cmp(&self.nodes[a].n).then(a.cmp(&b)));
        let principal_variations: Vec<PrincipalVariation> = openings
            .into_iter()
            .take(top_k)
            .filter(|&(_, id)| self.nodes[id].n > 0)
            .map(|(p, id)| {
                let mut steps = vec![p];
                let mut node = id;
                loop {
                    let next = self.nodes[node]
                        .children
                        .iter()
                        .filter(|&&(_, c)| self.nodes[c].n > 0)
                        .max_by(|&&(_, a), &&(_, b)| {
                            self.nodes[a].n.cmp(&self.nodes[b].n).then(b.cmp(&a))
                        })
                        .copied();
                    match next {
                        Some((q, c)) => {
                            steps.push(q);
                            node = c;
                        }
                        None => break,
                    }
                }
                PrincipalVariation {
                    visits: self.nodes[id].n,
                    t_min: self.nodes[node].t_min,
                    t_mean: if self.nodes[id].n > 0 {
                        self.nodes[id].t_sum / self.nodes[id].n as f64
                    } else {
                        f64::NAN
                    },
                    steps,
                }
            })
            .collect();

        TreeSnapshot {
            stats: self.stats(),
            exhausted: self.is_exhausted(),
            iterations: self.iterations,
            failures: self.failures,
            depth_profile,
            nodes,
            principal_variations,
        }
    }

    /// Runs up to `iterations` search iterations (stopping early if the
    /// space is exhausted) and returns the number of *new* traversals
    /// discovered.
    pub fn run(&mut self, iterations: usize) -> Result<usize, SimError> {
        let mut new = 0;
        for _ in 0..iterations {
            match self.step()? {
                StepOutcome::Explored { new: true, .. } => new += 1,
                StepOutcome::Explored { new: false, .. }
                | StepOutcome::Quarantined
                | StepOutcome::Pruned => {}
                StepOutcome::Exhausted => break,
            }
        }
        Ok(new)
    }

    /// Executes one selection → expansion → rollout → backpropagation
    /// iteration.
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        // `iterations` is pre-increment here, so iterations 1, 1+every,
        // 1+2·every, … are the sampled ones (both for tracing and for
        // event emission; the two samplers are independent).
        let pre_iter = self.iterations;
        let live = !self.is_exhausted();
        let trace_sampled = match &self.trace {
            Some((_, every)) => live && pre_iter.is_multiple_of(*every as u64),
            None => false,
        };
        let events_sampled = match &self.events {
            Some((sink, every)) => {
                live && sink.is_enabled() && pre_iter.is_multiple_of(*every as u64)
            }
            None => false,
        };
        if trace_sampled {
            if let Some((lane, _)) = &mut self.trace {
                lane.enter("mcts-iter");
            }
        }
        let out = self.step_impl();
        let outcome_name = match &out {
            Ok(StepOutcome::Explored { new: true, .. }) => "new",
            Ok(StepOutcome::Explored { new: false, .. }) => "repeat",
            Ok(StepOutcome::Exhausted) => "exhausted",
            Ok(StepOutcome::Quarantined) => "quarantined",
            Ok(StepOutcome::Pruned) => "pruned",
            Err(_) => "error",
        };
        if trace_sampled {
            if let Some((lane, _)) = &mut self.trace {
                lane.annotate("iteration", self.iterations);
                lane.annotate("unique", self.records.len());
                lane.annotate("tree_nodes", self.nodes.len());
                lane.annotate("outcome", outcome_name);
                lane.exit();
            }
        }
        if events_sampled {
            if let Some((sink, _)) = &self.events {
                sink.emit(
                    "mcts-iter",
                    &[
                        ("iteration", self.iterations.into()),
                        ("unique", self.records.len().into()),
                        ("tree_nodes", self.nodes.len().into()),
                        ("max_depth", self.max_depth.into()),
                        ("best_s", self.nodes[0].t_min.into()),
                        ("outcome", outcome_name.into()),
                    ],
                );
            }
        }
        out
    }

    fn step_impl(&mut self) -> Result<StepOutcome, SimError> {
        if self.is_exhausted() {
            return Ok(StepOutcome::Exhausted);
        }
        self.iterations += 1;

        let mut prefix = self.space.empty_prefix();
        let mut path: Vec<NodeId> = vec![0];
        let mut node: NodeId = 0;

        // Selection: descend while every eligible child exists, has a
        // rollout, and at least one is not fully explored.
        loop {
            let elig = self.space.eligible(&prefix);
            if elig.is_empty() {
                break; // reached a complete traversal
            }
            // Quarantined subtrees are fully explored with zero visits;
            // they don't count as unvisited (nothing left to measure).
            let unvisited_exists = elig.iter().any(|&p| {
                self.nodes[node]
                    .child(p)
                    .is_none_or(|c| self.nodes[c].n == 0 && !self.nodes[c].fully_explored)
            });
            if unvisited_exists {
                break;
            }
            // A node on the selection path is never fully explored (the
            // rule below assigns −∞ to explored subtrees), so at least one
            // selectable child exists.
            let best = self
                .select_child(node, &elig)
                .expect("non-fully-explored node has a selectable child");
            let child = self.nodes[node].child(best).expect("selected child exists");
            self.space.apply(&mut prefix, best);
            path.push(child);
            node = child;
        }

        // Expansion: materialize one zero-rollout child (if the selected
        // node is not itself a complete traversal).
        {
            let elig = self.space.eligible(&prefix);
            if !elig.is_empty() {
                let candidates: Vec<Placement> = elig
                    .iter()
                    .copied()
                    .filter(|&p| {
                        self.nodes[node]
                            .child(p)
                            .is_none_or(|c| self.nodes[c].n == 0 && !self.nodes[c].fully_explored)
                    })
                    .collect();
                let pick = candidates[self.rng.gen_range(0..candidates.len())];
                let child = self.get_or_create_child(node, pick, &mut prefix);
                path.push(child);
                node = child;
                // Static prune: a rejected prefix dooms every completion,
                // so retire the freshly-expanded subtree before spending a
                // rollout on it. (The serial `mark_fully_explored` only
                // propagates; the leaf flag is set explicitly.)
                if let Some(hook) = &self.prune {
                    if hook(&prefix) {
                        self.nodes[node].fully_explored = true;
                        self.mark_fully_explored(&path);
                        self.pruned += 1;
                        return Ok(StepOutcome::Pruned);
                    }
                }
            }
        }

        // Rollout: randomly complete the prefix, materializing nodes.
        let mut rollout_len = 0usize;
        while prefix.len() < self.space.num_ops() {
            let elig = self.space.eligible(&prefix);
            let pick = elig[self.rng.gen_range(0..elig.len())];
            let child = self.get_or_create_child(node, pick, &mut prefix);
            path.push(child);
            node = child;
            rollout_len += 1;
        }

        let traversal = Traversal {
            steps: prefix.steps().to_vec(),
        };
        let hash = traversal.canonical_hash();

        // A rollout can regenerate a traversal that already failed; skip
        // it without re-evaluating or consuming another failure credit.
        if self
            .failed
            .get(&hash)
            .into_iter()
            .flatten()
            .any(|t| *t == traversal)
        {
            self.mark_fully_explored(&path);
            return Ok(StepOutcome::Quarantined);
        }

        let found = self
            .seen
            .get(&hash)
            .into_iter()
            .flatten()
            .copied()
            .find(|&idx| self.records[idx].traversal == traversal);
        let (record_idx, new) = match found {
            Some(idx) => (idx, false),
            None => {
                // Seeded by the traversal's identity (not the discovery
                // index): the measurement is the same wherever and
                // whenever this traversal is rolled out, which is what
                // makes root-parallel search merges and the shared
                // evaluation cache coherent.
                let outcome = self
                    .eval
                    .evaluate(&traversal, eval_seed(self.cfg.seed, &traversal));
                let result = match outcome {
                    Ok(r) => r,
                    Err(e) => {
                        if self.failures >= self.cfg.max_failures {
                            return Err(e);
                        }
                        self.failures += 1;
                        self.failed.entry(hash).or_default().push(traversal);
                        // The terminal node is fully explored at
                        // creation; propagating that up retires the
                        // poisoned subtree so exhaustion accounting
                        // still converges.
                        self.mark_fully_explored(&path);
                        return Ok(StepOutcome::Quarantined);
                    }
                };
                let idx = self.records.len();
                self.records.push(ExploredRecord { traversal, result });
                self.seen.entry(hash).or_default().push(idx);
                (idx, true)
            }
        };
        let t = self.records[record_idx].result.time();

        // Backpropagation: stats on every node along the path, then
        // fully-explored marking bottom-up.
        for &id in &path {
            let n = &mut self.nodes[id];
            n.n += 1;
            n.t_min = n.t_min.min(t);
            n.t_max = n.t_max.max(t);
            n.t_sum += t;
        }
        self.mark_fully_explored(&path);

        self.max_depth = self.max_depth.max(path.len() - 1);
        self.telemetry.push(TelemetryRow {
            iteration: self.iterations,
            unique_traversals: self.records.len(),
            best_time: self.nodes[0].t_min,
            worst_time: self.nodes[0].t_max,
            tree_nodes: self.nodes.len(),
            max_depth: self.max_depth,
            rollout_len,
        });

        Ok(StepOutcome::Explored {
            record: record_idx,
            new,
        })
    }

    /// Bottom-up fully-explored propagation along the iteration path.
    /// A node is fully explored once all `num_actions` children exist and
    /// are fully explored; leaves are fully explored at creation.
    fn mark_fully_explored(&mut self, path: &[NodeId]) {
        for i in (1..path.len()).rev() {
            let child = path[i];
            let parent = path[i - 1];
            if self.nodes[child].fully_explored && !self.nodes[child].counted_in_parent {
                self.nodes[child].counted_in_parent = true;
                self.nodes[parent].fully_explored_children += 1;
            }
            let p = &self.nodes[parent];
            if !p.fully_explored
                && p.children.len() == p.num_actions
                && p.fully_explored_children == p.num_actions
            {
                self.nodes[parent].fully_explored = true;
            }
        }
    }

    /// The explore/exploit selection rule.
    fn select_child(&self, parent: NodeId, elig: &[Placement]) -> Option<Placement> {
        let pn = &self.nodes[parent];
        let parent_range = pn.t_max - pn.t_min;
        let mut best: Option<(f64, Placement)> = None;
        for &p in elig {
            let c = pn
                .child(p)
                .expect("selection only runs with all children visited");
            let ch = &self.nodes[c];
            let explore = if ch.fully_explored {
                f64::NEG_INFINITY
            } else {
                self.cfg.exploration_c * ((pn.n as f64).ln() / ch.n as f64).sqrt()
            };
            let exploit = match self.cfg.exploitation {
                Exploitation::CoverageRange => {
                    if ch.n >= 2 && pn.n >= 2 && parent_range > 0.0 {
                        ((ch.t_max - ch.t_min) / parent_range).clamp(0.0, 1.0)
                    } else {
                        1.0
                    }
                }
                Exploitation::MeanTime => {
                    let root = &self.nodes[0];
                    let root_range = root.t_max - root.t_min;
                    if ch.n >= 1 && root_range > 0.0 {
                        let mean = ch.t_sum / ch.n as f64;
                        ((root.t_max - mean) / root_range).clamp(0.0, 1.0)
                    } else {
                        1.0
                    }
                }
                Exploitation::Constant => 1.0,
            };
            let value = explore + exploit;
            if best.is_none_or(|(bv, _)| value > bv) && value > f64::NEG_INFINITY {
                best = Some((value, p));
            }
        }
        best.map(|(_, p)| p)
    }

    fn get_or_create_child(
        &mut self,
        parent: NodeId,
        p: Placement,
        prefix: &mut dr_dag::Prefix,
    ) -> NodeId {
        if let Some(c) = self.nodes[parent].child(p) {
            self.space.apply(prefix, p);
            return c;
        }
        self.space.apply(prefix, p);
        let num_actions = self.space.eligible(prefix).len();
        let id = self.nodes.len();
        self.nodes.push(Node::new(num_actions));
        self.nodes[parent].children.push((p, id));
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::SimEvaluator;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_sim::{BenchConfig, Platform, TableWorkload};

    fn small_space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    fn small_workload() -> TableWorkload {
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 5e-5);
        w
    }

    #[test]
    fn search_exhausts_a_small_space_and_finds_all_traversals() {
        let space = small_space();
        let total = space.count_traversals() as usize;
        let w = small_workload();
        let platform = Platform::perlmutter_like().noiseless();
        let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let mut mcts = Mcts::new(&space, eval, MctsConfig::default());
        let new = mcts.run(10_000).unwrap();
        assert_eq!(new, total, "all {total} traversals must be discovered");
        assert!(mcts.is_exhausted());
        assert_eq!(mcts.records().len(), total);
        // Exhausted searches are no-ops.
        assert_eq!(mcts.step().unwrap(), StepOutcome::Exhausted);
    }

    #[test]
    fn records_are_unique_traversals() {
        let space = small_space();
        let w = small_workload();
        let platform = Platform::perlmutter_like().noiseless();
        let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let mut mcts = Mcts::new(
            &space,
            eval,
            MctsConfig {
                seed: 3,
                ..Default::default()
            },
        );
        mcts.run(50).unwrap();
        let set: std::collections::HashSet<_> =
            mcts.records().iter().map(|r| &r.traversal).collect();
        assert_eq!(set.len(), mcts.records().len());
        for r in mcts.records() {
            space.validate(&r.traversal).unwrap();
        }
    }

    #[test]
    fn search_is_seed_deterministic() {
        let space = small_space();
        let w = small_workload();
        let platform = Platform::perlmutter_like();
        let run = |seed| {
            let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
            let mut mcts = Mcts::new(
                &space,
                eval,
                MctsConfig {
                    seed,
                    ..Default::default()
                },
            );
            mcts.run(20).unwrap();
            mcts.into_records()
                .into_iter()
                .map(|r| (r.traversal, r.result.time()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    fn fake_result(t: f64) -> BenchResult {
        BenchResult {
            measurements: vec![t],
            percentiles: dr_sim::Percentiles {
                p01: t,
                p10: t,
                p50: t,
                p90: t,
                p99: t,
            },
        }
    }

    #[test]
    fn prune_everything_retires_the_root_without_evaluating() {
        // A hook that condemns every prefix prunes each root child at its
        // first expansion: the search exhausts with zero records and zero
        // evaluator calls.
        let space = small_space();
        let calls = std::cell::Cell::new(0usize);
        let eval = |t: &Traversal, _seed: u64| -> Result<BenchResult, SimError> {
            calls.set(calls.get() + 1);
            Ok(fake_result(1.0 + t.canonical_hash() as f64 * 1e-20))
        };
        let mut mcts = Mcts::new(&space, eval, MctsConfig::default());
        mcts.set_prune(std::sync::Arc::new(|_: &Prefix| true));
        let new = mcts.run(1_000).unwrap();
        assert_eq!(new, 0, "no traversal survives a prune-everything hook");
        assert!(mcts.is_exhausted());
        assert_eq!(
            mcts.pruned(),
            space.eligible(&space.empty_prefix()).len() as u64,
            "exactly one prune per root child"
        );
        assert!(mcts.records().is_empty());
        assert_eq!(calls.get(), 0, "pruned subtrees are never evaluated");
    }

    #[test]
    fn selective_prune_still_exhausts_the_remainder() {
        let space = small_space();
        let first = space.eligible(&space.empty_prefix())[0];
        let eval = |t: &Traversal, _seed: u64| -> Result<BenchResult, SimError> {
            Ok(fake_result(1.0 + t.canonical_hash() as f64 * 1e-20))
        };
        let mut mcts = Mcts::new(&space, eval, MctsConfig::default());
        mcts.set_prune(std::sync::Arc::new(move |prefix: &Prefix| {
            prefix.steps().first() == Some(&first)
        }));
        mcts.run(10_000).unwrap();
        assert!(mcts.is_exhausted());
        assert_eq!(mcts.pruned(), 1, "only the condemned opening is cut");
        let total = space.count_traversals() as usize;
        assert!(!mcts.records().is_empty());
        assert!(
            mcts.records().len() < total,
            "the pruned subtree's traversals stay unexplored"
        );
        for r in mcts.records() {
            assert_ne!(r.traversal.steps[0], first);
        }
    }

    #[test]
    fn max_failures_quarantines_poisoned_traversals_and_continues() {
        let space = small_space();
        let all: Vec<Traversal> = space.enumerate().collect();
        let poisoned = all[0].clone();
        let eval = |t: &Traversal, _seed: u64| -> Result<BenchResult, SimError> {
            if *t == poisoned {
                Err(SimError::Panicked {
                    detail: "injected".into(),
                })
            } else {
                Ok(fake_result(1.0 + t.canonical_hash() as f64 * 1e-20))
            }
        };
        let mut mcts = Mcts::new(
            &space,
            eval,
            MctsConfig {
                max_failures: 1,
                ..Default::default()
            },
        );
        let new = mcts.run(10_000).unwrap();
        assert_eq!(new, all.len() - 1, "all healthy traversals discovered");
        assert!(mcts.is_exhausted(), "quarantine must not stall exhaustion");
        assert_eq!(mcts.failures(), 1);
        assert!(mcts.records().iter().all(|r| r.traversal != poisoned));
    }

    #[test]
    fn failures_beyond_the_cap_propagate() {
        let space = small_space();
        let eval = |_: &Traversal, _: u64| -> Result<BenchResult, SimError> {
            Err(SimError::Panicked {
                detail: "always".into(),
            })
        };
        // Default max_failures = 0: the very first error is fatal,
        // exactly the pre-chaos behavior.
        let mut mcts = Mcts::new(&space, eval, MctsConfig::default());
        assert!(mcts.run(100).is_err());
    }

    #[test]
    fn quarantine_tolerates_an_entirely_poisoned_space() {
        let space = small_space();
        let total = space.count_traversals() as usize;
        let eval = |_: &Traversal, _: u64| -> Result<BenchResult, SimError> {
            Err(SimError::Panicked {
                detail: "always".into(),
            })
        };
        let mut mcts = Mcts::new(
            &space,
            eval,
            MctsConfig {
                max_failures: total,
                ..Default::default()
            },
        );
        let new = mcts.run(10_000).unwrap();
        assert_eq!(new, 0);
        assert!(mcts.is_exhausted());
        assert_eq!(mcts.failures(), total);
        assert!(mcts.records().is_empty());
    }

    #[test]
    fn sampled_tracing_records_every_nth_iteration_without_perturbing_search() {
        let space = small_space();
        let w = small_workload();
        let platform = Platform::perlmutter_like().noiseless();
        let run = |trace: Option<(&dr_trace::Tracer, usize)>| {
            let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
            let mut mcts = Mcts::new(&space, eval, MctsConfig::default());
            if let Some((tracer, every)) = trace {
                mcts.set_trace(tracer.lane("mcts-0"), every);
            }
            mcts.run(9).unwrap();
            mcts.into_records()
                .into_iter()
                .map(|r| (r.traversal, r.result.time()))
                .collect::<Vec<_>>()
        };
        let tracer = dr_trace::Tracer::new();
        let traced = run(Some((&tracer, 4)));
        let plain = run(None);
        assert_eq!(traced, plain, "tracing must not change the search");
        let snap = tracer.snapshot();
        let iters: Vec<String> = snap
            .spans
            .iter()
            .filter(|s| s.name == "mcts-iter")
            .map(|s| {
                s.notes
                    .iter()
                    .find(|(k, _)| k == "iteration")
                    .unwrap()
                    .1
                    .clone()
            })
            .collect();
        assert_eq!(iters, vec!["1", "5", "9"], "iterations 1, 1+4, 1+8 sampled");
        assert!(snap
            .spans
            .iter()
            .all(|s| s.name != "mcts-iter" || s.end_s.is_some()));
    }

    #[test]
    fn iterations_count_rollouts_not_discoveries() {
        let space = small_space();
        let w = small_workload();
        let platform = Platform::perlmutter_like().noiseless();
        let eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let mut mcts = Mcts::new(&space, eval, MctsConfig::default());
        for _ in 0..30 {
            let _ = mcts.step().unwrap();
        }
        assert!(mcts.iterations() <= 30);
        assert!(mcts.records().len() <= 30);
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;
    use crate::eval::SimEvaluator;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_sim::{BenchConfig, Platform, TableWorkload};

    fn space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    #[test]
    fn one_row_per_iteration_with_monotone_progress() {
        let sp = space();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        let platform = Platform::perlmutter_like().noiseless();
        let eval = SimEvaluator::new(&sp, &w, &platform, BenchConfig::quick());
        let mut mcts = Mcts::new(&sp, eval, MctsConfig::default());
        mcts.run(25).unwrap();
        let telemetry = mcts.telemetry();
        assert_eq!(telemetry.len() as u64, mcts.iterations());
        let rows = telemetry.rows();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.iteration, i as u64 + 1);
            assert!(r.best_time <= r.worst_time);
            assert!(r.tree_nodes >= 1);
            assert!(r.max_depth <= sp.num_ops());
            assert!(r.rollout_len <= sp.num_ops());
        }
        for w in rows.windows(2) {
            assert!(w[1].unique_traversals >= w[0].unique_traversals);
            assert!(w[1].tree_nodes >= w[0].tree_nodes);
            assert!(w[1].best_time <= w[0].best_time);
            assert!(w[1].worst_time >= w[0].worst_time);
        }
        // Incremental max depth agrees with the full-tree walk.
        assert_eq!(rows.last().unwrap().max_depth, mcts.stats().max_depth);
    }

    #[test]
    fn exhausted_steps_do_not_add_rows() {
        let sp = space();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        let platform = Platform::perlmutter_like().noiseless();
        let eval = SimEvaluator::new(&sp, &w, &platform, BenchConfig::quick());
        let mut mcts = Mcts::new(&sp, eval, MctsConfig::default());
        mcts.run(10_000).unwrap();
        assert!(mcts.is_exhausted());
        let rows_before = mcts.telemetry().len();
        mcts.step().unwrap();
        assert_eq!(mcts.telemetry().len(), rows_before);
    }

    #[test]
    fn evaluator_stats_survive_into_parts() {
        let sp = space();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        let platform = Platform::perlmutter_like().noiseless();
        let eval = SimEvaluator::new(&sp, &w, &platform, BenchConfig::quick());
        let mut mcts = Mcts::new(&sp, eval, MctsConfig::default());
        mcts.run(10).unwrap();
        assert!(Evaluator::sim_stats(&mcts.eval).is_some());
        let (records, telemetry, eval) = mcts.into_parts();
        let stats = eval.stats();
        assert!(stats.runs > 0, "each evaluation runs simulator samples");
        assert!(stats.instructions > 0);
        assert!(!records.is_empty());
        assert!(!telemetry.is_empty());
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::eval::SimEvaluator;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_sim::{BenchConfig, Platform, TableWorkload};

    fn space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    #[test]
    fn every_exploitation_policy_exhausts_the_space() {
        let sp = space();
        let total = sp.count_traversals() as usize;
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        let platform = Platform::perlmutter_like().noiseless();
        for policy in [
            Exploitation::CoverageRange,
            Exploitation::MeanTime,
            Exploitation::Constant,
        ] {
            let eval = SimEvaluator::new(&sp, &w, &platform, BenchConfig::quick());
            let cfg = MctsConfig {
                exploitation: policy,
                ..Default::default()
            };
            let mut mcts = Mcts::new(&sp, eval, cfg);
            let new = mcts.run(10_000).unwrap();
            assert_eq!(new, total, "{policy:?} must still cover the space");
            assert!(mcts.is_exhausted());
        }
    }

    #[test]
    fn policies_explore_in_different_orders() {
        let sp = space();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        let platform = Platform::perlmutter_like().noiseless();
        let order = |policy| {
            let eval = SimEvaluator::new(&sp, &w, &platform, BenchConfig::quick());
            let cfg = MctsConfig {
                exploitation: policy,
                seed: 4,
                ..Default::default()
            };
            let mut mcts = Mcts::new(&sp, eval, cfg);
            mcts.run(8).unwrap();
            mcts.into_records()
                .into_iter()
                .map(|r| r.traversal)
                .collect::<Vec<_>>()
        };
        // Not guaranteed in general, but with this seed the paper policy
        // and classic UCT provably diverge on this space.
        assert_ne!(
            order(Exploitation::CoverageRange),
            order(Exploitation::MeanTime)
        );
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::eval::SimEvaluator;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_sim::{BenchConfig, Platform, TableWorkload};

    #[test]
    fn stats_reflect_search_progress() {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        let platform = Platform::perlmutter_like().noiseless();
        let eval = SimEvaluator::new(&sp, &w, &platform, BenchConfig::quick());
        let mut mcts = Mcts::new(&sp, eval, MctsConfig::default());
        let s0 = mcts.stats();
        assert_eq!(s0.rollouts, 0);
        assert_eq!(s0.nodes, 1);
        mcts.run(10_000).unwrap();
        let s = mcts.stats();
        assert_eq!(
            s.max_depth,
            sp.num_ops(),
            "exhausted tree reaches the leaves"
        );
        assert!(s.fully_explored >= 1);
        assert!(s.t_max >= s.t_min && s.t_min > 0.0);
        assert!(s.rollouts >= sp.count_traversals() as u64);
    }

    #[test]
    fn snapshot_exports_hot_nodes_and_principal_variations() {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        let platform = Platform::perlmutter_like().noiseless();
        let eval = SimEvaluator::new(&sp, &w, &platform, BenchConfig::quick());
        let mut mcts = Mcts::new(&sp, eval, MctsConfig::default());
        mcts.run(10_000).unwrap();
        let snap = mcts.snapshot(3, 5);
        assert_eq!(snap.stats, mcts.stats());
        assert!(snap.exhausted);
        assert_eq!(snap.iterations, mcts.iterations());
        // The depth profile covers the whole tree and starts at the root.
        assert_eq!(snap.depth_profile[0], 1);
        assert_eq!(snap.depth_profile.iter().sum::<usize>(), mcts.tree_size());
        assert_eq!(snap.depth_profile.len() - 1, snap.stats.max_depth);
        // Hot nodes are capped, visit-sorted, and lead with the root.
        assert_eq!(snap.nodes.len(), 5.min(mcts.tree_size()));
        assert!(snap.nodes[0].action.is_none(), "root is most visited");
        assert_eq!(snap.nodes[0].visits, snap.stats.rollouts);
        for pair in snap.nodes.windows(2) {
            assert!(pair[0].visits >= pair[1].visits);
        }
        for n in &snap.nodes[1..] {
            assert!(n.action.is_some(), "non-root nodes recover their edge");
        }
        // PVs: capped at top_k, visit-ranked, each a valid full traversal
        // of this exhausted space.
        assert!(!snap.principal_variations.is_empty());
        assert!(snap.principal_variations.len() <= 3);
        for pair in snap.principal_variations.windows(2) {
            assert!(pair[0].visits >= pair[1].visits);
        }
        for pv in &snap.principal_variations {
            assert_eq!(pv.steps.len(), sp.num_ops());
            sp.validate(&Traversal {
                steps: pv.steps.clone(),
            })
            .unwrap();
            assert!(pv.t_min >= snap.stats.t_min);
        }
        // Deterministic export.
        let again = mcts.snapshot(3, 5);
        assert_eq!(again.nodes, snap.nodes);
        assert_eq!(again.principal_variations, snap.principal_variations);
    }

    #[test]
    fn empty_tree_snapshot_is_well_formed() {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let eval = |_: &Traversal, _: u64| -> Result<BenchResult, SimError> { unreachable!() };
        let mcts = Mcts::new(&sp, eval, MctsConfig::default());
        let snap = mcts.snapshot(3, 10);
        assert_eq!(snap.depth_profile, vec![1]);
        assert_eq!(snap.nodes.len(), 1);
        assert!(snap.principal_variations.is_empty());
        assert!(!snap.exhausted);
    }
}

#[cfg(test)]
mod event_tests {
    use super::*;
    use crate::eval::SimEvaluator;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_obs::events::SharedBuf;
    use dr_obs::json;
    use dr_sim::{BenchConfig, Platform, TableWorkload};

    #[test]
    fn sampled_events_mirror_tracing_without_perturbing_search() {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 1e-5);
        let platform = Platform::perlmutter_like().noiseless();
        let run = |sink: Option<EventSink>| {
            let eval = SimEvaluator::new(&sp, &w, &platform, BenchConfig::quick());
            let mut mcts = Mcts::new(&sp, eval, MctsConfig::default());
            if let Some(s) = sink {
                mcts.set_events(s, 4);
            }
            mcts.run(9).unwrap();
            mcts.into_records()
                .into_iter()
                .map(|r| (r.traversal, r.result.time()))
                .collect::<Vec<_>>()
        };
        let buf = SharedBuf::new();
        let sink = EventSink::new("run-evt").with_writer(Box::new(buf.clone()));
        let observed = run(Some(sink));
        let silent = run(None);
        assert_eq!(observed, silent, "event emission must not change search");
        let text = buf.contents();
        let iters: Vec<u64> = text
            .lines()
            .map(|l| {
                let v = json::parse(l).unwrap();
                assert_eq!(
                    v.get("kind").and_then(json::Value::as_str),
                    Some("mcts-iter")
                );
                assert!(v.get("outcome").and_then(json::Value::as_str).is_some());
                v.get("iteration").and_then(json::Value::as_u64).unwrap()
            })
            .collect();
        assert_eq!(iters, vec![1, 5, 9], "iterations 1, 1+4, 1+8 sampled");
    }
}
