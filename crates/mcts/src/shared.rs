//! Shared-tree parallel MCTS with virtual loss (search v2).
//!
//! [`Mcts`](crate::Mcts) parallelizes by *root replication*: each worker
//! owns a private tree and a decorrelated rollout seed, and the record
//! sets are merged afterwards. This module instead keeps **one** tree in
//! a flat arena and parallelizes the expensive part — evaluation — with
//! batched leaf parallelism:
//!
//! 1. **Assembly** ([`SharedMcts::select_batch`]): the coordinator runs
//!    selection/expansion/rollout sequentially, marking every node on a
//!    chosen path with a *virtual loss*. Virtual loss makes a pending
//!    path look recently-visited-and-slow, so consecutive descents
//!    diverge toward different leaves without needing decorrelated
//!    seeds. Rollouts that regenerate an already-measured traversal
//!    backpropagate the cached time immediately; rollouts that hit a
//!    quarantined traversal retire their subtree immediately; everything
//!    else becomes a [`PendingEval`].
//! 2. **Evaluation** (the caller): the pending traversals are measured in
//!    parallel — each carries its deterministic `eval_seed`, so results
//!    are identical no matter which worker measures them.
//! 3. **Commit** ([`SharedMcts::commit`]): results are folded back in
//!    batch order — records appended, statistics backpropagated, virtual
//!    losses released, failures quarantined exactly like the serial
//!    engine.
//!
//! Selection is PUCT-style: `Q_eff + c · prior · √N_parent / (1 + n_eff)`
//! with `n_eff = n + virtual_loss`, `Q_eff = Q · n / n_eff` (so a node
//! under pure virtual loss scores only its prior-weighted exploration
//! term), and a uniform policy prior `1 / |eligible|` — the prior is a
//! *slot*: a learned policy can replace the uniform distribution without
//! touching the search. `Q` itself is the serial engine's exploitation
//! signal (coverage range by default), so at batch width 1 with no
//! pending evaluations the descent degenerates to the serial rule's
//! shape.
//!
//! **Determinism policy.** Evaluations are keyed by
//! [`eval_seed`]`(cfg.seed, traversal)` — a pure function of the
//! traversal — so although batch width changes *which* iteration
//! discovers a traversal, it never changes the traversal's measurement.
//! At exhaustion every non-quarantined traversal has been measured
//! exactly once, hence the record *set* is identical across batch widths
//! and equal to the serial engine's. Callers that need bit-identical
//! record *lists* across thread counts sort by
//! [`Traversal::canonical_hash`] (see `dr-core`'s shared explore
//! backend).
//!
//! The arena recycles nodes through a free list: [`SharedMcts::rebase`]
//! re-roots the tree at one of the root's children (the tree-reuse idiom
//! of game-playing engines — keep the chosen subtree, recycle the rest),
//! after which new allocations reuse the released slots instead of
//! growing the arena.

use crate::telemetry::{SearchTelemetry, TelemetryRow};
use crate::tree::{
    Exploitation, ExploredRecord, MctsConfig, NodeStat, PrincipalVariation, PruneHook,
    TreeSnapshot, TreeStats,
};
use dr_dag::{eval_seed, DecisionSpace, Placement, Traversal};
use dr_obs::events::EventSink;
use dr_sim::{BenchResult, SimError};
use dr_trace::Lane;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

type NodeId = usize;

/// One arena slot. Identical to the serial engine's node plus the
/// virtual-loss counter; kept flat (no boxing, index links only) so
/// recycling a node is a field reset, never an allocation.
struct Node {
    children: Vec<(Placement, NodeId)>,
    num_actions: usize,
    fully_explored_children: usize,
    fully_explored: bool,
    counted_in_parent: bool,
    n: u64,
    /// Outstanding virtual losses: rollouts through this node that have
    /// been selected but not yet committed (or cleared).
    vl: u32,
    t_min: f64,
    t_max: f64,
    t_sum: f64,
}

impl Node {
    // Unlike the serial engine, a leaf is NOT born fully explored: the
    // serial engine resolves every leaf in the same iteration that
    // creates it, but here a leaf stays *pending* until its batch
    // commits — were it marked explored at birth, a descent arriving
    // while it is pending would find no selectable child. Leaves flip to
    // fully explored at resolution time (commit or inline resolution).
    fn fresh(num_actions: usize) -> Self {
        Node {
            children: Vec::new(),
            num_actions,
            fully_explored_children: 0,
            fully_explored: false,
            counted_in_parent: false,
            n: 0,
            vl: 0,
            t_min: f64::INFINITY,
            t_max: f64::NEG_INFINITY,
            t_sum: 0.0,
        }
    }

    /// Resets the slot for reuse, keeping the child vector's allocation.
    fn clear(&mut self, num_actions: usize) {
        self.children.clear();
        self.num_actions = num_actions;
        self.fully_explored_children = 0;
        self.fully_explored = false;
        self.counted_in_parent = false;
        self.n = 0;
        self.vl = 0;
        self.t_min = f64::INFINITY;
        self.t_max = f64::NEG_INFINITY;
        self.t_sum = 0.0;
    }

    fn child(&self, p: Placement) -> Option<NodeId> {
        self.children
            .iter()
            .find(|&&(q, _)| q == p)
            .map(|&(_, id)| id)
    }
}

/// Bookkeeping of one rollout that produced (or regenerated) a pending
/// traversal.
#[derive(Debug, Clone, Copy)]
struct RolloutMeta {
    iteration: u64,
    rollout_len: usize,
}

/// One traversal awaiting evaluation. The caller measures
/// [`PendingEval::traversal`] with [`PendingEval::eval_seed`] and hands
/// the result to [`SharedMcts::commit`] at the same batch position.
#[derive(Debug, Clone)]
pub struct PendingEval {
    /// The complete traversal to measure.
    pub traversal: Traversal,
    /// Deterministic evaluation seed (`eval_seed(cfg.seed, traversal)`).
    pub eval_seed: u64,
    hash: u64,
    /// The unique root-to-leaf node path of this traversal (children are
    /// keyed by placement, so equal traversals share one path).
    path: Vec<NodeId>,
    /// One entry per rollout that landed on this traversal within the
    /// batch (duplicates share the evaluation but each counts as an
    /// iteration and backpropagates once).
    rollouts: Vec<RolloutMeta>,
}

/// The output of one assembly pass: traversals to evaluate plus the
/// iterations already resolved inline.
#[derive(Debug, Default)]
pub struct Batch {
    /// Distinct traversals awaiting evaluation, in selection order.
    pub pending: Vec<PendingEval>,
    /// Iterations resolved during assembly without an evaluation: cached
    /// repeats (backpropagated immediately) and quarantined regenerations
    /// (retired immediately).
    pub immediates: usize,
    /// Total iterations this assembly consumed (`immediates` plus one per
    /// rollout behind every pending entry).
    pub iterations: usize,
}

/// The shared-tree search state. One instance is owned by the
/// coordinating thread; workers only ever see [`PendingEval`]s.
pub struct SharedMcts<'a> {
    space: &'a DecisionSpace,
    cfg: MctsConfig,
    nodes: Vec<Node>,
    /// Recycled arena slots, reused LIFO by [`SharedMcts::alloc`].
    free: Vec<NodeId>,
    root: NodeId,
    /// Placements fixed by [`SharedMcts::rebase`], applied before every
    /// descent (empty in normal operation).
    base: Vec<Placement>,
    records: Vec<ExploredRecord>,
    /// Canonical-hash index into `records` (collision-tolerant: values
    /// are candidates, equality is re-checked).
    seen: HashMap<u64, Vec<usize>>,
    /// Canonical-hash index of quarantined traversals.
    failed: HashMap<u64, Vec<Traversal>>,
    failures: usize,
    rng: SmallRng,
    iterations: u64,
    /// Rollouts that regenerated an already-measured traversal (seen-map
    /// hits plus in-batch duplicates) — the shared-tree analogue of
    /// evaluation-cache hits.
    repeats: u64,
    telemetry: SearchTelemetry,
    max_depth: usize,
    trace: Option<(Lane, usize)>,
    events: Option<(EventSink, usize)>,
    /// Static prefix filter set by [`SharedMcts::set_prune`].
    prune: Option<PruneHook>,
    /// Subtrees retired by the prune hook.
    pruned: u64,
}

impl<'a> SharedMcts<'a> {
    /// Creates a shared-tree search over `space`.
    pub fn new(space: &'a DecisionSpace, cfg: MctsConfig) -> Self {
        let root_actions = space.eligible(&space.empty_prefix()).len();
        SharedMcts {
            space,
            cfg,
            nodes: vec![Node::fresh(root_actions)],
            free: Vec::new(),
            root: 0,
            base: Vec::new(),
            records: Vec::new(),
            seen: HashMap::new(),
            failed: HashMap::new(),
            failures: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            iterations: 0,
            repeats: 0,
            telemetry: SearchTelemetry::new(),
            max_depth: 0,
            trace: None,
            events: None,
            prune: None,
            pruned: 0,
        }
    }

    /// Enables sampled iteration tracing (same schedule as the serial
    /// engine: iterations 1, 1+`every`, …). Pending iterations record
    /// their span at commit time, so spans can appear out of iteration
    /// order within a batch.
    pub fn set_trace(&mut self, lane: Lane, every: usize) {
        self.trace = Some((lane, every.max(1)));
    }

    /// Enables sampled `mcts-iter` event emission (same schedule and
    /// fields as the serial engine; same ordering caveat as
    /// [`SharedMcts::set_trace`]).
    pub fn set_events(&mut self, sink: EventSink, every: usize) {
        self.events = Some((sink, every.max(1)));
    }

    /// Installs a static prune hook (same contract as the serial
    /// engine's `Mcts::set_prune`): descents whose expanded prefix the
    /// hook rejects retire their subtree without an evaluation slot and
    /// count as batch immediates.
    pub fn set_prune(&mut self, hook: PruneHook) {
        self.prune = Some(hook);
    }

    /// Subtrees retired by the prune hook so far.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// All explored implementations, in commit order.
    pub fn records(&self) -> &[ExploredRecord] {
        &self.records
    }

    /// Consumes the search and returns the explored records.
    pub fn into_records(self) -> Vec<ExploredRecord> {
        self.records
    }

    /// Consumes the search, returning records and telemetry.
    pub fn into_parts(self) -> (Vec<ExploredRecord>, SearchTelemetry) {
        (self.records, self.telemetry)
    }

    /// Per-iteration telemetry rows (one per explored rollout; pending
    /// rollouts append at commit, so rows can be out of iteration order
    /// within a batch).
    pub fn telemetry(&self) -> &SearchTelemetry {
        &self.telemetry
    }

    /// True when every traversal under the current root has been
    /// benchmarked or quarantined.
    pub fn is_exhausted(&self) -> bool {
        self.nodes[self.root].fully_explored
    }

    /// Number of rollouts executed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Distinct traversals quarantined after evaluator errors.
    pub fn failures(&self) -> usize {
        self.failures
    }

    /// Rollouts that regenerated an already-measured traversal.
    pub fn repeats(&self) -> u64 {
        self.repeats
    }

    /// Live (non-recycled) arena nodes.
    pub fn tree_size(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Assembles up to `width` distinct traversals for parallel
    /// evaluation, consuming at most `budget` iterations. Rollouts that
    /// need no evaluation (cached repeats, quarantined regenerations)
    /// are resolved inline and counted in [`Batch::immediates`].
    ///
    /// Every node on a pending path carries one virtual loss per rollout
    /// until [`SharedMcts::commit`] releases it; the caller must commit
    /// the batch (even an all-failure one) before assembling the next.
    ///
    /// Assembly consumes at most `4·width` iterations per call even when
    /// `budget` allows more: near exhaustion every descent funnels into
    /// the few remaining pending paths (virtual loss can only steer
    /// *around* explored subtrees, not conjure unexplored ones), and the
    /// cap bounds that duplicate spinning instead of looping until the
    /// batch fills.
    pub fn select_batch(&mut self, width: usize, budget: u64) -> Batch {
        let width = width.max(1);
        let cap = budget.min(4 * width as u64);
        let mut batch = Batch::default();
        while batch.pending.len() < width && (batch.iterations as u64) < cap && !self.is_exhausted()
        {
            let Some((path, traversal, rollout_len)) = self.descend() else {
                // Pruned descent: the subtree is retired; account for the
                // iteration and move on without an evaluation slot.
                self.iterations += 1;
                batch.iterations += 1;
                batch.immediates += 1;
                let iteration = self.iterations;
                self.observe(iteration, "pruned");
                continue;
            };
            self.iterations += 1;
            batch.iterations += 1;
            let iteration = self.iterations;
            self.max_depth = self.max_depth.max(path.len() - 1);
            let hash = traversal.canonical_hash();

            // Known-failed traversal: retire its subtree immediately,
            // exactly like the serial engine (no record, no stats).
            if self
                .failed
                .get(&hash)
                .into_iter()
                .flatten()
                .any(|t| *t == traversal)
            {
                self.release_virtual_loss(&path, 1);
                self.mark_fully_explored(&path);
                batch.immediates += 1;
                self.observe(iteration, "quarantined");
                continue;
            }

            // Already-measured traversal: backpropagate the cached time
            // now — no evaluation slot needed.
            let found = self
                .seen
                .get(&hash)
                .into_iter()
                .flatten()
                .copied()
                .find(|&idx| self.records[idx].traversal == traversal);
            if let Some(idx) = found {
                let t = self.records[idx].result.time();
                self.release_virtual_loss(&path, 1);
                self.backprop(&path, t, 1);
                self.mark_fully_explored(&path);
                self.repeats += 1;
                batch.immediates += 1;
                self.push_row(iteration, rollout_len);
                self.observe(iteration, "repeat");
                continue;
            }

            // In-batch duplicate: share the pending evaluation. Equal
            // traversals descend the same child edges, so the node path
            // is identical — the extra rollout just deepens the virtual
            // loss and adds one backpropagation at commit.
            if let Some(pe) = batch
                .pending
                .iter_mut()
                .find(|pe| pe.hash == hash && pe.traversal == traversal)
            {
                pe.rollouts.push(RolloutMeta {
                    iteration,
                    rollout_len,
                });
                continue;
            }

            batch.pending.push(PendingEval {
                eval_seed: eval_seed(self.cfg.seed, &traversal),
                traversal,
                hash,
                path,
                rollouts: vec![RolloutMeta {
                    iteration,
                    rollout_len,
                }],
            });
        }
        batch
    }

    /// Folds evaluation `results` (one per [`Batch::pending`] entry, same
    /// order) back into the tree: records appended in batch order,
    /// statistics backpropagated once per rollout, virtual losses
    /// released, failures quarantined under [`MctsConfig::max_failures`].
    /// An error beyond the failure budget propagates immediately (the
    /// search is then poisoned, matching the serial engine's fail-fast).
    pub fn commit(
        &mut self,
        batch: Batch,
        results: Vec<Result<BenchResult, SimError>>,
    ) -> Result<(), SimError> {
        assert_eq!(
            results.len(),
            batch.pending.len(),
            "one result per pending evaluation"
        );
        for (pe, res) in batch.pending.into_iter().zip(results) {
            let count = pe.rollouts.len();
            self.release_virtual_loss(&pe.path, count as u32);
            match res {
                Ok(result) => {
                    let t = result.time();
                    let idx = self.records.len();
                    self.records.push(ExploredRecord {
                        traversal: pe.traversal,
                        result,
                    });
                    self.seen.entry(pe.hash).or_default().push(idx);
                    self.backprop(&pe.path, t, count);
                    self.mark_fully_explored(&pe.path);
                    self.repeats += count as u64 - 1;
                    for (i, meta) in pe.rollouts.iter().enumerate() {
                        self.push_row(meta.iteration, meta.rollout_len);
                        self.observe(meta.iteration, if i == 0 { "new" } else { "repeat" });
                    }
                }
                Err(e) => {
                    if self.failures >= self.cfg.max_failures {
                        return Err(e);
                    }
                    self.failures += 1;
                    self.failed.entry(pe.hash).or_default().push(pe.traversal);
                    self.mark_fully_explored(&pe.path);
                    for meta in &pe.rollouts {
                        self.observe(meta.iteration, "quarantined");
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-roots the tree at the root's child for `p`, recycling the old
    /// root and every sibling subtree into the free list. Returns false
    /// (and changes nothing) when no materialized child matches `p`.
    ///
    /// This is the tree-reuse idiom of game-playing engines: after
    /// committing to an opening decision, the established subtree keeps
    /// its statistics while the rest of the arena becomes reusable
    /// capacity. Must not be called with a batch outstanding (pending
    /// virtual losses reference nodes that would be recycled).
    pub fn rebase(&mut self, p: Placement) -> bool {
        debug_assert_eq!(
            self.nodes[self.root].vl, 0,
            "rebase with a batch outstanding"
        );
        let Some(new_root) = self.nodes[self.root].child(p) else {
            return false;
        };
        let siblings: Vec<NodeId> = self.nodes[self.root]
            .children
            .iter()
            .filter(|&&(q, _)| q != p)
            .map(|&(_, id)| id)
            .collect();
        for s in siblings {
            self.release_subtree(s);
        }
        let old_root = self.root;
        self.nodes[old_root].children.clear();
        self.free.push(old_root);
        self.root = new_root;
        self.nodes[new_root].counted_in_parent = false;
        self.base.push(p);
        true
    }

    /// The placements fixed by successive [`SharedMcts::rebase`] calls.
    pub fn base(&self) -> &[Placement] {
        &self.base
    }

    /// Aggregate statistics of the (live) search tree.
    pub fn stats(&self) -> TreeStats {
        let mut max_depth = 0usize;
        let mut fully_explored = 0usize;
        let mut stack = vec![(self.root, 0usize)];
        while let Some((id, depth)) = stack.pop() {
            max_depth = max_depth.max(depth);
            if self.nodes[id].fully_explored {
                fully_explored += 1;
            }
            for &(_, c) in &self.nodes[id].children {
                stack.push((c, depth + 1));
            }
        }
        let root = &self.nodes[self.root];
        TreeStats {
            nodes: self.tree_size(),
            max_depth,
            fully_explored,
            rollouts: root.n,
            t_min: root.t_min,
            t_max: root.t_max,
        }
    }

    /// Exports an introspection snapshot with the same schema and ranking
    /// rules as the serial engine's [`Mcts::snapshot`](crate::Mcts::snapshot):
    /// depth profile, `max_nodes` most-visited nodes, top-`top_k`
    /// principal variations, ties broken toward earlier arena slots.
    pub fn snapshot(&self, top_k: usize, max_nodes: usize) -> TreeSnapshot {
        let mut depth_of: HashMap<NodeId, usize> = HashMap::from([(self.root, 0)]);
        let mut depth_profile: Vec<usize> = Vec::new();
        let mut queue = std::collections::VecDeque::from([self.root]);
        let mut order: Vec<NodeId> = Vec::new();
        while let Some(id) = queue.pop_front() {
            order.push(id);
            let d = depth_of[&id];
            if depth_profile.len() <= d {
                depth_profile.resize(d + 1, 0);
            }
            depth_profile[d] += 1;
            for &(_, c) in &self.nodes[id].children {
                depth_of.insert(c, d + 1);
                queue.push_back(c);
            }
        }

        let action_of = |id: NodeId| -> Option<Placement> {
            order.iter().find_map(|&p| {
                self.nodes[p]
                    .children
                    .iter()
                    .find(|&&(_, c)| c == id)
                    .map(|&(q, _)| q)
            })
        };
        let mut ranked: Vec<NodeId> = order.clone();
        ranked.sort_by(|&a, &b| {
            self.nodes[b]
                .n
                .cmp(&self.nodes[a].n)
                .then(depth_of[&a].cmp(&depth_of[&b]))
                .then(a.cmp(&b))
        });
        let nodes: Vec<NodeStat> = ranked
            .into_iter()
            .take(max_nodes)
            .map(|id| {
                let n = &self.nodes[id];
                NodeStat {
                    depth: depth_of[&id],
                    action: if id == self.root { None } else { action_of(id) },
                    visits: n.n,
                    t_min: n.t_min,
                    t_max: n.t_max,
                    t_mean: if n.n > 0 {
                        n.t_sum / n.n as f64
                    } else {
                        f64::NAN
                    },
                    children: n.children.len(),
                    fully_explored: n.fully_explored,
                }
            })
            .collect();

        let mut openings: Vec<(Placement, NodeId)> = self.nodes[self.root].children.clone();
        openings.sort_by(|&(_, a), &(_, b)| self.nodes[b].n.cmp(&self.nodes[a].n).then(a.cmp(&b)));
        let principal_variations: Vec<PrincipalVariation> = openings
            .into_iter()
            .take(top_k)
            .filter(|&(_, id)| self.nodes[id].n > 0)
            .map(|(p, id)| {
                let mut steps = vec![p];
                let mut node = id;
                loop {
                    let next = self.nodes[node]
                        .children
                        .iter()
                        .filter(|&&(_, c)| self.nodes[c].n > 0)
                        .max_by(|&&(_, a), &&(_, b)| {
                            self.nodes[a].n.cmp(&self.nodes[b].n).then(b.cmp(&a))
                        })
                        .copied();
                    match next {
                        Some((q, c)) => {
                            steps.push(q);
                            node = c;
                        }
                        None => break,
                    }
                }
                PrincipalVariation {
                    visits: self.nodes[id].n,
                    t_min: self.nodes[node].t_min,
                    t_mean: if self.nodes[id].n > 0 {
                        self.nodes[id].t_sum / self.nodes[id].n as f64
                    } else {
                        f64::NAN
                    },
                    steps,
                }
            })
            .collect();

        TreeSnapshot {
            stats: self.stats(),
            exhausted: self.is_exhausted(),
            iterations: self.iterations,
            failures: self.failures,
            depth_profile,
            nodes,
            principal_variations,
        }
    }

    /// One selection → expansion → rollout descent. Applies one virtual
    /// loss to every node on the returned path.
    /// One selection → expansion → rollout descent. Returns `None` when
    /// the prune hook rejected the freshly-expanded prefix: the subtree
    /// is already retired and no virtual loss was applied.
    fn descend(&mut self) -> Option<(Vec<NodeId>, Traversal, usize)> {
        let mut prefix = self.space.empty_prefix();
        for &p in &self.base {
            self.space.apply(&mut prefix, p);
        }
        let mut path = vec![self.root];
        let mut node = self.root;

        // Selection: descend while every eligible child exists, has a
        // visit or a pending rollout, and at least one is selectable.
        loop {
            let elig = self.space.eligible(&prefix);
            if elig.is_empty() {
                break; // complete traversal
            }
            let unvisited_exists = elig.iter().any(|&p| {
                self.nodes[node].child(p).is_none_or(|c| {
                    let ch = &self.nodes[c];
                    ch.n == 0 && ch.vl == 0 && !ch.fully_explored
                })
            });
            if unvisited_exists {
                break;
            }
            let best = self
                .select_child(node, &elig)
                .expect("non-fully-explored node has a selectable child");
            let child = self.nodes[node].child(best).expect("selected child exists");
            self.space.apply(&mut prefix, best);
            path.push(child);
            node = child;
        }

        // Expansion: materialize (or claim) one untouched child. A child
        // under virtual loss does not count as unvisited — that is what
        // steers consecutive descents apart.
        {
            let elig = self.space.eligible(&prefix);
            if !elig.is_empty() {
                let candidates: Vec<Placement> = elig
                    .iter()
                    .copied()
                    .filter(|&p| {
                        self.nodes[node].child(p).is_none_or(|c| {
                            let ch = &self.nodes[c];
                            ch.n == 0 && ch.vl == 0 && !ch.fully_explored
                        })
                    })
                    .collect();
                let pick = candidates[self.rng.gen_range(0..candidates.len())];
                let child = self.get_or_create_child(node, pick, &mut prefix);
                path.push(child);
                node = child;
                // Static prune: a rejected prefix dooms every completion;
                // retire the subtree before the rollout and before any
                // virtual loss is applied.
                if let Some(hook) = &self.prune {
                    if hook(&prefix) {
                        self.mark_fully_explored(&path);
                        self.pruned += 1;
                        return None;
                    }
                }
            }
        }

        // Rollout: randomly complete the prefix, materializing nodes.
        let mut rollout_len = 0usize;
        while prefix.len() < self.space.num_ops() {
            let elig = self.space.eligible(&prefix);
            let pick = elig[self.rng.gen_range(0..elig.len())];
            let child = self.get_or_create_child(node, pick, &mut prefix);
            path.push(child);
            node = child;
            rollout_len += 1;
        }

        for &id in &path {
            self.nodes[id].vl += 1;
        }
        let traversal = Traversal {
            steps: prefix.steps().to_vec(),
        };
        Some((path, traversal, rollout_len))
    }

    /// PUCT selection over materialized children: `Q_eff + c · prior ·
    /// √N_parent / (1 + n_eff)` with virtual loss folded into the visit
    /// counts. The exploitation signal `Q` is the serial engine's
    /// (coverage range by default); the uniform prior is the policy slot.
    fn select_child(&self, parent: NodeId, elig: &[Placement]) -> Option<Placement> {
        let pn = &self.nodes[parent];
        let parent_range = pn.t_max - pn.t_min;
        let parent_n_eff = pn.n + pn.vl as u64;
        let prior = 1.0 / elig.len() as f64;
        let sqrt_parent = (parent_n_eff as f64).sqrt();
        let mut best: Option<(f64, Placement)> = None;
        for &p in elig {
            let c = pn
                .child(p)
                .expect("selection only runs with all children materialized");
            let ch = &self.nodes[c];
            if ch.fully_explored {
                continue;
            }
            let n_eff = ch.n + ch.vl as u64;
            let q = match self.cfg.exploitation {
                Exploitation::CoverageRange => {
                    if ch.n >= 2 && pn.n >= 2 && parent_range > 0.0 {
                        ((ch.t_max - ch.t_min) / parent_range).clamp(0.0, 1.0)
                    } else {
                        1.0
                    }
                }
                Exploitation::MeanTime => {
                    let root = &self.nodes[self.root];
                    let root_range = root.t_max - root.t_min;
                    if ch.n >= 1 && root_range > 0.0 {
                        let mean = ch.t_sum / ch.n as f64;
                        ((root.t_max - mean) / root_range).clamp(0.0, 1.0)
                    } else {
                        1.0
                    }
                }
                Exploitation::Constant => 1.0,
            };
            // Virtual-loss discount: a node whose visits are all pending
            // contributes no exploitation value until results commit.
            let q_eff = if n_eff > 0 {
                q * (ch.n as f64 / n_eff as f64)
            } else {
                q
            };
            let u = self.cfg.exploration_c * prior * sqrt_parent / (1.0 + n_eff as f64);
            let value = q_eff + u;
            if best.is_none_or(|(bv, _)| value > bv) {
                best = Some((value, p));
            }
        }
        best.map(|(_, p)| p)
    }

    fn get_or_create_child(
        &mut self,
        parent: NodeId,
        p: Placement,
        prefix: &mut dr_dag::Prefix,
    ) -> NodeId {
        if let Some(c) = self.nodes[parent].child(p) {
            self.space.apply(prefix, p);
            return c;
        }
        self.space.apply(prefix, p);
        let num_actions = self.space.eligible(prefix).len();
        let id = self.alloc(num_actions);
        self.nodes[parent].children.push((p, id));
        id
    }

    /// Takes a slot from the free list (clearing it) or grows the arena.
    fn alloc(&mut self, num_actions: usize) -> NodeId {
        match self.free.pop() {
            Some(id) => {
                self.nodes[id].clear(num_actions);
                id
            }
            None => {
                self.nodes.push(Node::fresh(num_actions));
                self.nodes.len() - 1
            }
        }
    }

    /// Recycles `id` and every node below it.
    fn release_subtree(&mut self, id: NodeId) {
        let mut stack = vec![id];
        while let Some(i) = stack.pop() {
            for &(_, c) in &self.nodes[i].children {
                stack.push(c);
            }
            self.nodes[i].children.clear();
            self.free.push(i);
        }
    }

    fn release_virtual_loss(&mut self, path: &[NodeId], count: u32) {
        for &id in path {
            self.nodes[id].vl -= count;
        }
    }

    /// Backpropagates `count` rollouts of time `t` along `path`.
    fn backprop(&mut self, path: &[NodeId], t: f64, count: usize) {
        for &id in path {
            let n = &mut self.nodes[id];
            n.n += count as u64;
            n.t_min = n.t_min.min(t);
            n.t_max = n.t_max.max(t);
            n.t_sum += t * count as f64;
        }
    }

    /// Bottom-up fully-explored propagation. Called only at resolution
    /// time with a complete root-to-leaf path, so the leaf itself is
    /// retired here (in the serial engine leaves retire at creation; see
    /// [`Node::fresh`] for why that is wrong under pending batches).
    fn mark_fully_explored(&mut self, path: &[NodeId]) {
        if let Some(&leaf) = path.last() {
            self.nodes[leaf].fully_explored = true;
        }
        for i in (1..path.len()).rev() {
            let child = path[i];
            let parent = path[i - 1];
            if self.nodes[child].fully_explored && !self.nodes[child].counted_in_parent {
                self.nodes[child].counted_in_parent = true;
                self.nodes[parent].fully_explored_children += 1;
            }
            let p = &self.nodes[parent];
            if !p.fully_explored
                && p.children.len() == p.num_actions
                && p.fully_explored_children == p.num_actions
            {
                self.nodes[parent].fully_explored = true;
            }
        }
    }

    fn push_row(&mut self, iteration: u64, rollout_len: usize) {
        let root = &self.nodes[self.root];
        let row = TelemetryRow {
            iteration,
            unique_traversals: self.records.len(),
            best_time: root.t_min,
            worst_time: root.t_max,
            tree_nodes: self.tree_size(),
            max_depth: self.max_depth,
            rollout_len,
        };
        self.telemetry.push(row);
    }

    /// Sampled trace/event emission for one resolved rollout (same
    /// schedule as the serial engine: iterations 1, 1+every, …).
    fn observe(&mut self, iteration: u64, outcome: &str) {
        let unique = self.records.len();
        let tree_nodes = self.tree_size();
        let max_depth = self.max_depth;
        let best_s = self.nodes[self.root].t_min;
        if let Some((lane, every)) = &mut self.trace {
            if (iteration - 1).is_multiple_of(*every as u64) {
                lane.enter("mcts-iter");
                lane.annotate("iteration", iteration);
                lane.annotate("unique", unique);
                lane.annotate("tree_nodes", tree_nodes);
                lane.annotate("outcome", outcome);
                lane.exit();
            }
        }
        if let Some((sink, every)) = &self.events {
            if sink.is_enabled() && (iteration - 1).is_multiple_of(*every as u64) {
                sink.emit(
                    "mcts-iter",
                    &[
                        ("iteration", iteration.into()),
                        ("unique", unique.into()),
                        ("tree_nodes", tree_nodes.into()),
                        ("max_depth", max_depth.into()),
                        ("best_s", best_s.into()),
                        ("outcome", outcome.into()),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Evaluator, SimEvaluator};
    use crate::tree::Mcts;
    use dr_dag::{CostKey, DagBuilder, OpSpec};
    use dr_sim::{BenchConfig, Percentiles, Platform, TableWorkload};

    fn small_space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    fn small_workload() -> TableWorkload {
        let mut w = TableWorkload::new(1);
        w.cost_all("a", 1e-4)
            .cost_all("b", 2e-4)
            .cost_all("c", 5e-5);
        w
    }

    fn fake_result(t: f64) -> BenchResult {
        BenchResult {
            measurements: vec![t],
            percentiles: Percentiles {
                p01: t,
                p10: t,
                p50: t,
                p90: t,
                p99: t,
            },
        }
    }

    /// A pure-function evaluator: time derived from the traversal alone.
    fn hash_time(t: &Traversal) -> f64 {
        1e-4 + (t.canonical_hash() % 1009) as f64 * 1e-7
    }

    /// Drives a shared search to exhaustion with the given batch width.
    fn run_to_exhaustion<E: Evaluator>(mcts: &mut SharedMcts, width: usize, eval: &mut E) {
        let mut safety = 0usize;
        loop {
            let batch = mcts.select_batch(width, u64::MAX);
            if batch.pending.is_empty() {
                if mcts.is_exhausted() {
                    break;
                }
                safety += 1;
                assert!(safety < 100_000, "search failed to make progress");
                continue;
            }
            let results: Vec<_> = batch
                .pending
                .iter()
                .map(|pe| eval.evaluate(&pe.traversal, pe.eval_seed))
                .collect();
            mcts.commit(batch, results).unwrap();
        }
    }

    fn record_set(records: &[ExploredRecord]) -> Vec<(u64, u64)> {
        let mut set: Vec<(u64, u64)> = records
            .iter()
            .map(|r| (r.traversal.canonical_hash(), r.result.time().to_bits()))
            .collect();
        set.sort_unstable();
        set
    }

    #[test]
    fn prune_hook_retires_subtrees_before_any_evaluation() {
        let space = small_space();
        let mut mcts = SharedMcts::new(&space, MctsConfig::default());
        mcts.set_prune(std::sync::Arc::new(|_: &dr_dag::Prefix| true));
        let batch = mcts.select_batch(8, u64::MAX);
        assert!(
            batch.pending.is_empty(),
            "nothing reaches evaluation under a prune-everything hook"
        );
        assert!(batch.immediates > 0, "pruned descents resolve inline");
        assert!(mcts.is_exhausted());
        assert_eq!(
            mcts.pruned(),
            space.eligible(&space.empty_prefix()).len() as u64,
            "exactly one prune per root child"
        );
        assert!(mcts.records().is_empty());
        // No virtual loss may leak from the aborted descents.
        for node in &mcts.nodes {
            assert_eq!(node.vl, 0);
        }
    }

    #[test]
    fn virtual_loss_marks_pending_paths_and_commit_clears_it() {
        let space = small_space();
        let mut mcts = SharedMcts::new(&space, MctsConfig::default());
        let batch = mcts.select_batch(1, u64::MAX);
        assert_eq!(batch.pending.len(), 1);
        assert_eq!(batch.iterations, 1);
        let path = batch.pending[0].path.clone();
        assert!(path.len() > 1, "path spans root to leaf");
        for &id in &path {
            assert_eq!(mcts.nodes[id].vl, 1, "pending path carries virtual loss");
            assert_eq!(mcts.nodes[id].n, 0, "no real visits before commit");
        }
        mcts.commit(batch, vec![Ok(fake_result(1e-4))]).unwrap();
        for &id in &path {
            assert_eq!(mcts.nodes[id].vl, 0, "commit releases virtual loss");
            assert_eq!(mcts.nodes[id].n, 1, "commit backpropagates the visit");
        }
        assert_eq!(mcts.records().len(), 1);
        assert_eq!(mcts.telemetry().len(), 1);
    }

    #[test]
    fn virtual_loss_steers_batched_descents_apart() {
        // With the whole tree untouched, two consecutive descents must
        // diverge at the root: the first leaves virtual loss on its
        // opening child, which then no longer counts as unvisited, so
        // the second expansion picks a different opening.
        let space = small_space();
        let mut mcts = SharedMcts::new(&space, MctsConfig::default());
        let batch = mcts.select_batch(2, u64::MAX);
        assert_eq!(batch.pending.len(), 2);
        let a = &batch.pending[0];
        let b = &batch.pending[1];
        assert_ne!(
            a.traversal, b.traversal,
            "descents diverge under virtual loss"
        );
        assert_ne!(
            a.traversal.steps[0], b.traversal.steps[0],
            "divergence happens at the opening move"
        );
        assert_eq!(
            mcts.nodes[mcts.root].vl, 2,
            "root carries one loss per rollout"
        );
        let results = vec![Ok(fake_result(1e-4)), Ok(fake_result(2e-4))];
        mcts.commit(batch, results).unwrap();
        assert_eq!(mcts.nodes[mcts.root].vl, 0);
        assert_eq!(mcts.nodes[mcts.root].n, 2);
    }

    #[test]
    fn a_node_under_virtual_loss_is_deprioritized_until_commit() {
        // Directly exercise the PUCT discount: two siblings with
        // identical statistics, one carrying a virtual loss. Selection
        // must prefer the unencumbered sibling; after the loss clears,
        // the tie is restored.
        let mut b = DagBuilder::new();
        b.add("x", OpSpec::GpuKernel(CostKey::new("x")));
        b.add("y", OpSpec::GpuKernel(CostKey::new("y")));
        let space = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let elig = space.eligible(&space.empty_prefix());
        assert_eq!(elig.len(), 2, "two independent ops give two openings");
        let mut mcts = SharedMcts::new(&space, MctsConfig::default());
        // Materialize both children with one committed visit each.
        for &p in &elig {
            let mut prefix = space.empty_prefix();
            let id = mcts.get_or_create_child(mcts.root, p, &mut prefix);
            mcts.backprop(&[mcts.root, id], 1e-4, 1);
        }
        let loaded = mcts.nodes[mcts.root].child(elig[0]).unwrap();
        mcts.nodes[loaded].vl = 1;
        let picked = mcts.select_child(mcts.root, &elig).unwrap();
        assert_eq!(
            picked, elig[1],
            "virtual loss deprioritizes the pending child"
        );
        mcts.nodes[loaded].vl = 0;
        let repicked = mcts.select_child(mcts.root, &elig).unwrap();
        assert_eq!(
            repicked, elig[0],
            "ties break to the first child once cleared"
        );
    }

    #[test]
    fn width_one_exhaustion_matches_the_serial_record_set() {
        let space = small_space();
        let total = space.count_traversals() as usize;
        let w = small_workload();
        let platform = Platform::perlmutter_like().noiseless();

        let serial_eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let mut serial = Mcts::new(&space, serial_eval, MctsConfig::default());
        serial.run(10_000).unwrap();
        assert!(serial.is_exhausted());

        let mut eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let mut shared = SharedMcts::new(&space, MctsConfig::default());
        run_to_exhaustion(&mut shared, 1, &mut eval);
        assert!(shared.is_exhausted());
        assert_eq!(shared.records().len(), total);
        assert_eq!(
            record_set(shared.records()),
            record_set(serial.records()),
            "shared tree at width 1 must measure the serial record set"
        );
    }

    #[test]
    fn record_set_is_batch_width_invariant() {
        let space = small_space();
        let total = space.count_traversals() as usize;
        let mut sets = Vec::new();
        for width in [1usize, 2, 4] {
            let mut eval = |t: &Traversal, _: u64| -> Result<BenchResult, SimError> {
                Ok(fake_result(hash_time(t)))
            };
            let mut mcts = SharedMcts::new(&space, MctsConfig::default());
            run_to_exhaustion(&mut mcts, width, &mut eval);
            assert!(mcts.is_exhausted());
            assert_eq!(
                mcts.records().len(),
                total,
                "width {width} measures each once"
            );
            assert_eq!(mcts.repeats() + total as u64, mcts.iterations());
            sets.push(record_set(mcts.records()));
        }
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
    }

    #[test]
    fn shared_search_is_seed_deterministic() {
        let space = small_space();
        let run = |seed: u64| {
            let mut eval = |t: &Traversal, _: u64| -> Result<BenchResult, SimError> {
                Ok(fake_result(hash_time(t)))
            };
            let mut mcts = SharedMcts::new(
                &space,
                MctsConfig {
                    seed,
                    ..Default::default()
                },
            );
            run_to_exhaustion(&mut mcts, 3, &mut eval);
            let telemetry_len = mcts.telemetry().len();
            let records: Vec<_> = mcts
                .records()
                .iter()
                .map(|r| (r.traversal.clone(), r.result.time()))
                .collect();
            (records, telemetry_len)
        };
        assert_eq!(run(5), run(5), "same seed, same commit order");
    }

    #[test]
    fn failures_quarantine_up_to_the_budget_then_propagate() {
        let space = small_space();
        let total = space.count_traversals() as usize;
        let mut poisoned = SharedMcts::new(
            &space,
            MctsConfig {
                max_failures: total,
                ..Default::default()
            },
        );
        let mut safety = 0;
        while !poisoned.is_exhausted() {
            let batch = poisoned.select_batch(2, u64::MAX);
            let results: Vec<Result<BenchResult, SimError>> = batch
                .pending
                .iter()
                .map(|_| {
                    Err(SimError::Panicked {
                        detail: "always".into(),
                    })
                })
                .collect();
            poisoned.commit(batch, results).unwrap();
            safety += 1;
            assert!(safety < 10_000);
        }
        assert_eq!(poisoned.failures(), total);
        assert!(poisoned.records().is_empty());
        assert!(
            poisoned.telemetry().is_empty(),
            "quarantined rollouts leave no telemetry rows (serial parity)"
        );

        // Default budget (0): the first error is fatal.
        let mut strict = SharedMcts::new(&space, MctsConfig::default());
        let batch = strict.select_batch(1, u64::MAX);
        let results = vec![Err(SimError::Panicked {
            detail: "fatal".into(),
        })];
        assert!(strict.commit(batch, results).is_err());
    }

    #[test]
    fn rebase_recycles_sibling_subtrees_and_reuses_slots() {
        let space = small_space();
        let mut eval = |t: &Traversal, _: u64| -> Result<BenchResult, SimError> {
            Ok(fake_result(hash_time(t)))
        };
        let mut mcts = SharedMcts::new(&space, MctsConfig::default());
        run_to_exhaustion(&mut mcts, 2, &mut eval);
        let arena_before = mcts.nodes.len();
        let size_before = mcts.tree_size();
        assert_eq!(size_before, arena_before, "nothing recycled yet");

        let openings = mcts.nodes[mcts.root].children.clone();
        assert!(openings.len() >= 2, "exhaustion materializes every opening");
        let keep = openings[0].0;
        assert!(mcts.rebase(keep));
        assert_eq!(mcts.base(), &[keep]);
        assert!(mcts.tree_size() < size_before, "siblings were recycled");
        assert_eq!(mcts.nodes.len(), arena_before, "arena capacity unchanged");
        assert!(!mcts.free.is_empty());
        assert!(
            mcts.is_exhausted(),
            "kept subtree was already fully explored"
        );
        let stats = mcts.stats();
        assert_eq!(stats.nodes, mcts.tree_size(), "stats walk only live nodes");

        // New allocations reuse recycled slots instead of growing.
        let free_before = mcts.free.len();
        let reused = mcts.alloc(1);
        assert!(reused < arena_before, "allocation reuses a recycled slot");
        assert_eq!(mcts.free.len(), free_before - 1);
        assert_eq!(mcts.nodes.len(), arena_before);

        // Rebasing to an unmaterialized placement is a no-op.
        assert!(!mcts.rebase(keep));
    }

    #[test]
    fn snapshot_has_the_serial_schema_and_sane_rankings() {
        let space = small_space();
        let w = small_workload();
        let platform = Platform::perlmutter_like().noiseless();
        let mut eval = SimEvaluator::new(&space, &w, &platform, BenchConfig::quick());
        let mut mcts = SharedMcts::new(&space, MctsConfig::default());
        run_to_exhaustion(&mut mcts, 2, &mut eval);

        let snap = mcts.snapshot(5, 12);
        assert!(snap.exhausted);
        assert_eq!(snap.stats.nodes, mcts.tree_size());
        assert_eq!(snap.depth_profile[0], 1, "exactly one root");
        assert_eq!(snap.depth_profile.iter().sum::<usize>(), mcts.tree_size());
        assert!(snap.nodes.len() <= 12);
        assert!(snap.nodes[0].action.is_none(), "root ranks first");
        for pair in snap.nodes.windows(2) {
            assert!(pair[0].visits >= pair[1].visits, "ranked by visits");
        }
        assert!(!snap.principal_variations.is_empty());
        for pv in &snap.principal_variations {
            assert_eq!(pv.steps.len(), space.num_ops(), "PVs reach a leaf");
            assert!(pv.visits > 0);
        }
        assert_eq!(snap.iterations, mcts.iterations());
    }

    #[test]
    fn in_batch_duplicates_share_one_evaluation_slot() {
        // A 1-op, 1-stream space has a single traversal: any batch wider
        // than 1 must fold every extra rollout into the same pending
        // entry rather than requesting duplicate evaluations.
        let mut b = DagBuilder::new();
        b.add("only", OpSpec::GpuKernel(CostKey::new("only")));
        let space = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let mut mcts = SharedMcts::new(&space, MctsConfig::default());
        let batch = mcts.select_batch(4, u64::MAX);
        assert_eq!(batch.pending.len(), 1, "one distinct traversal exists");
        let dup = batch.pending[0].rollouts.len();
        assert!(dup >= 2, "extra rollouts became duplicates");
        assert_eq!(batch.iterations, dup);
        mcts.commit(batch, vec![Ok(fake_result(1e-4))]).unwrap();
        assert_eq!(mcts.records().len(), 1);
        assert_eq!(mcts.repeats(), dup as u64 - 1);
        assert!(mcts.is_exhausted());
        assert_eq!(
            mcts.telemetry().len(),
            dup,
            "each rollout (first + repeats) logs a telemetry row"
        );
    }
}
