//! Scoped worker pool with a chunked work queue and order-restoring
//! result merge.
//!
//! Two entry points share the machinery: [`par_map_stream_with`] stops
//! the whole pool on the first error (the fast path for fault-free
//! exploration), while [`par_map_stream_isolated`] quarantines failures
//! — including panics, caught per item with `catch_unwind` — and keeps
//! the remaining work alive, which is what a chaos run needs.

use dr_trace::{SpanId, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread;

/// Items pulled from the shared iterator per queue lock acquisition.
/// Large enough to amortize the mutex, small enough to keep the tail of
/// an uneven workload balanced.
const CHUNK: usize = 8;

/// Callbacks observing pool worker lifecycle, for live progress
/// displays. The pool stays observability-agnostic: implementors adapt
/// these calls to whatever sink they use (the core crate forwards them
/// to the `dr-events/v1` stream). Callbacks run on the worker's thread
/// and must not panic; default implementations do nothing.
pub trait PoolObserver: Sync {
    /// A worker thread started (workers are indexed `0..threads`).
    fn worker_start(&self, _worker: usize) {}
    /// A worker thread finished after mapping `items` items.
    fn worker_end(&self, _worker: usize, _items: usize) {}
}

/// Resolves the worker count: an explicit request wins, then the
/// `DR_THREADS` environment variable, then 1 (fully serial — the safe,
/// reproducible-latency default; parallel results are identical anyway).
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    std::env::var("DR_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Splits an iteration budget into `parts` per-worker budgets that sum to
/// `total`, earlier workers taking the remainder (deterministic).
pub fn split_budget(total: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let base = total / parts;
    let rem = total % parts;
    (0..parts).map(|w| base + usize::from(w < rem)).collect()
}

/// [`par_map_stream_with`] without per-worker state.
pub fn par_map_stream<T, R, Err, I, F>(items: I, threads: usize, f: F) -> Result<Vec<R>, Err>
where
    I: Iterator<Item = T> + Send,
    T: Send,
    R: Send,
    Err: Send,
    F: Fn(usize, T) -> Result<R, Err> + Sync,
{
    par_map_stream_with(items, threads, |_| (), |(), i, t| f(i, t)).map(|(out, _)| out)
}

/// Streams `items` through `threads` scoped workers, applying `f` to each
/// and returning the results **in input order** together with every
/// worker's final state (in worker-index order).
///
/// Each worker owns one state value built by `init(worker_index)` — this
/// is how callers give every thread its own evaluator while the pool
/// merges their accumulated statistics deterministically afterwards.
/// Items are handed out in small chunks from the shared iterator, so a
/// lazy enumeration is consumed as it is produced and never materialized
/// wholesale. On an error the pool stops handing out work, finishes
/// nothing further, and returns the error with the smallest input index
/// among those observed.
pub fn par_map_stream_with<T, R, S, Err, I, Init, F>(
    items: I,
    threads: usize,
    init: Init,
    f: F,
) -> Result<(Vec<R>, Vec<S>), Err>
where
    I: Iterator<Item = T> + Send,
    T: Send,
    R: Send,
    S: Send,
    Err: Send,
    Init: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, T) -> Result<R, Err> + Sync,
{
    par_map_stream_with_traced(items, threads, &Tracer::disabled(), None, init, f)
}

/// [`par_map_stream_with`] with causal tracing: each worker records a
/// `worker` span on its own lane (linked `follows_from` the caller's
/// `dispatch` span, when given) and one `chunk` span per batch pulled
/// from the shared queue, annotated with the batch's first input index
/// and length. With a disabled tracer this is exactly
/// [`par_map_stream_with`] — the span calls are no-ops.
pub fn par_map_stream_with_traced<T, R, S, Err, I, Init, F>(
    items: I,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    init: Init,
    f: F,
) -> Result<(Vec<R>, Vec<S>), Err>
where
    I: Iterator<Item = T> + Send,
    T: Send,
    R: Send,
    S: Send,
    Err: Send,
    Init: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, T) -> Result<R, Err> + Sync,
{
    par_map_stream_observed(items, threads, tracer, dispatch, None, init, f)
}

/// [`par_map_stream_with_traced`] plus an optional [`PoolObserver`]
/// notified of worker start/end on the worker's own thread. `None`
/// makes this identical to [`par_map_stream_with_traced`].
#[allow(clippy::too_many_arguments)]
pub fn par_map_stream_observed<T, R, S, Err, I, Init, F>(
    items: I,
    threads: usize,
    tracer: &Tracer,
    dispatch: Option<SpanId>,
    observer: Option<&dyn PoolObserver>,
    init: Init,
    f: F,
) -> Result<(Vec<R>, Vec<S>), Err>
where
    I: Iterator<Item = T> + Send,
    T: Send,
    R: Send,
    S: Send,
    Err: Send,
    Init: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, T) -> Result<R, Err> + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        // Serial fast path: no queue, no locks — the reference semantics
        // the parallel path must reproduce.
        let mut lane = tracer.lane("par-worker-0");
        lane.enter("worker");
        if let Some(d) = dispatch {
            lane.follows_from(d);
        }
        if let Some(o) = observer {
            o.worker_start(0);
        }
        let mut state = init(0);
        let mut out = Vec::new();
        for (i, item) in items.enumerate() {
            let r = f(&mut state, i, item);
            match r {
                Ok(r) => out.push(r),
                Err(e) => {
                    lane.annotate("items", out.len());
                    lane.annotate("stopped_at", i);
                    lane.exit();
                    if let Some(o) = observer {
                        o.worker_end(0, out.len());
                    }
                    return Err(e);
                }
            }
        }
        lane.annotate("items", out.len());
        lane.exit();
        if let Some(o) = observer {
            o.worker_end(0, out.len());
        }
        return Ok((out, vec![state]));
    }

    let queue = Mutex::new(items.enumerate());
    let stop = AtomicBool::new(false);
    let mut tagged: Vec<(usize, R)> = Vec::new();
    let mut states: Vec<S> = Vec::new();
    let mut first_err: Option<(usize, Err)> = None;

    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let queue = &queue;
                let stop = &stop;
                let init = &init;
                let f = &f;
                let mut lane = tracer.lane(&format!("par-worker-{w}"));
                scope.spawn(move || {
                    lane.enter("worker");
                    if let Some(d) = dispatch {
                        lane.follows_from(d);
                    }
                    if let Some(o) = observer {
                        o.worker_start(w);
                    }
                    let mut state = init(w);
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut err: Option<(usize, Err)> = None;
                    'work: while !stop.load(Ordering::Relaxed) {
                        let batch: Vec<(usize, T)> = {
                            let mut q = queue.lock().expect("queue lock poisoned");
                            q.by_ref().take(CHUNK).collect()
                        };
                        if batch.is_empty() {
                            break;
                        }
                        lane.enter("chunk");
                        lane.annotate("first", batch[0].0);
                        lane.annotate("len", batch.len());
                        for (i, item) in batch {
                            match f(&mut state, i, item) {
                                Ok(r) => out.push((i, r)),
                                Err(e) => {
                                    err = Some((i, e));
                                    stop.store(true, Ordering::Relaxed);
                                    lane.exit();
                                    break 'work;
                                }
                            }
                        }
                        lane.exit();
                    }
                    lane.annotate("items", out.len());
                    lane.exit();
                    if let Some(o) = observer {
                        o.worker_end(w, out.len());
                    }
                    (out, state, err)
                })
            })
            .collect();
        for h in handles {
            let (out, state, err) = h.join().expect("explore worker panicked");
            tagged.extend(out);
            states.push(state);
            if let Some((i, e)) = err {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        }
    });

    if let Some((_, e)) = first_err {
        return Err(e);
    }
    tagged.sort_unstable_by_key(|&(i, _)| i);
    Ok((tagged.into_iter().map(|(_, r)| r).collect(), states))
}

/// What happened to one input item under [`par_map_stream_isolated`].
#[derive(Debug, Clone, PartialEq)]
pub enum ItemOutcome<R, Err> {
    /// The item mapped successfully.
    Ok(R),
    /// The mapping function returned an error; the item is quarantined.
    Failed(Err),
    /// The mapping function panicked; the payload is preserved as text
    /// and the item is quarantined.
    Panicked(String),
}

impl<R, Err> ItemOutcome<R, Err> {
    /// The successful result, if any.
    pub fn ok(self) -> Option<R> {
        match self {
            ItemOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// Aggregate result of [`par_map_stream_isolated`].
#[derive(Debug)]
pub struct PoolOutcome<R, S, Err> {
    /// Per-item outcomes, **in input order**. Every pulled item appears
    /// exactly once — quarantined items are marked, never silently lost.
    pub items: Vec<ItemOutcome<R, Err>>,
    /// Every worker's final state, in worker-index order.
    pub states: Vec<S>,
    /// Items whose mapping panicked (caught and quarantined).
    pub panics: u64,
    /// Items whose mapping returned an error.
    pub failures: u64,
}

/// Turns a caught panic payload into displayable text.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`par_map_stream_with`], but *panic-isolated and error-tolerant*:
/// every item runs under `catch_unwind`, a panicking or failing item is
/// quarantined as its own [`ItemOutcome`], and the pool always processes
/// every input item. The serial (`threads == 1`) path applies the exact
/// same per-item isolation, so outcomes are thread-count-invariant for a
/// deterministic `f`.
pub fn par_map_stream_isolated<T, R, S, Err, I, Init, F>(
    items: I,
    threads: usize,
    init: Init,
    f: F,
) -> PoolOutcome<R, S, Err>
where
    I: Iterator<Item = T> + Send,
    T: Send,
    R: Send,
    S: Send,
    Err: Send,
    Init: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, T) -> Result<R, Err> + Sync,
{
    let threads = threads.max(1);
    let run_one = |state: &mut S, i: usize, item: T| -> ItemOutcome<R, Err> {
        match catch_unwind(AssertUnwindSafe(|| f(state, i, item))) {
            Ok(Ok(r)) => ItemOutcome::Ok(r),
            Ok(Err(e)) => ItemOutcome::Failed(e),
            Err(payload) => ItemOutcome::Panicked(panic_text(payload)),
        }
    };

    let mut tagged: Vec<(usize, ItemOutcome<R, Err>)> = Vec::new();
    let mut states: Vec<S> = Vec::new();
    if threads == 1 {
        let mut state = init(0);
        for (i, item) in items.enumerate() {
            tagged.push((i, run_one(&mut state, i, item)));
        }
        states.push(state);
    } else {
        let queue = Mutex::new(items.enumerate());
        thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let queue = &queue;
                    let init = &init;
                    let run_one = &run_one;
                    scope.spawn(move || {
                        let mut state = init(w);
                        let mut out: Vec<(usize, ItemOutcome<R, Err>)> = Vec::new();
                        loop {
                            let batch: Vec<(usize, T)> = {
                                let mut q = queue.lock().expect("queue lock poisoned");
                                q.by_ref().take(CHUNK).collect()
                            };
                            if batch.is_empty() {
                                break;
                            }
                            for (i, item) in batch {
                                out.push((i, run_one(&mut state, i, item)));
                            }
                        }
                        (out, state)
                    })
                })
                .collect();
            for h in handles {
                let (out, state) = h.join().expect("isolated worker panicked outside an item");
                tagged.extend(out);
                states.push(state);
            }
        });
    }
    tagged.sort_unstable_by_key(|&(i, _)| i);
    let items: Vec<ItemOutcome<R, Err>> = tagged.into_iter().map(|(_, o)| o).collect();
    let panics = items
        .iter()
        .filter(|o| matches!(o, ItemOutcome::Panicked(_)))
        .count() as u64;
    let failures = items
        .iter()
        .filter(|o| matches!(o, ItemOutcome::Failed(_)))
        .count() as u64;
    PoolOutcome {
        items,
        states,
        panics,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_explicit_then_env_then_one() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        // Env handling: this test owns the variable (no other test in
        // this binary touches it) and restores the unset state.
        std::env::set_var("DR_THREADS", "5");
        assert_eq!(resolve_threads(None), 5);
        assert_eq!(resolve_threads(Some(2)), 2, "explicit beats env");
        std::env::set_var("DR_THREADS", "zero");
        assert_eq!(resolve_threads(None), 1, "garbage env ignored");
        std::env::remove_var("DR_THREADS");
        assert_eq!(resolve_threads(None), 1);
    }

    #[test]
    fn split_budget_sums_and_balances() {
        assert_eq!(split_budget(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_budget(3, 8).iter().sum::<usize>(), 3);
        assert_eq!(split_budget(0, 3), vec![0, 0, 0]);
        assert_eq!(split_budget(7, 1), vec![7]);
        for (total, parts) in [(100, 7), (5, 5), (1, 2)] {
            let b = split_budget(total, parts);
            assert_eq!(b.len(), parts);
            assert_eq!(b.iter().sum::<usize>(), total);
            assert!(b.iter().all(|&x| x.abs_diff(total / parts) <= 1));
        }
    }

    #[test]
    fn results_are_in_input_order_for_every_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = par_map_stream(items.clone().into_iter(), 1, |i, x| {
            Ok::<_, ()>(x * 2 + i as u64)
        })
        .unwrap();
        for threads in [2, 3, 4, 8] {
            let par = par_map_stream(items.clone().into_iter(), threads, |i, x| {
                // Uneven per-item work so chunks finish out of order.
                if x % 7 == 0 {
                    std::thread::yield_now();
                }
                Ok::<_, ()>(x * 2 + i as u64)
            })
            .unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn lazy_sources_are_consumed_without_materialization() {
        // An iterator that counts how far it has been driven: the pool
        // must pull everything exactly once, through the shared queue.
        let pulled = std::sync::atomic::AtomicUsize::new(0);
        let src = (0..57).inspect(|_| {
            pulled.fetch_add(1, Ordering::Relaxed);
        });
        let out = par_map_stream(src, 4, |_, x| Ok::<_, ()>(x)).unwrap();
        assert_eq!(out, (0..57).collect::<Vec<_>>());
        assert_eq!(pulled.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn errors_short_circuit_and_surface() {
        for threads in [1, 4] {
            let res: Result<Vec<u32>, String> =
                par_map_stream((0..1000).map(Ok::<u32, String>), threads, |i, x| {
                    let x = x?;
                    if i == 13 {
                        Err(format!("boom at {i}"))
                    } else {
                        Ok(x)
                    }
                });
            assert_eq!(res.unwrap_err(), "boom at 13", "threads={threads}");
        }
    }

    #[test]
    fn worker_states_come_back_in_worker_order() {
        let (out, states) = par_map_stream_with(
            (0..40).collect::<Vec<_>>().into_iter(),
            4,
            |w| (w, 0usize),
            |state, _, x: i32| {
                state.1 += 1;
                Ok::<_, ()>(x)
            },
        )
        .unwrap();
        assert_eq!(out.len(), 40);
        assert_eq!(states.len(), 4);
        assert_eq!(
            states.iter().map(|s| s.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "states are returned in worker-index order"
        );
        assert_eq!(states.iter().map(|s| s.1).sum::<usize>(), 40);
    }

    #[test]
    fn traced_pool_records_worker_and_chunk_spans() {
        let tracer = Tracer::new();
        let mut main = tracer.lane("main");
        let dispatch = main.enter("dispatch");
        let (out, _) = par_map_stream_with_traced(
            (0..40).collect::<Vec<_>>().into_iter(),
            4,
            &tracer,
            dispatch,
            |_| (),
            |(), _, x: i32| Ok::<_, ()>(x * 2),
        )
        .unwrap();
        main.exit();
        assert_eq!(out.len(), 40);
        let snap = tracer.snapshot();
        let workers = snap.spans.iter().filter(|s| s.name == "worker").count();
        let chunks = snap.spans.iter().filter(|s| s.name == "chunk").count();
        assert_eq!(workers, 4);
        assert_eq!(chunks, 40 / CHUNK, "every batch got a chunk span");
        // Every worker span follows the dispatch span.
        assert_eq!(
            snap.follows
                .iter()
                .filter(|(from, _)| Some(*from) == dispatch)
                .count(),
            4
        );
        // Chunk spans nest under their worker span and cover real work.
        for c in snap.spans.iter().filter(|s| s.name == "chunk") {
            let parent = &snap.spans[c.parent.expect("chunk has parent").0 as usize];
            assert_eq!(parent.name, "worker");
            assert_eq!(parent.lane, c.lane);
        }
        // The per-chunk item accounting sums to the input size.
        let accounted: usize = snap
            .spans
            .iter()
            .filter(|s| s.name == "chunk")
            .map(|s| {
                s.notes
                    .iter()
                    .find(|(k, _)| k == "len")
                    .and_then(|(_, v)| v.parse::<usize>().ok())
                    .unwrap()
            })
            .sum();
        assert_eq!(accounted, 40);
    }

    #[test]
    fn traced_pool_with_disabled_tracer_matches_plain() {
        let plain = par_map_stream((0..30).collect::<Vec<i32>>().into_iter(), 3, |_, x| {
            Ok::<_, ()>(x + 1)
        })
        .unwrap();
        let tracer = Tracer::disabled();
        let (traced, _) = par_map_stream_with_traced(
            (0..30).collect::<Vec<i32>>().into_iter(),
            3,
            &tracer,
            None,
            |_| (),
            |(), _, x| Ok::<_, ()>(x + 1),
        )
        .unwrap();
        assert_eq!(traced, plain);
        assert_eq!(tracer.span_count(), 0);
    }

    #[test]
    fn observer_sees_every_worker_and_all_items() {
        use std::sync::atomic::AtomicUsize;
        #[derive(Default)]
        struct Tally {
            starts: AtomicUsize,
            ends: AtomicUsize,
            items: AtomicUsize,
        }
        impl PoolObserver for Tally {
            fn worker_start(&self, _worker: usize) {
                self.starts.fetch_add(1, Ordering::Relaxed);
            }
            fn worker_end(&self, _worker: usize, items: usize) {
                self.ends.fetch_add(1, Ordering::Relaxed);
                self.items.fetch_add(items, Ordering::Relaxed);
            }
        }
        for threads in [1, 4] {
            let tally = Tally::default();
            let (out, _) = par_map_stream_observed(
                (0..40).collect::<Vec<i32>>().into_iter(),
                threads,
                &Tracer::disabled(),
                None,
                Some(&tally),
                |_| (),
                |(), _, x| Ok::<_, ()>(x + 1),
            )
            .unwrap();
            assert_eq!(out.len(), 40);
            assert_eq!(tally.starts.load(Ordering::Relaxed), threads);
            assert_eq!(tally.ends.load(Ordering::Relaxed), threads);
            assert_eq!(tally.items.load(Ordering::Relaxed), 40, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out = par_map_stream(std::iter::empty::<u8>(), 4, |_, x| Ok::<_, ()>(x)).unwrap();
        assert!(out.is_empty());
    }

    /// Runs the isolated pool over 0..40 where item 7 panics and items
    /// divisible by 10 fail.
    fn chaos_outcome(threads: usize) -> PoolOutcome<i32, usize, String> {
        // Quarantined panics print nothing here: the panic hook is per
        // process, so keep the panicking branch silent via a plain
        // panic! whose output the test harness captures.
        par_map_stream_isolated(
            (0..40).collect::<Vec<i32>>().into_iter(),
            threads,
            |_| 0usize,
            |count, _, x| {
                *count += 1;
                if x == 7 {
                    panic!("injected panic at {x}");
                }
                if x % 10 == 0 {
                    Err(format!("failed at {x}"))
                } else {
                    Ok(x * 2)
                }
            },
        )
    }

    #[test]
    fn isolated_pool_quarantines_panics_and_failures() {
        for threads in [1, 4] {
            let out = chaos_outcome(threads);
            assert_eq!(out.items.len(), 40, "threads={threads}");
            assert_eq!(out.panics, 1);
            assert_eq!(out.failures, 4, "0, 10, 20, 30 fail");
            assert_eq!(
                out.items[7],
                ItemOutcome::Panicked("injected panic at 7".into())
            );
            assert_eq!(out.items[10], ItemOutcome::Failed("failed at 10".into()));
            assert_eq!(out.items[3], ItemOutcome::Ok(6));
            // Every item was pulled exactly once across all workers.
            assert_eq!(out.states.iter().sum::<usize>(), 40);
        }
    }

    #[test]
    fn isolated_outcomes_are_thread_count_invariant() {
        let serial = chaos_outcome(1);
        for threads in [2, 3, 8] {
            let par = chaos_outcome(threads);
            assert_eq!(par.items, serial.items, "threads={threads}");
            assert_eq!(par.panics, serial.panics);
            assert_eq!(par.failures, serial.failures);
        }
    }

    #[test]
    fn isolated_pool_matches_plain_pool_on_clean_input() {
        let plain = par_map_stream((0..25).collect::<Vec<i32>>().into_iter(), 3, |_, x| {
            Ok::<_, ()>(x + 1)
        })
        .unwrap();
        let isolated = par_map_stream_isolated(
            (0..25).collect::<Vec<i32>>().into_iter(),
            3,
            |_| (),
            |(), _, x| Ok::<_, ()>(x + 1),
        );
        let recovered: Vec<i32> = isolated.items.into_iter().filter_map(|o| o.ok()).collect();
        assert_eq!(recovered, plain);
        assert_eq!(isolated.panics, 0);
        assert_eq!(isolated.failures, 0);
    }
}
