//! A fixed-capacity LRU cache over an index-linked slot arena.
//!
//! Built for the simulator's prefix-checkpoint memo: inserts and hits are
//! O(1) (hash lookup plus relinking two list nodes by index), eviction
//! reuses the least-recently-used slot in place, and iteration order is
//! never observable — callers get strictly key-addressed access, so cache
//! capacity can only affect *speed*, never results.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity least-recently-used cache.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    capacity: usize,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot.
    tail: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity.min(4096)),
            slots: Vec::new(),
            capacity,
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.promote(i);
                Some(&self.slots[i].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is present, without promoting it or counting a
    /// hit/miss.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key → value` as most-recently-used, evicting the
    /// least-recently-used entry if at capacity. An existing entry for
    /// `key` is replaced in place.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.promote(i);
            return;
        }
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: self.head,
            });
            if self.head != NIL {
                self.slots[self.head].prev = i;
            }
            self.head = i;
            if self.tail == NIL {
                self.tail = i;
            }
            self.map.insert(key, i);
            return;
        }
        // Reuse the LRU slot in place.
        let i = self.tail;
        let old_key = std::mem::replace(&mut self.slots[i].key, key.clone());
        self.map.remove(&old_key);
        self.slots[i].value = value;
        self.map.insert(key, i);
        self.promote(i);
    }

    /// Unlinks slot `i` and relinks it at the head (most-recently-used).
    fn promote(&mut self, i: usize) {
        if self.head == i {
            return;
        }
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        }
        if self.tail == i {
            self.tail = prev;
        }
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_mru_to_lru(c: &LruCache<u32, u32>) -> Vec<u32> {
        let mut out = Vec::new();
        let mut i = c.head;
        while i != NIL {
            out.push(c.slots[i].key);
            i = c.slots[i].next;
        }
        out
    }

    #[test]
    fn insert_get_and_counters() {
        let mut c = LruCache::new(4);
        assert!(c.is_empty());
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), None);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 2);
        assert!(c.contains(&2));
        assert_eq!((c.hits(), c.misses()), (1, 1), "contains counts nothing");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&1), Some(&1));
        c.insert(4, 4);
        assert_eq!(c.len(), 3);
        assert!(!c.contains(&2), "2 was least recently used");
        assert!(c.contains(&1) && c.contains(&3) && c.contains(&4));
        assert_eq!(keys_mru_to_lru(&c), vec![4, 1, 3]);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = LruCache::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(1, 100);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(&100));
        // 1 is MRU; inserting a third key evicts 2.
        c.insert(3, 3);
        assert!(!c.contains(&2));
    }

    #[test]
    fn capacity_one_works() {
        let mut c = LruCache::new(1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.len(), 1);
        assert!(!c.contains(&1));
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.insert(i % 13, i);
            let _ = c.get(&(i % 7));
            assert!(c.len() <= 8);
            let keys = {
                let mut out = Vec::new();
                let mut j = c.head;
                while j != NIL {
                    out.push(c.slots[j].key);
                    j = c.slots[j].next;
                }
                out
            };
            assert_eq!(keys.len(), c.len(), "list covers every slot");
        }
    }
}
