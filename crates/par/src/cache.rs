//! Lock-striped concurrent memo table for evaluation results.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hit/miss counters of a [`StripedCache`], taken with [`StripedCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the compute closure.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache was never hit).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds another counter pair into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A concurrent `K → V` memo table sharded into independently locked
/// stripes selected by a caller-supplied canonical hash.
///
/// The caller provides the hash (rather than the std `Hash` machinery)
/// because stripe selection participates in the determinism contract:
/// the exploration engine keys on [`Traversal::canonical_hash`]-style
/// stable hashes so the same build always shards the same way. Keys are
/// still compared by full equality inside a stripe, so hash collisions
/// cost a probe, never a wrong answer.
pub struct StripedCache<K, V> {
    stripes: Vec<Mutex<HashMap<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> StripedCache<K, V> {
    /// Creates a cache with `stripes` independent shards (minimum 1).
    pub fn new(stripes: usize) -> Self {
        StripedCache {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, or runs `compute`, stores its
    /// result, and returns it. The stripe lock is held *across* the
    /// computation: each key is computed at most once even under
    /// contention (so side effects like simulator statistics accrue
    /// exactly once per key), at the price of serializing misses that
    /// share a stripe.
    pub fn get_or_try_insert<E>(
        &self,
        hash: u64,
        key: &K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E>
    where
        K: Clone,
    {
        let stripe = &self.stripes[(hash % self.stripes.len() as u64) as usize];
        let mut map = stripe.lock().expect("cache stripe poisoned");
        if let Some(v) = map.get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v.clone());
        }
        let v = compute()?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        map.insert(key.clone(), v.clone());
        Ok(v)
    }

    /// Returns the cached value for `key` without computing anything on
    /// a miss. Counts a hit or a miss like [`Self::get_or_try_insert`],
    /// so lookup-only callers (e.g. a persistent result store probing
    /// its in-memory table) contribute to the same statistics.
    pub fn get(&self, hash: u64, key: &K) -> Option<V> {
        let stripe = &self.stripes[(hash % self.stripes.len() as u64) as usize];
        let map = stripe.lock().expect("cache stripe poisoned");
        match map.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns the cached value for `key` without touching the hit/miss
    /// counters: maintenance reads (e.g. a store compacting its own
    /// segment from memory) are not lookups and must not inflate the
    /// statistics that prove cache reuse.
    pub fn peek(&self, hash: u64, key: &K) -> Option<V> {
        let stripe = &self.stripes[(hash % self.stripes.len() as u64) as usize];
        let map = stripe.lock().expect("cache stripe poisoned");
        map.get(key).cloned()
    }

    /// Inserts (or replaces) a value without touching the hit/miss
    /// counters: the warm-up path of a caller that already has the value
    /// in hand (e.g. a store loading committed records from disk) must
    /// not be mistaken for cache misses.
    pub fn preload(&self, hash: u64, key: K, value: V) {
        let stripe = &self.stripes[(hash % self.stripes.len() as u64) as usize];
        let mut map = stripe.lock().expect("cache stripe poisoned");
        map.insert(key, value);
    }

    /// Number of cached entries (sums all stripes; takes each lock).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("cache stripe poisoned").len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_and_counts() {
        let cache: StripedCache<String, u32> = StripedCache::new(4);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache
                .get_or_try_insert::<()>(7, &"k".to_string(), || {
                    calls += 1;
                    Ok(41 + calls)
                })
                .unwrap();
            assert_eq!(v, 42);
        }
        assert_eq!(calls, 1, "compute ran exactly once");
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: StripedCache<u8, u8> = StripedCache::new(2);
        let r: Result<u8, &str> = cache.get_or_try_insert(0, &1, || Err("nope"));
        assert_eq!(r.unwrap_err(), "nope");
        assert!(cache.is_empty());
        let v = cache.get_or_try_insert::<&str>(0, &1, || Ok(9)).unwrap();
        assert_eq!(v, 9);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });
    }

    #[test]
    fn colliding_hashes_stay_correct() {
        // Same hash, different keys: both live in one stripe, equality
        // keeps them apart.
        let cache: StripedCache<u64, u64> = StripedCache::new(8);
        for k in 0..100u64 {
            let v = cache.get_or_try_insert::<()>(5, &k, || Ok(k * k)).unwrap();
            assert_eq!(v, k * k);
        }
        for k in 0..100u64 {
            let v = cache
                .get_or_try_insert::<()>(5, &k, || unreachable!())
                .unwrap();
            assert_eq!(v, k * k);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 100,
                misses: 100
            }
        );
    }

    #[test]
    fn concurrent_callers_compute_each_key_once() {
        let cache: StripedCache<u32, u32> = StripedCache::new(16);
        let computed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in 0..50u32 {
                        let v = cache
                            .get_or_try_insert::<()>(u64::from(k), &k, || {
                                computed.fetch_add(1, Ordering::Relaxed);
                                Ok(k + 1)
                            })
                            .unwrap();
                        assert_eq!(v, k + 1);
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 50, "one compute per key");
        let stats = cache.stats();
        assert_eq!(stats.misses, 50);
        assert_eq!(stats.hits + stats.misses, 200);
    }

    #[test]
    fn get_counts_and_preload_does_not() {
        let cache: StripedCache<u64, u32> = StripedCache::new(4);
        assert_eq!(cache.get(9, &9), None);
        cache.preload(9, 9, 7);
        assert_eq!(cache.get(9, &9), Some(7));
        assert_eq!(cache.peek(9, &9), Some(7), "peek sees the value");
        // Preload replaces silently.
        cache.preload(9, 9, 8);
        assert_eq!(cache.get(9, &9), Some(8));
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let mut m = CacheStats { hits: 1, misses: 2 };
        m.merge(&s);
        assert_eq!(m, CacheStats { hits: 4, misses: 3 });
    }
}
