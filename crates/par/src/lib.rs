//! # dr-par — deterministic parallelism primitives
//!
//! The exploration phase is the pipeline's bottleneck: thousands of
//! `(traversal, measured time)` samples, each a full discrete-event
//! simulation. This crate provides the two building blocks the parallel
//! exploration engine is made of, using only `std::thread` (the build
//! environment is offline; no rayon):
//!
//! * [`par_map_stream`] / [`par_map_stream_with`] — a scoped worker pool
//!   that streams items from a (possibly lazy) iterator through a chunked
//!   work queue and returns results **in input order**, so the output is
//!   bit-for-bit independent of the thread count and of scheduling;
//! * [`par_map_stream_isolated`] — the same pool with per-item
//!   `catch_unwind` panic isolation and error quarantine, for chaos runs
//!   where a poisoned evaluation must not take down the exploration;
//! * [`StripedCache`] — a lock-striped concurrent memo table keyed by a
//!   caller-supplied canonical hash, so repeated rollouts across workers
//!   never re-simulate the same traversal;
//! * [`LruCache`] — a fixed-capacity single-owner LRU (index-linked, no
//!   allocation churn at steady state), used per worker for the
//!   simulator's prefix-checkpoint memo.
//!
//! Determinism policy: parallel callers must make each item's result a
//! pure function of the item itself (e.g. derive per-traversal evaluation
//! seeds from a canonical traversal hash, never from a loop index); the
//! pool then guarantees the *ordering* side of the contract.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod lru;
mod pool;

pub use cache::{CacheStats, StripedCache};
pub use lru::LruCache;
pub use pool::{
    par_map_stream, par_map_stream_isolated, par_map_stream_observed, par_map_stream_with,
    par_map_stream_with_traced, resolve_threads, split_budget, ItemOutcome, PoolObserver,
    PoolOutcome,
};
