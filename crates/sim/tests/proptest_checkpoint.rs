//! Property tests for checkpoint/resume determinism: for arbitrary
//! schedules out of a halo-exchange decision space, arbitrary split
//! points, arbitrary sample seeds, and with or without the `light`
//! fault preset, resuming from a cached snapshot must reproduce the
//! cold run bit for bit — outcome, statistics, and fault counters.
//!
//! Budget platforms are deliberately avoided: a virtual-time budget
//! trip's diagnostic detail is the one documented divergence between
//! the memoized and cold paths (see `dr_sim::memo`), and the pipeline
//! never enables the memo there.

use dr_dag::{build_schedule, CommKey, CostKey, DagBuilder, DecisionSpace, OpSpec};
use dr_sim::{
    execute_checkpointed, execute_seeded, CompiledProgram, FaultConfig, FaultPlan, Platform,
    SimMemo, TableWorkload,
};
use proptest::prelude::*;

/// The halo-exchange space the schedules are drawn from: two kernels
/// feeding a send/recv/wait quad plus post-processing, on two streams.
fn halo_space() -> (DecisionSpace, TableWorkload) {
    let mut b = DagBuilder::new();
    let key = CommKey::new("halo");
    let pre = b.add("pre", OpSpec::CpuWork(CostKey::new("pre")));
    let k1 = b.add("k1", OpSpec::GpuKernel(CostKey::new("k1")));
    let k2 = b.add("k2", OpSpec::GpuKernel(CostKey::new("k2")));
    let ps = b.add("PostSends", OpSpec::PostSends(key.clone()));
    let pr = b.add("PostRecvs", OpSpec::PostRecvs(key.clone()));
    let ws = b.add("WaitSends", OpSpec::WaitSends(key.clone()));
    let wr = b.add("WaitRecvs", OpSpec::WaitRecvs(key));
    let post = b.add("post", OpSpec::CpuWork(CostKey::new("post")));
    b.edge(pre, k1);
    b.edge(pre, k2);
    b.edge(k1, ps);
    b.edge(k2, ps);
    b.edge(ps, ws);
    b.edge(pr, wr);
    b.edge(ps, wr);
    // Every rank runs the same schedule, so a traversal that waits on
    // sends before posting recvs deadlocks all ranks symmetrically.
    // Pin PostRecvs before WaitSends to keep the whole space runnable.
    b.edge(pr, ws);
    b.edge(wr, post);
    let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
    let mut w = TableWorkload::new(3);
    w.cost_all("pre", 4e-5);
    w.cost_all("k1", 8e-5);
    w.cost_all("k2", 6e-5);
    w.cost_all("post", 3e-5);
    w.comm_all_to_all("halo", 1 << 16);
    (sp, w)
}

/// Compiles the `pick`-th enumerated traversal (modulo the space size).
fn program(pick: usize) -> CompiledProgram {
    let (sp, w) = halo_space();
    let all: Vec<_> = sp.enumerate().collect();
    let t = &all[pick % all.len()];
    CompiledProgram::compile(&build_schedule(&sp, t), &w).unwrap()
}

/// A noisy, budget-free platform, optionally under the `light` fault
/// preset (the `DR_FAULTS=light` configuration), with the plan keyed by
/// `eval_seed` exactly as the pipeline derives it.
fn platform(light_faults: bool, eval_seed: u64) -> Platform {
    let base = Platform::perlmutter_like();
    if light_faults {
        base.with_faults(FaultPlan::derive(&FaultConfig::light(), eval_seed))
    } else {
        base
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn resume_is_bit_identical_to_cold_for_arbitrary_splits(
        pick in 0usize..64,
        splits in proptest::collection::vec(0usize..48, 0..6),
        sample_seed in any::<u64>(),
        light_faults in any::<bool>(),
        eval_seed in any::<u64>(),
    ) {
        let prog = program(pick);
        let platform = platform(light_faults, eval_seed);
        let cold = execute_seeded(&prog, &platform, sample_seed).unwrap();

        // Cold-fill pass: snapshots every in-range split point.
        let mut memo = SimMemo::default();
        let filled =
            execute_checkpointed(&prog, &platform, sample_seed, &splits, &mut memo).unwrap();
        prop_assert_eq!(&filled, &cold, "cold-fill diverged (splits {:?})", &splits);

        // Warm pass: resumes from the deepest cached snapshot.
        let resumed =
            execute_checkpointed(&prog, &platform, sample_seed, &splits, &mut memo).unwrap();
        prop_assert_eq!(&resumed, &cold, "resume diverged (splits {:?})", &splits);
        if splits.iter().any(|&s| s > 0 && s < prog.names.len()) {
            prop_assert!(memo.hits() > 0, "in-range split never resumed");
        }
    }

    #[test]
    fn snapshots_are_suffix_independent(
        pick_a in 0usize..64,
        pick_b in 0usize..64,
        sample_seed in any::<u64>(),
        light_faults in any::<bool>(),
        eval_seed in any::<u64>(),
    ) {
        // Sharing one memo across two different schedules of the same
        // space must leave both bit-identical to their cold runs: a
        // snapshot depends only on the prefix that produced it.
        let a = program(pick_a);
        let b = program(pick_b);
        let platform = platform(light_faults, eval_seed);
        let mut memo = SimMemo::default();
        for prog in [&a, &b, &a] {
            let cold = execute_seeded(prog, &platform, sample_seed).unwrap();
            let boundaries = prog.checkpoint_boundaries();
            let memoed =
                execute_checkpointed(prog, &platform, sample_seed, &boundaries, &mut memo)
                    .unwrap();
            prop_assert_eq!(memoed, cold);
        }
    }
}
