//! Property tests for trace utilization invariants: per-resource busy
//! time never exceeds the makespan, utilization is a fraction, and for
//! non-overlapping spans busy time equals the sum of span durations.

use dr_sim::{Resource, Trace, TraceEvent};
use proptest::prelude::*;

fn resource(idx: usize) -> Resource {
    match idx {
        0 => Resource::Cpu,
        s => Resource::Stream(s - 1),
    }
}

/// Arbitrary (possibly overlapping) spans over 3 ranks × {cpu, 2 streams}.
fn arbitrary_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    collection::vec((0usize..3, 0usize..3, 0f64..1.0, 1e-6f64..0.5), 1..40).prop_map(|tuples| {
        tuples
            .into_iter()
            .map(|(rank, res, start, dur)| TraceEvent {
                rank,
                name: "op".to_string(),
                resource: resource(res),
                start,
                end: start + dur,
            })
            .collect()
    })
}

/// Spans laid out back-to-back with gaps, so no two spans on the same
/// resource overlap.
fn disjoint_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    collection::vec((0usize..3, 0usize..3, 1e-6f64..0.3, 0f64..0.2), 1..40).prop_map(|tuples| {
        // One layout cursor per (rank, resource) lane.
        let mut cursor = [[0f64; 3]; 3];
        tuples
            .into_iter()
            .map(|(rank, res, dur, gap)| {
                let start = cursor[rank][res] + gap;
                cursor[rank][res] = start + dur;
                TraceEvent {
                    rank,
                    name: "op".to_string(),
                    resource: resource(res),
                    start,
                    end: start + dur,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn busy_bounded_by_makespan_and_utilization_is_a_fraction(
        events in arbitrary_events(),
    ) {
        let trace = Trace { events };
        let makespan = trace.makespan();
        for u in trace.utilization() {
            prop_assert!(
                u.busy <= makespan * (1.0 + 1e-12),
                "busy {} > makespan {makespan}",
                u.busy
            );
            prop_assert!((0.0..=1.0 + 1e-12).contains(&u.utilization));
            prop_assert!((u.busy - u.utilization * makespan).abs() <= 1e-9 * makespan);
        }
    }

    #[test]
    fn disjoint_spans_sum_exactly(events in disjoint_events()) {
        let trace = Trace { events };
        for u in trace.utilization() {
            let expect: f64 = trace
                .events
                .iter()
                .filter(|e| e.rank == u.rank && e.resource == u.resource)
                .map(|e| e.duration())
                .sum();
            prop_assert!(
                (u.busy - expect).abs() <= 1e-9 * expect.max(1.0),
                "busy {} != summed durations {expect}",
                u.busy
            );
        }
    }

    #[test]
    fn every_active_resource_is_reported_once(events in arbitrary_events()) {
        let trace = Trace { events };
        let us = trace.utilization();
        let mut keys: Vec<(usize, Resource)> =
            trace.events.iter().map(|e| (e.rank, e.resource)).collect();
        keys.sort_by_key(|&(r, res)| (r, match res {
            Resource::Cpu => 0,
            Resource::Stream(s) => 1 + s,
        }));
        keys.dedup();
        let reported: Vec<(usize, Resource)> =
            us.iter().map(|u| (u.rank, u.resource)).collect();
        prop_assert_eq!(reported, keys);
    }
}
