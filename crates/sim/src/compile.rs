//! Compilation of an executable [`Schedule`] against a [`Workload`]:
//! symbolic keys are resolved once into per-rank instruction lists so that
//! the hot benchmarking loop never touches strings or hash maps.

use crate::workload::Workload;
use dr_dag::{CommKey, CostKey, Schedule, ScheduleAction};

/// Simulation errors: compilation failures, malformed programs, and
/// runtime deadlock.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The workload does not define a duration for this key on this rank.
    MissingCost {
        /// Rank whose cost lookup failed.
        rank: usize,
        /// The unresolved key.
        key: CostKey,
    },
    /// The workload does not define a communication pattern for this key.
    MissingComm {
        /// Rank whose pattern lookup failed.
        rank: usize,
        /// The unresolved key.
        key: CommKey,
    },
    /// Rank `src` sends to `dst` under `key` but `dst` posts no matching
    /// receive (or sizes disagree).
    AsymmetricComm {
        /// The communication key.
        key: CommKey,
        /// Sending rank.
        src: usize,
        /// Receiving rank with no matching receive.
        dst: usize,
    },
    /// A wait executed before the matching post on the same rank — the
    /// schedule is malformed (the DAG should order posts before waits).
    WaitBeforePost {
        /// Rank where the malformed order was observed.
        rank: usize,
        /// Name of the offending instruction.
        name: String,
    },
    /// No rank can make progress: every unfinished rank is blocked waiting
    /// for a message whose sender never posts. The paper avoids this by
    /// construction (DAG edges); the simulator detects it.
    Deadlock {
        /// Human-readable description of the blocked ranks.
        detail: String,
    },
    /// The schedule references more ranks than the workload provides.
    NoRanks,
    /// A communication key is used by both point-to-point operations and
    /// a collective; the matching semantics are incompatible.
    MixedCommKey {
        /// The offending key.
        key: CommKey,
    },
    /// A collective key's pattern must be exactly one `sends` entry
    /// (the contribution size) and no `recvs`.
    InvalidCollective {
        /// The offending key.
        key: CommKey,
        /// Rank whose pattern is malformed.
        rank: usize,
    },
    /// The execution watchdog fired: the run exceeded the platform's
    /// step or virtual-time budget (a fault-induced livelock or runaway
    /// schedule) and was killed instead of spinning.
    Budget {
        /// Instructions retired when the watchdog fired.
        steps: u64,
        /// Which limit was exceeded, human-readable.
        detail: String,
    },
    /// An evaluation panicked and was caught by a resilience layer; the
    /// payload is preserved as text.
    Panicked {
        /// The stringified panic payload.
        detail: String,
    },
    /// A chaos run could not produce a usable result: the fault
    /// configuration was invalid, or fault injection quarantined every
    /// evaluation.
    Faulted {
        /// Human-readable description of what went wrong.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MissingCost { rank, key } => {
                write!(f, "no cost for key {key} on rank {rank}")
            }
            SimError::MissingComm { rank, key } => {
                write!(f, "no communication pattern for key {key} on rank {rank}")
            }
            SimError::AsymmetricComm { key, src, dst } => {
                write!(
                    f,
                    "comm {key}: rank {src} sends to {dst} with no matching receive"
                )
            }
            SimError::WaitBeforePost { rank, name } => {
                write!(f, "rank {rank}: {name} executed before its matching post")
            }
            SimError::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            SimError::NoRanks => write!(f, "workload must have at least one rank"),
            SimError::MixedCommKey { key } => {
                write!(f, "comm key {key} mixes point-to-point and collective use")
            }
            SimError::Budget { steps, detail } => {
                write!(
                    f,
                    "execution budget exhausted after {steps} steps: {detail}"
                )
            }
            SimError::Panicked { detail } => {
                write!(f, "evaluation panicked: {detail}")
            }
            SimError::Faulted { detail } => {
                write!(f, "fault injection: {detail}")
            }
            SimError::InvalidCollective { key, rank } => {
                write!(
                    f,
                    "collective {key}: rank {rank} must have one send and no recvs"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A fully resolved instruction (durations in seconds).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Synchronous CPU work.
    CpuWork {
        /// Duration the CPU is busy.
        dur: f64,
    },
    /// Kernel launch into a stream.
    KernelLaunch {
        /// Target stream.
        stream: usize,
        /// Noiseless kernel body duration.
        dur: f64,
    },
    /// Post all sends of a communication pattern.
    PostSends {
        /// Index into [`CompiledProgram::comms`].
        comm: usize,
    },
    /// Post all receives of a communication pattern.
    PostRecvs {
        /// Index into [`CompiledProgram::comms`].
        comm: usize,
    },
    /// Block until all sends of the pattern complete.
    WaitSends {
        /// Index into [`CompiledProgram::comms`].
        comm: usize,
    },
    /// Block until all receives of the pattern complete.
    WaitRecvs {
        /// Index into [`CompiledProgram::comms`].
        comm: usize,
    },
    /// Blocking collective reduction; completes once every rank has
    /// entered and the reduction tree has run.
    AllReduce {
        /// Index into [`CompiledProgram::comms`].
        comm: usize,
    },
    /// `cudaEventRecord`.
    EventRecord {
        /// Recorded event.
        event: usize,
        /// Stream whose tail is captured.
        stream: usize,
    },
    /// `cudaEventSynchronize` over several events.
    EventSync {
        /// Events that must complete.
        events: Box<[usize]>,
    },
    /// `cudaStreamWaitEvent`.
    StreamWaitEvent {
        /// Waiting stream.
        stream: usize,
        /// Event waited on.
        event: usize,
    },
    /// Device-wide synchronization (program end).
    DeviceSync,
}

/// One communication pattern resolved for every rank.
#[derive(Debug, Clone)]
pub struct CommTable {
    /// The symbolic key, kept for error messages.
    pub key: CommKey,
    /// Per rank: `(peer, bytes)` sends.
    pub sends: Vec<Vec<(usize, u64)>>,
    /// Per rank: `(peer, bytes)` receives.
    pub recvs: Vec<Vec<(usize, u64)>>,
}

/// A schedule resolved against a workload: ready to execute repeatedly.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Number of SPMD ranks.
    pub num_ranks: usize,
    /// Streams referenced by the schedule.
    pub num_streams: usize,
    /// CUDA events referenced by the schedule.
    pub num_events: usize,
    /// Per-rank instruction list (same length and structure across ranks;
    /// only durations differ).
    pub instrs: Vec<Vec<Instr>>,
    /// Instruction names (shared across ranks), parallel to each rank's
    /// instruction list.
    pub names: Vec<String>,
    /// Resolved communication tables.
    pub comms: Vec<CommTable>,
    /// `prefix_hashes[i]` identifies the executable prefix `instrs[..][..i]`
    /// — every rank's first `i` instructions plus the full table of every
    /// comm first referenced there. Two programs with equal hashes at `i`
    /// execute that prefix identically, which is what keys simulator
    /// checkpoints in the prefix memo. Length `names.len() + 1`.
    pub prefix_hashes: Vec<u64>,
}

impl CompiledProgram {
    /// Resolves `schedule` against `workload`, validating that every key
    /// exists and that send/receive patterns match pairwise.
    pub fn compile(schedule: &Schedule, workload: &dyn Workload) -> Result<Self, SimError> {
        let num_ranks = workload.num_ranks();
        if num_ranks == 0 {
            return Err(SimError::NoRanks);
        }

        // Collect communication keys in first-use order.
        let mut comm_keys: Vec<CommKey> = Vec::new();
        let comm_idx = |key: &CommKey, comm_keys: &mut Vec<CommKey>| -> usize {
            if let Some(i) = comm_keys.iter().position(|k| k == key) {
                i
            } else {
                comm_keys.push(key.clone());
                comm_keys.len() - 1
            }
        };

        let mut names = Vec::with_capacity(schedule.items.len());
        let mut proto: Vec<(usize, &ScheduleAction)> = Vec::with_capacity(schedule.items.len());
        for (i, item) in schedule.items.iter().enumerate() {
            names.push(item.name.clone());
            proto.push((i, &item.action));
        }

        let mut instrs: Vec<Vec<Instr>> = Vec::with_capacity(num_ranks);
        for rank in 0..num_ranks {
            let mut list = Vec::with_capacity(proto.len());
            for &(_, action) in &proto {
                let instr = match action {
                    ScheduleAction::CpuWork(key) => Instr::CpuWork {
                        dur: workload
                            .cost(rank, key)
                            .ok_or_else(|| SimError::MissingCost {
                                rank,
                                key: key.clone(),
                            })?,
                    },
                    ScheduleAction::KernelLaunch { stream, cost } => Instr::KernelLaunch {
                        stream: *stream,
                        dur: workload
                            .cost(rank, cost)
                            .ok_or_else(|| SimError::MissingCost {
                                rank,
                                key: cost.clone(),
                            })?,
                    },
                    ScheduleAction::PostSends(key) => Instr::PostSends {
                        comm: comm_idx(key, &mut comm_keys),
                    },
                    ScheduleAction::PostRecvs(key) => Instr::PostRecvs {
                        comm: comm_idx(key, &mut comm_keys),
                    },
                    ScheduleAction::WaitSends(key) => Instr::WaitSends {
                        comm: comm_idx(key, &mut comm_keys),
                    },
                    ScheduleAction::WaitRecvs(key) => Instr::WaitRecvs {
                        comm: comm_idx(key, &mut comm_keys),
                    },
                    ScheduleAction::AllReduce(key) => Instr::AllReduce {
                        comm: comm_idx(key, &mut comm_keys),
                    },
                    ScheduleAction::EventRecord { event, stream } => Instr::EventRecord {
                        event: *event,
                        stream: *stream,
                    },
                    ScheduleAction::EventSync { events } => Instr::EventSync {
                        events: events.clone().into_boxed_slice(),
                    },
                    ScheduleAction::StreamWaitEvent { stream, event } => Instr::StreamWaitEvent {
                        stream: *stream,
                        event: *event,
                    },
                    ScheduleAction::DeviceSync => Instr::DeviceSync,
                };
                list.push(instr);
            }
            instrs.push(list);
        }

        // Classify each communication key by how the program uses it:
        // point-to-point matching and collectives validate differently.
        let mut p2p_use = vec![false; comm_keys.len()];
        let mut coll_use = vec![false; comm_keys.len()];
        for instr in &instrs[0] {
            match instr {
                Instr::PostSends { comm }
                | Instr::PostRecvs { comm }
                | Instr::WaitSends { comm }
                | Instr::WaitRecvs { comm } => p2p_use[*comm] = true,
                Instr::AllReduce { comm } => coll_use[*comm] = true,
                _ => {}
            }
        }
        for (i, key) in comm_keys.iter().enumerate() {
            if p2p_use[i] && coll_use[i] {
                return Err(SimError::MixedCommKey { key: key.clone() });
            }
        }

        // Resolve and validate communication tables.
        let mut comms = Vec::with_capacity(comm_keys.len());
        for (key_idx, key) in comm_keys.iter().enumerate() {
            let mut sends = Vec::with_capacity(num_ranks);
            let mut recvs = Vec::with_capacity(num_ranks);
            for rank in 0..num_ranks {
                let pat = workload
                    .comm(rank, key)
                    .ok_or_else(|| SimError::MissingComm {
                        rank,
                        key: key.clone(),
                    })?;
                sends.push(pat.sends);
                recvs.push(pat.recvs);
            }
            if coll_use[key_idx] {
                // Collective: one contribution-size entry per rank.
                for rank in 0..num_ranks {
                    if sends[rank].len() != 1 || !recvs[rank].is_empty() {
                        return Err(SimError::InvalidCollective {
                            key: key.clone(),
                            rank,
                        });
                    }
                }
                comms.push(CommTable {
                    key: key.clone(),
                    sends,
                    recvs,
                });
                continue;
            }
            // Pairwise matching: each send must have a matching receive.
            #[allow(clippy::needless_range_loop)] // indices are the clearest form here
            for src in 0..num_ranks {
                for &(dst, bytes) in &sends[src] {
                    let matched =
                        dst < num_ranks && recvs[dst].iter().any(|&(p, b)| p == src && b == bytes);
                    if !matched {
                        return Err(SimError::AsymmetricComm {
                            key: key.clone(),
                            src,
                            dst,
                        });
                    }
                }
            }
            #[allow(clippy::needless_range_loop)] // indices are the clearest form here
            for dst in 0..num_ranks {
                for &(src, bytes) in &recvs[dst] {
                    let matched =
                        src < num_ranks && sends[src].iter().any(|&(p, b)| p == dst && b == bytes);
                    if !matched {
                        return Err(SimError::AsymmetricComm {
                            key: key.clone(),
                            src: dst,
                            dst: src,
                        });
                    }
                }
            }
            comms.push(CommTable {
                key: key.clone(),
                sends,
                recvs,
            });
        }

        let prefix_hashes = prefix_hashes(num_ranks, &instrs, &comms);
        Ok(CompiledProgram {
            num_ranks,
            num_streams: schedule.num_streams,
            num_events: schedule.num_events,
            instrs,
            names,
            comms,
            prefix_hashes,
        })
    }

    /// Instruction indices at which the prefix memo snapshots executor
    /// state: quartiles of the program, each strictly inside `(0, n)`.
    /// Empty for programs too short to be worth checkpointing.
    pub fn checkpoint_boundaries(&self) -> Vec<usize> {
        let n = self.names.len();
        let mut out = Vec::with_capacity(3);
        for b in [n / 4, n / 2, 3 * n / 4] {
            if b > 0 && b < n && out.last() != Some(&b) {
                out.push(b);
            }
        }
        out
    }
}

/// Rolling prefix hashes: FNV-1a-style folding over a stable encoding of
/// each instruction (all ranks at index `i`, durations bit-exact) plus
/// each comm table at its first reference, finished with a splitmix64
/// avalanche per prefix length.
fn prefix_hashes(num_ranks: usize, instrs: &[Vec<Instr>], comms: &[CommTable]) -> Vec<u64> {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    let n = instrs.first().map_or(0, Vec::len);
    let mut hashes = Vec::with_capacity(n + 1);
    let mut h = fold(OFFSET, num_ranks as u64);
    hashes.push(finish(h));
    let mut comm_hashed = vec![false; comms.len()];
    for i in 0..n {
        for list in instrs {
            h = fold_instr(h, &list[i]);
        }
        if let Some(&c) = comm_of(&instrs[0][i]) {
            if !std::mem::replace(&mut comm_hashed[c], true) {
                h = fold_comm(h, &comms[c]);
            }
        }
        hashes.push(finish(h));
    }
    hashes
}

fn comm_of(instr: &Instr) -> Option<&usize> {
    match instr {
        Instr::PostSends { comm }
        | Instr::PostRecvs { comm }
        | Instr::WaitSends { comm }
        | Instr::WaitRecvs { comm }
        | Instr::AllReduce { comm } => Some(comm),
        _ => None,
    }
}

fn fold(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(0x0000_0100_0000_01B3)
}

fn finish(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fold_instr(h: u64, instr: &Instr) -> u64 {
    match instr {
        Instr::CpuWork { dur } => fold(fold(h, 1), dur.to_bits()),
        Instr::KernelLaunch { stream, dur } => {
            fold(fold(fold(h, 2), *stream as u64), dur.to_bits())
        }
        Instr::PostSends { comm } => fold(fold(h, 3), *comm as u64),
        Instr::PostRecvs { comm } => fold(fold(h, 4), *comm as u64),
        Instr::WaitSends { comm } => fold(fold(h, 5), *comm as u64),
        Instr::WaitRecvs { comm } => fold(fold(h, 6), *comm as u64),
        Instr::AllReduce { comm } => fold(fold(h, 7), *comm as u64),
        Instr::EventRecord { event, stream } => {
            fold(fold(fold(h, 8), *event as u64), *stream as u64)
        }
        Instr::EventSync { events } => {
            let mut h = fold(fold(h, 9), events.len() as u64);
            for &e in events.iter() {
                h = fold(h, e as u64);
            }
            h
        }
        Instr::StreamWaitEvent { stream, event } => {
            fold(fold(fold(h, 10), *stream as u64), *event as u64)
        }
        Instr::DeviceSync => fold(h, 11),
    }
}

fn fold_comm(mut h: u64, table: &CommTable) -> u64 {
    // The key's identity matters: the fault plan addresses messages by a
    // hash of the key string, so two prefixes identical except for a comm
    // key must not share checkpoints under a fault plan.
    h = fold(h, table.key.0.len() as u64);
    for b in table.key.0.bytes() {
        h = fold(h, b as u64);
    }
    for side in [&table.sends, &table.recvs] {
        for per_rank in side {
            h = fold(h, per_rank.len() as u64);
            for &(peer, bytes) in per_rank {
                h = fold(fold(h, peer as u64), bytes);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{CommPattern, TableWorkload};
    use dr_dag::{build_schedule, DagBuilder, DecisionSpace, OpSpec};

    fn mini_schedule() -> (DecisionSpace, Schedule) {
        let mut b = DagBuilder::new();
        let k = b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
        let ps = b.add("PostSends", OpSpec::PostSends(CommKey::new("x")));
        let pr = b.add("PostRecvs", OpSpec::PostRecvs(CommKey::new("x")));
        let ws = b.add("WaitSends", OpSpec::WaitSends(CommKey::new("x")));
        let wr = b.add("WaitRecvs", OpSpec::WaitRecvs(CommKey::new("x")));
        b.edge(k, ps);
        b.edge(ps, ws);
        b.edge(pr, wr);
        b.edge(ps, wr);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        (sp, s)
    }

    fn mini_workload() -> TableWorkload {
        let mut w = TableWorkload::new(2);
        w.cost_all("k", 1e-3);
        w.comm_all_to_all("x", 4096);
        w
    }

    #[test]
    fn compiles_and_shares_structure_across_ranks() {
        let (_, s) = mini_schedule();
        let p = CompiledProgram::compile(&s, &mini_workload()).unwrap();
        assert_eq!(p.num_ranks, 2);
        assert_eq!(p.instrs[0].len(), p.instrs[1].len());
        assert_eq!(p.names.len(), p.instrs[0].len());
        assert_eq!(p.comms.len(), 1);
    }

    #[test]
    fn missing_cost_is_reported() {
        let (_, s) = mini_schedule();
        let mut w = TableWorkload::new(2);
        w.comm_all_to_all("x", 4096);
        match CompiledProgram::compile(&s, &w) {
            Err(SimError::MissingCost { key, .. }) => assert_eq!(key, CostKey::new("k")),
            other => panic!("expected MissingCost, got {other:?}"),
        }
    }

    #[test]
    fn missing_comm_is_reported() {
        let (_, s) = mini_schedule();
        let mut w = TableWorkload::new(2);
        w.cost_all("k", 1e-3);
        assert!(matches!(
            CompiledProgram::compile(&s, &w),
            Err(SimError::MissingComm { .. })
        ));
    }

    #[test]
    fn asymmetric_comm_is_rejected() {
        let (_, s) = mini_schedule();
        let mut w = TableWorkload::new(2);
        w.cost_all("k", 1e-3);
        w.comm_on(
            0,
            "x",
            CommPattern {
                sends: vec![(1, 100)],
                recvs: vec![(1, 100)],
            },
        );
        // Rank 1 receives the wrong size.
        w.comm_on(
            1,
            "x",
            CommPattern {
                sends: vec![(0, 100)],
                recvs: vec![(0, 999)],
            },
        );
        assert!(matches!(
            CompiledProgram::compile(&s, &w),
            Err(SimError::AsymmetricComm { .. })
        ));
    }

    #[test]
    fn zero_rank_workload_rejected() {
        let (_, s) = mini_schedule();
        let w = TableWorkload::new(0);
        assert!(matches!(
            CompiledProgram::compile(&s, &w),
            Err(SimError::NoRanks)
        ));
    }
}
