//! Platform cost model: the simulator's substitute for the paper's
//! Perlmutter node (Table I).
//!
//! The reproduction has no A100s or Cray-MPICH; instead the platform is a
//! parametric first-order model of the behaviours that make operation
//! order and stream assignment matter: host-side launch overheads, stream
//! FIFO serialization, inter-stream kernel contention, eager/rendezvous
//! point-to-point messaging, and blocking waits.
//!
//! The platform also carries the *fault hook*: an optional
//! [`FaultPlan`](dr_fault::FaultPlan) consulted by the execution engine
//! (stragglers, message delay/drop, kernel spikes) and the benchmarking
//! protocol (measurement outliers), plus a watchdog budget bounding any
//! single execution. Both default to "off", leaving fault-free behavior
//! bit-for-bit unchanged.

use dr_fault::FaultPlan;

/// Multiplicative log-normal measurement noise. Real benchmarks jitter;
/// the labeling pipeline (convolution + peak prominence) is designed to be
/// robust to it, so the simulator reproduces it deterministically from a
/// seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of `ln(factor)`; 0 disables noise.
    pub sigma: f64,
}

impl NoiseModel {
    /// No measurement noise (exact repeatable timings).
    pub const NONE: NoiseModel = NoiseModel { sigma: 0.0 };

    /// Draws a multiplicative noise factor `exp(sigma · z)`, `z ~ N(0,1)`,
    /// using the Box-Muller transform on two uniform draws.
    pub fn factor(&self, rng: &mut impl rand::Rng) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.sigma * z).exp()
    }

    /// Position-keyed variant of [`factor`](NoiseModel::factor): the same
    /// log-normal factor, but derived purely from `(seed, key)` with a
    /// splitmix64 avalanche instead of a sequential generator. Because
    /// the draw is a pure function of its position key, it is independent
    /// of execution interleaving — the property that makes resuming a run
    /// from a mid-execution checkpoint bit-identical to a cold run.
    pub fn factor_keyed(&self, seed: u64, key: u64) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let mut s = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        // Uniforms on (0, 1] / [0, 1): same 53-bit mantissa construction
        // as the `rand` shim's `Standard` f64 distribution.
        let u1 = (((a >> 11) as f64) * F64_UNIT).max(f64::MIN_POSITIVE);
        let u2 = ((b >> 11) as f64) * F64_UNIT;
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.sigma * z).exp()
    }
}

/// `2^-53`: converts a 53-bit integer into a uniform f64 in `[0, 1)`.
const F64_UNIT: f64 = 1.0 / (1u64 << 53) as f64;

/// The splitmix64 step: advances `state` and returns an avalanched output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// First-order cost model of a multi-rank GPU node. All times are seconds,
/// bandwidths bytes/second.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// CPU time consumed by launching a kernel (`cudaLaunchKernel`).
    pub kernel_launch_overhead: f64,
    /// CPU time consumed by `cudaEventRecord`.
    pub event_record_overhead: f64,
    /// CPU time consumed by `cudaEventSynchronize` beyond the actual wait.
    pub event_sync_overhead: f64,
    /// CPU time consumed by `cudaStreamWaitEvent`.
    pub stream_wait_overhead: f64,
    /// CPU time consumed by posting one `MPI_Isend`.
    pub isend_overhead: f64,
    /// CPU time consumed by posting one `MPI_Irecv`.
    pub irecv_overhead: f64,
    /// CPU time consumed by an `MPI_Wait` call beyond the actual wait.
    pub wait_overhead: f64,
    /// Per-message network/PCIe latency.
    pub net_latency: f64,
    /// Link bandwidth for message payloads.
    pub net_bandwidth: f64,
    /// Messages at or below this size use the eager protocol (the send
    /// buffer is captured immediately and the send completes without a
    /// matching receive); larger messages rendezvous (the transfer starts
    /// only once both sides have posted).
    pub eager_threshold: u64,
    /// Inter-stream kernel contention: while a kernel overlaps a kernel in
    /// another stream *of the same GPU*, it accrues `contention` extra
    /// seconds per second of overlap (0 = perfect concurrency, 1 = no
    /// benefit over serialization).
    pub gpu_contention: f64,
    /// Streams per GPU: streams `0..streams_per_gpu` live on GPU 0, the
    /// next block on GPU 1, and so on (paper future work: "extending
    /// resource assignment to include multiple GPUs or NUMA nodes").
    /// `usize::MAX` (the default) models a single GPU.
    pub streams_per_gpu: usize,
    /// Extra latency of a `cudaStreamWaitEvent` whose event was recorded
    /// on a *different GPU* (peer synchronization crosses NVLink/PCIe).
    pub cross_gpu_sync_latency: f64,
    /// Measurement noise applied to kernel/CPU durations and transfers.
    pub noise: NoiseModel,
    /// Deterministic fault-injection plan consulted during execution and
    /// benchmarking; `None` (the default) injects nothing.
    pub faults: Option<FaultPlan>,
    /// Watchdog: maximum instructions a single execution may retire
    /// before it is killed with [`SimError::Budget`](crate::SimError);
    /// `0` = unlimited.
    pub max_steps: u64,
    /// Watchdog: maximum virtual seconds a single execution may span
    /// before it is killed with [`SimError::Budget`](crate::SimError);
    /// `0.0` = unlimited.
    pub max_virtual_time: f64,
}

impl Platform {
    /// A Perlmutter-like single node: A100-class GPUs on PCIe 4.0, one
    /// NIC, Cray-MPICH-like eager threshold. Values are first-order
    /// magnitudes from public microbenchmarks, not measurements; the
    /// reproduction's target is the *shape* of the design-space landscape.
    pub fn perlmutter_like() -> Self {
        Platform {
            kernel_launch_overhead: 5e-6,
            event_record_overhead: 1e-6,
            event_sync_overhead: 2e-6,
            stream_wait_overhead: 1e-6,
            isend_overhead: 1.5e-6,
            irecv_overhead: 1.0e-6,
            wait_overhead: 1.0e-6,
            net_latency: 4e-6,
            net_bandwidth: 12e9,
            eager_threshold: 8 * 1024,
            gpu_contention: 0.25,
            streams_per_gpu: usize::MAX,
            cross_gpu_sync_latency: 8e-6,
            noise: NoiseModel { sigma: 0.02 },
            faults: None,
            max_steps: 0,
            max_virtual_time: 0.0,
        }
    }

    /// The same platform with a fault plan installed.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The same platform with a watchdog budget: at most `max_steps`
    /// retired instructions and `max_virtual_time` simulated seconds per
    /// execution (`0` / `0.0` = unlimited).
    pub fn with_budget(mut self, max_steps: u64, max_virtual_time: f64) -> Self {
        self.max_steps = max_steps;
        self.max_virtual_time = max_virtual_time;
        self
    }

    /// The GPU a stream belongs to.
    pub fn gpu_of(&self, stream: usize) -> usize {
        stream / self.streams_per_gpu.max(1)
    }

    /// A Summit-like node: NVLink-class interconnect (higher bandwidth,
    /// lower effective eager threshold), slightly slower host, stronger
    /// kernel concurrency.
    pub fn summit_like() -> Self {
        Platform {
            kernel_launch_overhead: 7e-6,
            net_latency: 2e-6,
            net_bandwidth: 23e9,
            eager_threshold: 4 * 1024,
            gpu_contention: 0.15,
            ..Platform::perlmutter_like()
        }
    }

    /// A commodity Ethernet cluster: order-of-magnitude slower network,
    /// large latency — communication dominates, so overlap rules carry
    /// far more weight.
    pub fn commodity_cluster() -> Self {
        Platform {
            net_latency: 40e-6,
            net_bandwidth: 1.2e9,
            eager_threshold: 64 * 1024,
            ..Platform::perlmutter_like()
        }
    }

    /// The same platform with noise disabled (for deterministic tests and
    /// golden outputs).
    pub fn noiseless(mut self) -> Self {
        self.noise = NoiseModel::NONE;
        self
    }

    /// Transfer duration for a payload once the transfer has started.
    pub fn wire_time(&self, bytes: u64) -> f64 {
        self.net_latency + bytes as f64 / self.net_bandwidth
    }

    /// Whether a message of this size is sent eagerly.
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_threshold
    }

    /// Duration of a tree-based collective reduction across `ranks`
    /// participants once all have entered: `ceil(log2 P)` rounds of one
    /// message each.
    pub fn collective_time(&self, ranks: usize, bytes: u64) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let rounds = (ranks as f64).log2().ceil();
        rounds * self.wire_time(bytes)
    }
}

impl Default for Platform {
    fn default() -> Self {
        Platform::perlmutter_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_noise_is_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(NoiseModel::NONE.factor(&mut rng), 1.0);
    }

    #[test]
    fn noise_is_positive_and_near_one() {
        let mut rng = SmallRng::seed_from_u64(7);
        let nm = NoiseModel { sigma: 0.05 };
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = nm.factor(&mut rng);
            assert!(f > 0.0);
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!(
            (mean - 1.0).abs() < 0.01,
            "lognormal mean ~ exp(sigma^2/2): {mean}"
        );
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let nm = NoiseModel { sigma: 0.1 };
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(nm.factor(&mut a), nm.factor(&mut b));
        }
    }

    #[test]
    fn keyed_noise_is_pure_positive_and_near_one() {
        let nm = NoiseModel { sigma: 0.05 };
        // Pure: same (seed, key) always yields the same factor.
        assert_eq!(nm.factor_keyed(42, 7), nm.factor_keyed(42, 7));
        // Distinct keys and seeds decorrelate.
        assert_ne!(nm.factor_keyed(42, 7), nm.factor_keyed(42, 8));
        assert_ne!(nm.factor_keyed(42, 7), nm.factor_keyed(43, 7));
        // Log-normal shape: positive, mean near exp(sigma^2/2) ~ 1.
        let mut sum = 0.0;
        for key in 0..10_000u64 {
            let f = nm.factor_keyed(9, key);
            assert!(f > 0.0);
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 1.0).abs() < 0.01, "lognormal mean: {mean}");
        // Zero sigma stays exact.
        assert_eq!(NoiseModel::NONE.factor_keyed(1, 2), 1.0);
    }

    #[test]
    fn wire_time_scales_with_bytes() {
        let p = Platform::perlmutter_like();
        assert!(p.wire_time(1 << 20) > p.wire_time(1 << 10));
        assert!((p.wire_time(0) - p.net_latency).abs() < 1e-15);
    }

    #[test]
    fn eager_threshold_boundary() {
        let p = Platform::perlmutter_like();
        assert!(p.is_eager(p.eager_threshold));
        assert!(!p.is_eager(p.eager_threshold + 1));
    }
}

#[cfg(test)]
mod preset_tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_claimed_directions() {
        let perlmutter = Platform::perlmutter_like();
        let summit = Platform::summit_like();
        let commodity = Platform::commodity_cluster();
        assert!(summit.net_bandwidth > perlmutter.net_bandwidth);
        assert!(summit.net_latency < perlmutter.net_latency);
        assert!(commodity.net_bandwidth < perlmutter.net_bandwidth / 5.0);
        assert!(commodity.net_latency > perlmutter.net_latency * 5.0);
        assert!(summit.gpu_contention < perlmutter.gpu_contention);
    }

    #[test]
    fn presets_wire_times_order_sensibly() {
        let bytes = 1 << 20;
        let t_summit = Platform::summit_like().wire_time(bytes);
        let t_perl = Platform::perlmutter_like().wire_time(bytes);
        let t_comm = Platform::commodity_cluster().wire_time(bytes);
        assert!(t_summit < t_perl && t_perl < t_comm);
    }
}
