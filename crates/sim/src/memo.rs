//! Prefix-memoized execution: checkpoint/resume over shared schedule
//! prefixes, plus tabulated position-keyed noise.
//!
//! MCTS explores schedules tree-wise, so consecutive evaluations share
//! long instruction prefixes. Because execution noise is position-keyed
//! (see [`crate::exec`]), the executor's state after retiring a prefix is
//! a pure function of `(prefix, sample_seed)` — independent of rank
//! interleaving and of whatever suffix follows. [`execute_memo`] exploits
//! this two ways:
//!
//! * **Noise tables.** Every noise factor is a pure function of
//!   `(sample_seed, position key)`, and the memoized bench protocol reuses
//!   the same per-cell sample seeds for every schedule (see
//!   [`crate::bench::benchmark_memo`]). The Box-Muller draw behind each
//!   factor (`ln`/`sqrt`/`cos`/`exp`) dominates short executions, so the
//!   memo tabulates factors per seed and replays them bit-identically.
//!   This wins at every program size and is always on.
//!
//! * **Checkpoint snapshots.** Executor state at a few instruction
//!   boundaries is cached in an LRU keyed by `(prefix_hash, sample_seed)`,
//!   so a later schedule sharing the prefix re-simulates only its suffix.
//!   Snapshots clone per-rank state, which costs more than re-running the
//!   prefix when executions are only microseconds long — so
//!   [`execute_memo`] engages them only for programs of at least
//!   [`SimMemo::DEFAULT_SNAPSHOT_FLOOR`] instructions.
//!   [`execute_checkpointed`] with explicit boundaries always snapshots.
//!
//! Scope: results (`ExecOutcome`, `SimStats`) and error *classification*
//! are bit-identical to [`execute_seeded`](crate::exec::execute_seeded)
//! for the same seed. The one documented edge is platforms with
//! virtual-time budgets: a budget trip's diagnostic detail (the reported
//! overshoot) can differ between the memoized and cold paths because the
//! check runs once per sweep and bounded sweeps stop earlier. The
//! pipeline only enables the memo path on budget-free platforms.

use crate::compile::{CompiledProgram, SimError};
use crate::exec::{ExecOutcome, ExecSnapshot, Executor, NoiseTable, RunEnd};
use crate::platform::Platform;
use crate::stats::SimStats;
use dr_par::LruCache;
use std::collections::HashMap;

/// Per-`sample_seed` noise-factor tables. A pure lookup cache: tables
/// replay exactly what `factor_keyed` would compute, so they can never
/// change results — only wall time. Keyed by seed because the memoized
/// protocol cycles through a fixed set of per-cell seeds; flushed
/// whenever the platform's noise sigma changes (one memo may serve
/// differently-configured platforms across tests).
struct NoiseMemo {
    sigma: f64,
    tables: HashMap<u64, NoiseTable>,
}

impl NoiseMemo {
    fn new() -> Self {
        NoiseMemo {
            sigma: 0.0,
            tables: HashMap::new(),
        }
    }

    /// The table for `sample_seed` on `platform`, fitted to `prog`'s
    /// shape; `None` when the platform is noiseless (every factor is 1.0
    /// — a table would only add work).
    fn resolve(
        &mut self,
        platform: &Platform,
        prog: &CompiledProgram,
        sample_seed: u64,
    ) -> Option<&mut NoiseTable> {
        let sigma = platform.noise.sigma;
        if sigma == 0.0 {
            return None;
        }
        if sigma != self.sigma {
            self.tables.clear();
            self.sigma = sigma;
        }
        let tab = self.tables.entry(sample_seed).or_default();
        tab.fit(prog);
        Some(tab)
    }
}

/// A single-owner cache of executor snapshots keyed by
/// `(prefix_hash, sample_seed)` plus per-seed noise-factor tables. One
/// per worker thread — snapshots are plain values, so the cache never
/// needs locking.
pub struct SimMemo {
    cache: LruCache<(u64, u64), ExecSnapshot>,
    noise: NoiseMemo,
    snapshot_floor: usize,
}

impl SimMemo {
    /// Default snapshot capacity: comfortably covers one bench protocol's
    /// worth of `(boundary, sample)` cells across many sibling schedules.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Programs shorter than this many instructions run without
    /// snapshotting under [`execute_memo`]: cloning per-rank state costs
    /// more than re-executing a microsecond-scale prefix, so below this
    /// floor the snapshot path is a net loss and only the noise tables
    /// are worth keeping.
    pub const DEFAULT_SNAPSHOT_FLOOR: usize = 256;

    /// An empty memo holding at most `capacity` snapshots.
    pub fn new(capacity: usize) -> Self {
        SimMemo {
            cache: LruCache::new(capacity),
            noise: NoiseMemo::new(),
            snapshot_floor: SimMemo::DEFAULT_SNAPSHOT_FLOOR,
        }
    }

    /// Overrides the instruction-count floor below which [`execute_memo`]
    /// skips snapshotting (tests pin it to 0 to exercise checkpoint
    /// resume on small programs).
    pub fn with_snapshot_floor(mut self, min_instrs: usize) -> Self {
        self.snapshot_floor = min_instrs;
        self
    }

    /// Number of cached snapshots.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the memo holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Executions that resumed from a cached snapshot.
    pub fn hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Executions that ran cold (no usable snapshot).
    pub fn misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Number of per-seed noise-factor tables currently held.
    pub fn noise_tables(&self) -> usize {
        self.noise.tables.len()
    }
}

impl Default for SimMemo {
    fn default() -> Self {
        SimMemo::new(SimMemo::DEFAULT_CAPACITY)
    }
}

/// [`execute_seeded`](crate::exec::execute_seeded) with the noise-factor
/// tables always on and prefix snapshots at the program's standard
/// checkpoint boundaries (quartiles) when the program is at least
/// `memo.snapshot_floor` instructions long (below that, state cloning
/// costs more than re-running the prefix). Resumes from the deepest
/// boundary whose `(prefix_hash, sample_seed)` snapshot is cached and
/// snapshots every boundary it passes, then runs the suffix.
pub fn execute_memo(
    prog: &CompiledProgram,
    platform: &Platform,
    sample_seed: u64,
    memo: &mut SimMemo,
) -> Result<(ExecOutcome, SimStats), SimError> {
    let boundaries = if prog.names.len() >= memo.snapshot_floor {
        prog.checkpoint_boundaries()
    } else {
        Vec::new()
    };
    execute_checkpointed(prog, platform, sample_seed, &boundaries, memo)
}

/// [`execute_memo`] with explicit checkpoint `boundaries` (instruction
/// indices; out-of-range entries are ignored, order and duplicates do not
/// matter). Exposed for tests that pin exact split points.
pub fn execute_checkpointed(
    prog: &CompiledProgram,
    platform: &Platform,
    sample_seed: u64,
    boundaries: &[usize],
    memo: &mut SimMemo,
) -> Result<(ExecOutcome, SimStats), SimError> {
    let n = prog.names.len();
    let mut bounds: Vec<usize> = boundaries
        .iter()
        .copied()
        .filter(|&b| b > 0 && b < n)
        .collect();
    bounds.sort_unstable();
    bounds.dedup();

    // Field-split the memo: the executor holds the noise table mutably
    // for the whole run while the snapshot cache is consulted alongside.
    let SimMemo { cache, noise, .. } = memo;

    // Resume from the deepest cached boundary; count one hit or miss per
    // execution (probes use `contains`, which counts nothing).
    let mut resume_at = None;
    for (i, &b) in bounds.iter().enumerate().rev() {
        if cache.contains(&(prog.prefix_hashes[b], sample_seed)) {
            resume_at = Some((i, b));
            break;
        }
    }
    let (ex, first_uncached) = match resume_at {
        Some((i, b)) => {
            let snap = cache
                .get(&(prog.prefix_hashes[b], sample_seed))
                .expect("probed above");
            (Executor::resume(prog, platform, sample_seed, snap), i + 1)
        }
        None => {
            if let Some(&deepest) = bounds.last() {
                let _ = cache.get(&(prog.prefix_hashes[deepest], sample_seed));
            }
            (Executor::new(prog, platform, false, sample_seed), 0)
        }
    };
    let mut ex = ex.with_noise(noise.resolve(platform, prog, sample_seed));

    for &b in &bounds[first_uncached..] {
        match ex.run_to(b)? {
            RunEnd::Capped => {
                cache.insert((prog.prefix_hashes[b], sample_seed), ex.snapshot());
            }
            // Unreachable while `b < n`, but harmless: the final run below
            // re-observes completion immediately.
            RunEnd::Done => break,
        }
    }
    ex.run_to(usize::MAX)?;
    let (outcome, _, stats) = ex.into_result();
    Ok((outcome, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_seeded;
    use crate::workload::TableWorkload;
    use dr_dag::{build_schedule, CommKey, CostKey, DagBuilder, DecisionSpace, OpSpec};

    /// A 3-rank program with kernels and a halo exchange: enough
    /// structure that quartile boundaries land mid-communication.
    fn halo_program() -> CompiledProgram {
        let mut b = DagBuilder::new();
        let key = CommKey::new("halo");
        let pre = b.add("pre", OpSpec::CpuWork(CostKey::new("pre")));
        let k1 = b.add("k1", OpSpec::GpuKernel(CostKey::new("k1")));
        let k2 = b.add("k2", OpSpec::GpuKernel(CostKey::new("k2")));
        let ps = b.add("PostSends", OpSpec::PostSends(key.clone()));
        let pr = b.add("PostRecvs", OpSpec::PostRecvs(key.clone()));
        let ws = b.add("WaitSends", OpSpec::WaitSends(key.clone()));
        let wr = b.add("WaitRecvs", OpSpec::WaitRecvs(key));
        let post = b.add("post", OpSpec::CpuWork(CostKey::new("post")));
        b.edge(pre, k1);
        b.edge(pre, k2);
        b.edge(k1, ps);
        b.edge(k2, ps);
        b.edge(ps, ws);
        b.edge(pr, wr);
        b.edge(ps, wr);
        b.edge(wr, post);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let mut w = TableWorkload::new(3);
        w.cost_all("pre", 4e-5);
        w.cost_all("k1", 8e-5);
        w.cost_all("k2", 6e-5);
        w.cost_all("post", 3e-5);
        w.comm_all_to_all("halo", 1 << 16);
        CompiledProgram::compile(&s, &w).unwrap()
    }

    #[test]
    fn memoized_run_is_bit_identical_to_cold() {
        let prog = halo_program();
        let platform = Platform::perlmutter_like(); // noisy
        assert!(
            !prog.checkpoint_boundaries().is_empty(),
            "program large enough to checkpoint"
        );
        for seed in [0u64, 1, 42, u64::MAX] {
            let cold = execute_seeded(&prog, &platform, seed).unwrap();
            let mut memo = SimMemo::default().with_snapshot_floor(0);
            let first = execute_memo(&prog, &platform, seed, &mut memo).unwrap();
            assert_eq!(first, cold, "cold-memo run diverged (seed {seed})");
            assert!(!memo.is_empty(), "boundaries were snapshotted");
            let warm = execute_memo(&prog, &platform, seed, &mut memo).unwrap();
            assert_eq!(warm, cold, "warm-memo run diverged (seed {seed})");
        }
    }

    #[test]
    fn snapshot_floor_skips_snapshots_but_keeps_noise_tables() {
        // Under the default floor, a small program runs without snapshots
        // (no clones, no hit/miss accounting) yet stays bit-identical to
        // cold — the per-seed noise tables replay the same factors.
        let prog = halo_program();
        assert!(prog.names.len() < SimMemo::DEFAULT_SNAPSHOT_FLOOR);
        let platform = Platform::perlmutter_like(); // noisy
        let mut memo = SimMemo::default();
        for seed in [3u64, 4, 3] {
            let cold = execute_seeded(&prog, &platform, seed).unwrap();
            let memoed = execute_memo(&prog, &platform, seed, &mut memo).unwrap();
            assert_eq!(memoed, cold, "gated run diverged (seed {seed})");
        }
        assert!(memo.is_empty(), "floor must suppress snapshots");
        assert_eq!((memo.hits(), memo.misses()), (0, 0));
        assert_eq!(memo.noise_tables(), 2, "one table per distinct seed");
    }

    #[test]
    fn noise_tables_flush_when_sigma_changes() {
        // One memo serving platforms with different noise sigmas must not
        // replay factors drawn under the other sigma.
        let prog = halo_program();
        let noisy = Platform::perlmutter_like();
        let mut louder = Platform::perlmutter_like();
        louder.noise.sigma *= 3.0;
        let mut memo = SimMemo::default();
        for platform in [&noisy, &louder, &noisy] {
            let cold = execute_seeded(&prog, platform, 11).unwrap();
            let memoed = execute_memo(&prog, platform, 11, &mut memo).unwrap();
            assert_eq!(memoed, cold, "sigma change leaked stale factors");
        }
    }

    #[test]
    fn warm_runs_hit_the_deepest_boundary() {
        let prog = halo_program();
        let platform = Platform::perlmutter_like().noiseless();
        let mut memo = SimMemo::default().with_snapshot_floor(0);
        let _ = execute_memo(&prog, &platform, 7, &mut memo).unwrap();
        assert_eq!((memo.hits(), memo.misses()), (0, 1));
        let _ = execute_memo(&prog, &platform, 7, &mut memo).unwrap();
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        // A different seed is a different noise cell: miss again.
        let _ = execute_memo(&prog, &platform, 8, &mut memo).unwrap();
        assert_eq!((memo.hits(), memo.misses()), (1, 2));
    }

    #[test]
    fn explicit_boundaries_match_cold_at_every_split_point() {
        let prog = halo_program();
        let platform = Platform::perlmutter_like();
        let n = prog.names.len();
        let cold = execute_seeded(&prog, &platform, 3).unwrap();
        for split in 0..=n + 1 {
            let mut memo = SimMemo::default();
            let once = execute_checkpointed(&prog, &platform, 3, &[split], &mut memo).unwrap();
            assert_eq!(once, cold, "split {split} diverged cold");
            let again = execute_checkpointed(&prog, &platform, 3, &[split], &mut memo).unwrap();
            assert_eq!(again, cold, "split {split} diverged warm");
        }
    }

    #[test]
    fn sibling_schedules_share_prefix_snapshots() {
        // Two traversals of the same space agree on a schedule prefix, so
        // the second benefits from the first's snapshots.
        let mut b = DagBuilder::new();
        let pre = b.add("pre", OpSpec::CpuWork(CostKey::new("pre")));
        let k1 = b.add("k1", OpSpec::GpuKernel(CostKey::new("k1")));
        let k2 = b.add("k2", OpSpec::GpuKernel(CostKey::new("k2")));
        let k3 = b.add("k3", OpSpec::GpuKernel(CostKey::new("k3")));
        b.edge(pre, k1);
        b.edge(k1, k2);
        b.edge(k1, k3);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let mut w = TableWorkload::new(2);
        for (k, d) in [("pre", 4e-5), ("k1", 8e-5), ("k2", 6e-5), ("k3", 5e-5)] {
            w.cost_all(k, d);
        }
        let progs: Vec<CompiledProgram> = sp
            .enumerate()
            .map(|t| CompiledProgram::compile(&build_schedule(&sp, &t), &w).unwrap())
            .collect();
        assert!(progs.len() >= 2);
        let platform = Platform::perlmutter_like();
        let mut memo = SimMemo::default().with_snapshot_floor(0);
        let mut shared_any = false;
        for (i, prog) in progs.iter().enumerate() {
            let cold = execute_seeded(prog, &platform, 9).unwrap();
            let memoed = execute_memo(prog, &platform, 9, &mut memo).unwrap();
            assert_eq!(memoed, cold, "schedule {i} diverged");
            shared_any |= memo.hits() > 0;
        }
        assert!(shared_any, "no schedule pair shared a prefix snapshot");
    }

    #[test]
    fn empty_boundary_list_runs_cold() {
        let mut b = DagBuilder::new();
        b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let mut w = TableWorkload::new(2);
        w.cost_all("c", 1e-5);
        let prog = CompiledProgram::compile(&build_schedule(&sp, &t), &w).unwrap();
        let platform = Platform::perlmutter_like();
        let mut memo = SimMemo::default();
        let cold = execute_seeded(&prog, &platform, 5).unwrap();
        // No usable boundaries: 0 and >= len are filtered out.
        let n = prog.names.len();
        let memoed = execute_checkpointed(&prog, &platform, 5, &[0, n, n + 3], &mut memo).unwrap();
        assert_eq!(memoed, cold);
        assert!(memo.is_empty(), "no in-range boundary, nothing cached");
        assert_eq!((memo.hits(), memo.misses()), (0, 0));
    }
}
