//! Aggregate execution statistics of simulated invocations.
//!
//! Where a [`crate::trace::Trace`] records every span of one invocation,
//! [`SimStats`] is the cheap always-on summary: instruction counts,
//! eager vs. rendezvous message matching, bytes moved, synchronization
//! operations inserted per kind, and per-resource busy time. Stats from
//! repeated invocations (e.g. across benchmark samples) combine with
//! [`SimStats::merge`].

use dr_obs::json;

/// Counts and busy times accumulated over one or more simulated
/// invocations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Simulated invocations folded into these stats.
    pub runs: u64,
    /// Instructions executed (all ranks).
    pub instructions: u64,
    /// Point-to-point messages matched via the eager protocol.
    pub eager_msgs: u64,
    /// Point-to-point messages matched via the rendezvous protocol.
    pub rendezvous_msgs: u64,
    /// Payload bytes moved (point-to-point plus collective
    /// contributions).
    pub bytes_moved: u64,
    /// Collective operations completed (counted per participating rank).
    pub collective_ops: u64,
    /// `cudaEventRecord` instructions executed (`CER`).
    pub sync_cer: u64,
    /// `cudaEventSynchronize` instructions executed (`CES`).
    pub sync_ces: u64,
    /// `cudaStreamWaitEvent` instructions executed (`CSWE`).
    pub sync_cswe: u64,
    /// Per-rank host-timeline busy seconds (instruction spans, including
    /// blocking waits — the CPU is occupied either way).
    pub cpu_busy: Vec<f64>,
    /// Per-rank, per-stream kernel-execution seconds.
    pub stream_busy: Vec<Vec<f64>>,
    /// Faults injected by the platform's fault plan (all zero without
    /// one): straggler scalings, message delays/drops, kernel spikes,
    /// and measurement outliers.
    pub faults: dr_fault::FaultCounters,
}

impl SimStats {
    /// Empty stats sized for `ranks` ranks with `streams` streams each.
    pub fn for_shape(ranks: usize, streams: usize) -> Self {
        SimStats {
            cpu_busy: vec![0.0; ranks],
            stream_busy: vec![vec![0.0; streams]; ranks],
            ..Default::default()
        }
    }

    /// Total synchronization instructions across all kinds.
    pub fn sync_ops(&self) -> u64 {
        self.sync_cer + self.sync_ces + self.sync_cswe
    }

    /// Folds `other` into `self`, summing counts and busy times.
    /// Shapes are reconciled by growing to the larger rank/stream count.
    pub fn merge(&mut self, other: &SimStats) {
        self.runs += other.runs;
        self.instructions += other.instructions;
        self.eager_msgs += other.eager_msgs;
        self.rendezvous_msgs += other.rendezvous_msgs;
        self.bytes_moved += other.bytes_moved;
        self.collective_ops += other.collective_ops;
        self.sync_cer += other.sync_cer;
        self.sync_ces += other.sync_ces;
        self.sync_cswe += other.sync_cswe;
        self.faults.merge(&other.faults);
        if self.cpu_busy.len() < other.cpu_busy.len() {
            self.cpu_busy.resize(other.cpu_busy.len(), 0.0);
        }
        for (a, b) in self.cpu_busy.iter_mut().zip(&other.cpu_busy) {
            *a += b;
        }
        if self.stream_busy.len() < other.stream_busy.len() {
            self.stream_busy.resize(other.stream_busy.len(), Vec::new());
        }
        for (a, b) in self.stream_busy.iter_mut().zip(&other.stream_busy) {
            if a.len() < b.len() {
                a.resize(b.len(), 0.0);
            }
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Renders the stats as a JSON object.
    pub fn to_json(&self) -> String {
        let cpu: Vec<String> = self.cpu_busy.iter().map(|&s| json::number(s)).collect();
        let streams: Vec<String> = self
            .stream_busy
            .iter()
            .map(|per_rank| {
                let cells: Vec<String> = per_rank.iter().map(|&s| json::number(s)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            concat!(
                "{{\"runs\":{},\"instructions\":{},\"eager_msgs\":{},",
                "\"rendezvous_msgs\":{},\"bytes_moved\":{},\"collective_ops\":{},",
                "\"sync_cer\":{},\"sync_ces\":{},\"sync_cswe\":{},",
                "\"faults\":{{\"stragglers\":{},\"delays\":{},\"drops\":{},",
                "\"spikes\":{},\"outliers\":{}}},",
                "\"cpu_busy\":[{}],\"stream_busy\":[{}]}}"
            ),
            self.runs,
            self.instructions,
            self.eager_msgs,
            self.rendezvous_msgs,
            self.bytes_moved,
            self.collective_ops,
            self.sync_cer,
            self.sync_ces,
            self.sync_cswe,
            self.faults.stragglers,
            self.faults.delays,
            self.faults.drops,
            self.faults.spikes,
            self.faults.outliers,
            cpu.join(","),
            streams.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counts_and_busy_times() {
        let mut a = SimStats::for_shape(2, 2);
        a.runs = 1;
        a.instructions = 10;
        a.eager_msgs = 2;
        a.cpu_busy[0] = 1.0;
        a.stream_busy[1][0] = 0.5;
        let mut b = SimStats::for_shape(2, 2);
        b.runs = 1;
        b.instructions = 5;
        b.rendezvous_msgs = 3;
        b.cpu_busy[0] = 0.25;
        b.stream_busy[1][0] = 0.5;
        a.merge(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.eager_msgs, 2);
        assert_eq!(a.rendezvous_msgs, 3);
        assert_eq!(a.cpu_busy[0], 1.25);
        assert_eq!(a.stream_busy[1][0], 1.0);
    }

    #[test]
    fn merge_grows_to_the_larger_shape() {
        let mut a = SimStats::for_shape(1, 1);
        let mut b = SimStats::for_shape(3, 2);
        b.cpu_busy[2] = 7.0;
        b.stream_busy[0][1] = 3.0;
        a.merge(&b);
        assert_eq!(a.cpu_busy.len(), 3);
        assert_eq!(a.cpu_busy[2], 7.0);
        assert_eq!(a.stream_busy[0][1], 3.0);
    }

    #[test]
    fn json_is_wellformed() {
        let mut s = SimStats::for_shape(2, 2);
        s.runs = 1;
        s.sync_cer = 4;
        s.cpu_busy[1] = 0.125;
        json::validate(&s.to_json()).unwrap();
        assert!(s.to_json().contains("\"sync_cer\":4"));
    }

    #[test]
    fn sync_ops_totals_all_kinds() {
        let s = SimStats {
            sync_cer: 1,
            sync_ces: 2,
            sync_cswe: 4,
            ..Default::default()
        };
        assert_eq!(s.sync_ops(), 7);
    }
}
