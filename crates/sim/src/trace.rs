//! Execution traces: per-operation timelines of one simulated invocation.
//!
//! The design rules tell an implementer *what* to do; a trace shows *why*
//! it is fast or slow — which waits blocked the host, how kernels
//! overlapped across streams, when messages actually moved. Traces are
//! the simulator's analogue of an Nsight/`mpiP` timeline.

/// Where an operation executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The rank's host thread.
    Cpu,
    /// A CUDA stream on the rank's GPU.
    Stream(usize),
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resource::Cpu => write!(f, "cpu"),
            Resource::Stream(s) => write!(f, "stream{s}"),
        }
    }
}

/// One operation instance in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Rank the operation ran on.
    pub rank: usize,
    /// Instruction name (from the schedule).
    pub name: String,
    /// Resource the span occupies.
    pub resource: Resource,
    /// Span start (seconds from program start).
    pub start: f64,
    /// Span end.
    pub end: f64,
}

impl TraceEvent {
    /// Span duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Busy time and busy fraction of one `(rank, resource)` timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUtilization {
    /// Rank the resource belongs to.
    pub rank: usize,
    /// The resource (host thread or stream).
    pub resource: Resource,
    /// Seconds the resource was occupied by at least one span
    /// (overlapping spans are merged, not double-counted).
    pub busy: f64,
    /// `busy / makespan`, in `[0, 1]` (`0` for an empty trace).
    pub utilization: f64,
}

/// A complete invocation trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All spans, in emission (host-issue) order per rank.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Busy time and busy fraction per `(rank, resource)`, ordered by
    /// rank and then CPU before streams. Overlapping spans on one
    /// resource are merged so busy time never exceeds the makespan.
    pub fn utilization(&self) -> Vec<ResourceUtilization> {
        let makespan = self.makespan();
        let mut keys: Vec<(usize, Resource)> =
            self.events.iter().map(|e| (e.rank, e.resource)).collect();
        keys.sort_by_key(|&(rank, res)| {
            (
                rank,
                match res {
                    Resource::Cpu => 0,
                    Resource::Stream(s) => 1 + s,
                },
            )
        });
        keys.dedup();
        keys.into_iter()
            .map(|(rank, resource)| {
                let mut intervals: Vec<(f64, f64)> = self
                    .events
                    .iter()
                    .filter(|e| e.rank == rank && e.resource == resource)
                    .map(|e| (e.start.max(0.0), e.end.min(makespan)))
                    .filter(|&(a, b)| b > a)
                    .collect();
                intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("trace times are finite"));
                let mut busy = 0.0;
                let mut cursor = f64::NEG_INFINITY;
                for (a, b) in intervals {
                    let a = a.max(cursor);
                    if b > a {
                        busy += b - a;
                        cursor = b;
                    }
                }
                let utilization = if makespan > 0.0 { busy / makespan } else { 0.0 };
                ResourceUtilization {
                    rank,
                    resource,
                    busy,
                    utilization,
                }
            })
            .collect()
    }

    /// Events of one rank.
    pub fn rank(&self, rank: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// The last completion time across all spans.
    pub fn makespan(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Renders an ASCII Gantt chart of one rank: one row per resource,
    /// `width` columns across the makespan. Busy cells show `█`, and the
    /// first letter of the operation name marks each span start.
    pub fn ascii_gantt(&self, rank: usize, width: usize) -> String {
        let events: Vec<&TraceEvent> = self.rank(rank).collect();
        if events.is_empty() {
            return String::new();
        }
        let makespan = self.makespan().max(f64::MIN_POSITIVE);
        let mut resources: Vec<Resource> = events.iter().map(|e| e.resource).collect();
        resources.sort_by_key(|r| match r {
            Resource::Cpu => 0,
            Resource::Stream(s) => 1 + s,
        });
        resources.dedup();
        let mut out = String::new();
        for res in resources {
            let mut row = vec![' '; width];
            for e in events.iter().filter(|e| e.resource == res) {
                let a = ((e.start / makespan) * width as f64) as usize;
                let b = (((e.end / makespan) * width as f64).ceil() as usize).min(width);
                for cell in row.iter_mut().take(b).skip(a) {
                    *cell = '█';
                }
                if a < width {
                    row[a] = e.name.chars().next().unwrap_or('?');
                }
            }
            out.push_str(&format!("{:>8} |", res.to_string()));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: usize, name: &str, resource: Resource, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            rank,
            name: name.into(),
            resource,
            start,
            end,
        }
    }

    #[test]
    fn makespan_is_last_end() {
        let t = Trace {
            events: vec![
                ev(0, "a", Resource::Cpu, 0.0, 1.0),
                ev(0, "k", Resource::Stream(0), 0.5, 3.0),
            ],
        };
        assert_eq!(t.makespan(), 3.0);
        assert_eq!(t.events[1].duration(), 2.5);
    }

    #[test]
    fn rank_filter_works() {
        let t = Trace {
            events: vec![
                ev(0, "a", Resource::Cpu, 0.0, 1.0),
                ev(1, "b", Resource::Cpu, 0.0, 2.0),
            ],
        };
        assert_eq!(t.rank(1).count(), 1);
        assert_eq!(t.rank(2).count(), 0);
    }

    #[test]
    fn gantt_rows_cover_resources() {
        let t = Trace {
            events: vec![
                ev(0, "work", Resource::Cpu, 0.0, 1.0),
                ev(0, "kern", Resource::Stream(1), 1.0, 2.0),
            ],
        };
        let g = t.ascii_gantt(0, 20);
        assert_eq!(g.lines().count(), 2);
        assert!(g.contains("cpu"));
        assert!(g.contains("stream1"));
        assert!(g.contains('w'));
        assert!(g.contains('k'));
    }

    #[test]
    fn gantt_of_missing_rank_is_empty() {
        let t = Trace::default();
        assert_eq!(t.ascii_gantt(3, 10), "");
    }
}

fn tid_of(resource: Resource) -> usize {
    match resource {
        Resource::Cpu => 0,
        Resource::Stream(s) => s + 1,
    }
}

impl Trace {
    /// Serializes the trace in Chrome trace-event format (the JSON array
    /// flavour readable by `chrome://tracing` and Perfetto). Each rank
    /// maps to a process, each resource to a thread; timestamps are in
    /// microseconds as the format requires. Hand-rolled JSON: names are
    /// instruction identifiers (letters, digits, `-`, `(`, `)`), so only
    /// quotes/backslashes need escaping.
    ///
    /// Beyond the `"ph":"X"` duration spans, the stream carries
    /// `"ph":"M"` metadata naming each process (`rank R`) and thread
    /// (`cpu`, `streamN`) so Perfetto labels tracks, and a per-rank
    /// `"ph":"C"` counter track (`active`) sampling how many resources
    /// are busy at each span boundary.
    pub fn to_chrome_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut records: Vec<String> = Vec::with_capacity(self.events.len() * 2);
        // Metadata: one process_name per rank, one thread_name per
        // (rank, resource) seen in the trace.
        let mut threads: Vec<(usize, Resource)> =
            self.events.iter().map(|e| (e.rank, e.resource)).collect();
        threads.sort_by_key(|&(rank, res)| (rank, tid_of(res)));
        threads.dedup();
        let mut last_rank = usize::MAX;
        for &(rank, res) in &threads {
            if rank != last_rank {
                records.push(format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{rank},\"args\":{{\"name\":\"rank {rank}\"}}}}"
                ));
                last_rank = rank;
            }
            records.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{rank},\"tid\":{},\"args\":{{\"name\":\"{res}\"}}}}",
                tid_of(res)
            ));
        }
        // Duration spans.
        for e in &self.events {
            records.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                esc(&e.name),
                e.rank,
                tid_of(e.resource),
                e.start * 1e6,
                e.duration() * 1e6
            ));
        }
        // Counter track: busy resources per rank, sampled at span
        // boundaries. Deltas at equal timestamps coalesce to one sample.
        let mut ranks: Vec<usize> = self.events.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        for rank in ranks {
            let mut deltas: Vec<(f64, i64)> = Vec::new();
            for e in self.events.iter().filter(|e| e.rank == rank) {
                deltas.push((e.start, 1));
                deltas.push((e.end, -1));
            }
            deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("trace times are finite"));
            let mut active = 0i64;
            let mut i = 0;
            while i < deltas.len() {
                let t = deltas[i].0;
                while i < deltas.len() && deltas[i].0 == t {
                    active += deltas[i].1;
                    i += 1;
                }
                records.push(format!(
                    "{{\"name\":\"active\",\"ph\":\"C\",\"pid\":{rank},\"ts\":{:.3},\"args\":{{\"busy\":{active}}}}}",
                    t * 1e6
                ));
            }
        }
        format!("[{}]", records.join(","))
    }
}

#[cfg(test)]
mod chrome_tests {
    use super::*;

    #[test]
    fn chrome_json_is_wellformed_and_complete() {
        let t = Trace {
            events: vec![
                TraceEvent {
                    rank: 0,
                    name: "Pack".into(),
                    resource: Resource::Stream(1),
                    start: 1e-6,
                    end: 3e-6,
                },
                TraceEvent {
                    rank: 2,
                    name: "CES-b4-\"x\"".into(),
                    resource: Resource::Cpu,
                    start: 0.0,
                    end: 5e-7,
                },
            ],
        };
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"tid\":2"), "stream 1 -> tid 2");
        assert!(json.contains("\\\"x\\\""), "quotes escaped");
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
    }

    #[test]
    fn empty_trace_is_empty_array() {
        assert_eq!(Trace::default().to_chrome_json(), "[]");
    }

    #[test]
    fn metadata_names_processes_and_threads() {
        let t = Trace {
            events: vec![
                TraceEvent {
                    rank: 1,
                    name: "k".into(),
                    resource: Resource::Stream(0),
                    start: 0.0,
                    end: 1e-6,
                },
                TraceEvent {
                    rank: 1,
                    name: "c".into(),
                    resource: Resource::Cpu,
                    start: 0.0,
                    end: 1e-6,
                },
            ],
        };
        let json = t.to_chrome_json();
        dr_obs::json::validate(&json).unwrap();
        assert_eq!(
            json.matches("\"ph\":\"M\"").count(),
            3,
            "1 process + 2 threads"
        );
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"name\":\"cpu\""));
        assert!(json.contains("\"name\":\"stream0\""));
        // Metadata precedes the spans.
        assert!(json.find("\"ph\":\"M\"").unwrap() < json.find("\"ph\":\"X\"").unwrap());
    }

    #[test]
    fn counter_track_follows_span_boundaries() {
        // Two overlapping spans: busy count goes 1, 2, 1, 0.
        let t = Trace {
            events: vec![
                TraceEvent {
                    rank: 0,
                    name: "a".into(),
                    resource: Resource::Cpu,
                    start: 0.0,
                    end: 2e-6,
                },
                TraceEvent {
                    rank: 0,
                    name: "k".into(),
                    resource: Resource::Stream(0),
                    start: 1e-6,
                    end: 3e-6,
                },
            ],
        };
        let json = t.to_chrome_json();
        dr_obs::json::validate(&json).unwrap();
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 4);
        assert!(json.contains("\"busy\":2"));
        // The final boundary returns to zero.
        assert!(json.contains("\"busy\":0"));
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;

    fn ev(rank: usize, resource: Resource, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            rank,
            name: "x".into(),
            resource,
            start,
            end,
        }
    }

    #[test]
    fn merged_busy_time_ignores_overlap() {
        let t = Trace {
            events: vec![
                ev(0, Resource::Cpu, 0.0, 2.0),
                ev(0, Resource::Cpu, 1.0, 3.0), // overlaps the first
                ev(0, Resource::Stream(0), 0.0, 4.0),
            ],
        };
        let u = t.utilization();
        assert_eq!(u.len(), 2);
        assert_eq!(u[0].resource, Resource::Cpu);
        assert!((u[0].busy - 3.0).abs() < 1e-12, "merged [0,2]∪[1,3] = 3s");
        assert!((u[0].utilization - 0.75).abs() < 1e-12);
        assert_eq!(u[1].resource, Resource::Stream(0));
        assert!((u[1].utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_spans_sum_exactly() {
        let t = Trace {
            events: vec![
                ev(0, Resource::Cpu, 0.0, 1.0),
                ev(0, Resource::Cpu, 2.0, 3.0),
                ev(1, Resource::Cpu, 0.0, 4.0),
            ],
        };
        let u = t.utilization();
        assert_eq!(u.len(), 2);
        assert!((u[0].busy - 2.0).abs() < 1e-12);
        assert!((u[0].utilization - 0.5).abs() < 1e-12);
        assert_eq!(u[1].rank, 1);
        assert!((u[1].utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_no_rows() {
        assert!(Trace::default().utilization().is_empty());
    }

    #[test]
    fn zero_duration_spans_contribute_nothing() {
        let t = Trace {
            events: vec![
                ev(0, Resource::Cpu, 1.0, 1.0),
                ev(0, Resource::Cpu, 0.0, 2.0),
            ],
        };
        let u = t.utilization();
        assert_eq!(u.len(), 1);
        assert!((u[0].busy - 2.0).abs() < 1e-12);
    }
}
