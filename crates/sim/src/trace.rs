//! Execution traces: per-operation timelines of one simulated invocation.
//!
//! The design rules tell an implementer *what* to do; a trace shows *why*
//! it is fast or slow — which waits blocked the host, how kernels
//! overlapped across streams, when messages actually moved. Traces are
//! the simulator's analogue of an Nsight/`mpiP` timeline.

/// Where an operation executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The rank's host thread.
    Cpu,
    /// A CUDA stream on the rank's GPU.
    Stream(usize),
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resource::Cpu => write!(f, "cpu"),
            Resource::Stream(s) => write!(f, "stream{s}"),
        }
    }
}

/// One operation instance in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Rank the operation ran on.
    pub rank: usize,
    /// Instruction name (from the schedule).
    pub name: String,
    /// Resource the span occupies.
    pub resource: Resource,
    /// Span start (seconds from program start).
    pub start: f64,
    /// Span end.
    pub end: f64,
}

impl TraceEvent {
    /// Span duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A complete invocation trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All spans, in emission (host-issue) order per rank.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Events of one rank.
    pub fn rank(&self, rank: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// The last completion time across all spans.
    pub fn makespan(&self) -> f64 {
        self.events.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Renders an ASCII Gantt chart of one rank: one row per resource,
    /// `width` columns across the makespan. Busy cells show `█`, and the
    /// first letter of the operation name marks each span start.
    pub fn ascii_gantt(&self, rank: usize, width: usize) -> String {
        let events: Vec<&TraceEvent> = self.rank(rank).collect();
        if events.is_empty() {
            return String::new();
        }
        let makespan = self.makespan().max(f64::MIN_POSITIVE);
        let mut resources: Vec<Resource> = events.iter().map(|e| e.resource).collect();
        resources.sort_by_key(|r| match r {
            Resource::Cpu => 0,
            Resource::Stream(s) => 1 + s,
        });
        resources.dedup();
        let mut out = String::new();
        for res in resources {
            let mut row = vec![' '; width];
            for e in events.iter().filter(|e| e.resource == res) {
                let a = ((e.start / makespan) * width as f64) as usize;
                let b = (((e.end / makespan) * width as f64).ceil() as usize).min(width);
                for cell in row.iter_mut().take(b).skip(a) {
                    *cell = '█';
                }
                if a < width {
                    row[a] = e.name.chars().next().unwrap_or('?');
                }
            }
            out.push_str(&format!("{:>8} |", res.to_string()));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: usize, name: &str, resource: Resource, start: f64, end: f64) -> TraceEvent {
        TraceEvent { rank, name: name.into(), resource, start, end }
    }

    #[test]
    fn makespan_is_last_end() {
        let t = Trace {
            events: vec![
                ev(0, "a", Resource::Cpu, 0.0, 1.0),
                ev(0, "k", Resource::Stream(0), 0.5, 3.0),
            ],
        };
        assert_eq!(t.makespan(), 3.0);
        assert_eq!(t.events[1].duration(), 2.5);
    }

    #[test]
    fn rank_filter_works() {
        let t = Trace {
            events: vec![
                ev(0, "a", Resource::Cpu, 0.0, 1.0),
                ev(1, "b", Resource::Cpu, 0.0, 2.0),
            ],
        };
        assert_eq!(t.rank(1).count(), 1);
        assert_eq!(t.rank(2).count(), 0);
    }

    #[test]
    fn gantt_rows_cover_resources() {
        let t = Trace {
            events: vec![
                ev(0, "work", Resource::Cpu, 0.0, 1.0),
                ev(0, "kern", Resource::Stream(1), 1.0, 2.0),
            ],
        };
        let g = t.ascii_gantt(0, 20);
        assert_eq!(g.lines().count(), 2);
        assert!(g.contains("cpu"));
        assert!(g.contains("stream1"));
        assert!(g.contains('w'));
        assert!(g.contains('k'));
    }

    #[test]
    fn gantt_of_missing_rank_is_empty() {
        let t = Trace::default();
        assert_eq!(t.ascii_gantt(3, 10), "");
    }
}

impl Trace {
    /// Serializes the trace in Chrome trace-event format (the JSON array
    /// flavour readable by `chrome://tracing` and Perfetto). Each rank
    /// maps to a process, each resource to a thread; timestamps are in
    /// microseconds as the format requires. Hand-rolled JSON: names are
    /// instruction identifiers (letters, digits, `-`, `(`, `)`), so only
    /// quotes/backslashes need escaping.
    pub fn to_chrome_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("[");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let tid = match e.resource {
                Resource::Cpu => 0,
                Resource::Stream(s) => s + 1,
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                esc(&e.name),
                e.rank,
                tid,
                e.start * 1e6,
                e.duration() * 1e6
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod chrome_tests {
    use super::*;

    #[test]
    fn chrome_json_is_wellformed_and_complete() {
        let t = Trace {
            events: vec![
                TraceEvent {
                    rank: 0,
                    name: "Pack".into(),
                    resource: Resource::Stream(1),
                    start: 1e-6,
                    end: 3e-6,
                },
                TraceEvent {
                    rank: 2,
                    name: "CES-b4-\"x\"".into(),
                    resource: Resource::Cpu,
                    start: 0.0,
                    end: 5e-7,
                },
            ],
        };
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"tid\":2"), "stream 1 -> tid 2");
        assert!(json.contains("\\\"x\\\""), "quotes escaped");
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
    }

    #[test]
    fn empty_trace_is_empty_array() {
        assert_eq!(Trace::default().to_chrome_json(), "[]");
    }
}
