//! # dr-sim — discrete-event CUDA+MPI platform simulator
//!
//! The reproduction's substitute for the paper's Perlmutter node. The
//! design-rule pipeline consumes only `(sequence, measured time)` pairs,
//! so any timing source that exhibits the first-order phenomena of a real
//! GPU cluster — asynchronous kernel launches, per-stream FIFO ordering,
//! inter-stream contention, CUDA event semantics, eager/rendezvous MPI
//! point-to-point messaging, and blocking waits — yields the same kind of
//! multi-modal performance landscape the method dissects.
//!
//! * [`Platform`] — the parametric cost model (launch overheads, link
//!   latency/bandwidth, contention, measurement noise);
//! * [`Workload`] — resolves the symbolic cost/communication keys of a
//!   program DAG for a concrete problem instance;
//! * [`CompiledProgram`] — a schedule resolved against a workload;
//! * [`execute`] — one simulated invocation across all ranks, with
//!   deadlock detection;
//! * [`benchmark`] — the paper's measurement protocol (samples until
//!   `t_measure`, percentile records, max-over-ranks reduction).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bench;
mod compile;
mod exec;
mod memo;
mod platform;
mod stats;
pub mod trace;
mod workload;

pub use bench::{
    benchmark, benchmark_instrumented, benchmark_memo, benchmark_memo_instrumented,
    benchmark_traced, percentile, BenchConfig, BenchResult, Percentiles,
};
pub use compile::{CommTable, CompiledProgram, Instr, SimError};
pub use dr_fault::{FaultConfig, FaultCounters, FaultPlan, MessageFault};
pub use exec::{execute, execute_instrumented, execute_seeded, execute_traced, ExecOutcome};
pub use memo::{execute_checkpointed, execute_memo, SimMemo};
pub use platform::{NoiseModel, Platform};
pub use stats::SimStats;
pub use trace::{Resource, ResourceUtilization, Trace, TraceEvent};
pub use workload::{CommPattern, TableWorkload, Workload};
