//! The paper's empirical measurement protocol (Section III-C-3), over
//! simulated clocks.
//!
//! Benchmarking is done in terms of *measurements* and *samples*: each
//! sample is one invocation of the program; a measurement repeats samples
//! until `t_measure` (0.01 s in the paper) of simulated time has elapsed
//! and reports `t_measure / n_samples`, maximized across ranks. The 1st,
//! 10th, 50th, 90th and 99th percentile measurements are recorded with
//! each explored sequence and used for rule generation.

use crate::compile::{CompiledProgram, SimError};
use crate::exec::{execute, execute_instrumented};
use crate::memo::{execute_memo, SimMemo};
use crate::platform::Platform;
use crate::stats::SimStats;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Domain constant separating the memoized protocol's noise cells from
/// every other seed stream in the workspace.
const NOISE_DOMAIN: u64 = 0xD1CE_BA5E_0FC0_FFEE;

/// The noise seed of sample `s` of measurement `m` under the memoized
/// protocol: a pure avalanche of the cell coordinates, independent of
/// which schedule is being measured and of any master seed — so two
/// schedules sharing an instruction prefix revisit the *same* noise cells
/// and the prefix snapshots cached by one are usable by the other.
fn cell_seed(m: usize, s: usize) -> u64 {
    let mut z = NOISE_DOMAIN ^ ((m as u64) << 32) ^ s as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Measurement-protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchConfig {
    /// Minimum simulated time per measurement (paper: 0.01 s).
    pub t_measure: f64,
    /// Number of measurements collected per implementation.
    pub num_measurements: usize,
    /// Safety cap on samples within one measurement (for very fast
    /// programs).
    pub max_samples: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            t_measure: 0.01,
            num_measurements: 50,
            max_samples: 1000,
        }
    }
}

impl BenchConfig {
    /// A cheap configuration for unit tests and examples.
    pub fn quick() -> Self {
        BenchConfig {
            t_measure: 1e-3,
            num_measurements: 9,
            max_samples: 50,
        }
    }
}

/// The recorded percentiles of one implementation's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 1st percentile.
    pub p01: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Result of benchmarking one implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// All measurements, in collection order (seconds per invocation).
    pub measurements: Vec<f64>,
    /// Recorded percentile summary.
    pub percentiles: Percentiles,
}

impl BenchResult {
    /// The canonical scalar time of the implementation: the median
    /// measurement (robust to noise tails).
    pub fn time(&self) -> f64 {
        self.percentiles.p50
    }
}

/// Percentile with linear interpolation between order statistics
/// (numpy/scipy default), `q` in `[0, 100]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&q), "q out of range: {q}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q / 100.0 * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Runs the full measurement protocol on a compiled program.
///
/// Deterministic for a given `seed`: every sample's noise derives from one
/// seeded generator.
pub fn benchmark(
    prog: &CompiledProgram,
    platform: &Platform,
    cfg: &BenchConfig,
    seed: u64,
) -> Result<BenchResult, SimError> {
    run_protocol(prog, platform, cfg, seed, None)
}

/// Like [`benchmark`], additionally folding every sample's [`SimStats`]
/// into one aggregate (`stats.runs` counts the samples).
///
/// Produces the identical [`BenchResult`] for the same `seed`: the stats
/// accumulation draws no randomness.
pub fn benchmark_instrumented(
    prog: &CompiledProgram,
    platform: &Platform,
    cfg: &BenchConfig,
    seed: u64,
) -> Result<(BenchResult, SimStats), SimError> {
    let mut stats = SimStats::for_shape(prog.num_ranks, prog.num_streams);
    let result = run_protocol(prog, platform, cfg, seed, Some(&mut stats))?;
    Ok((result, stats))
}

/// [`benchmark_instrumented`] wrapped in a `benchmark` span on `lane`,
/// annotated with the evaluation seed, sample count, and the resulting
/// median time (or the error). The measurement itself is untouched: with
/// a disabled tracer this is exactly [`benchmark_instrumented`].
pub fn benchmark_traced(
    prog: &CompiledProgram,
    platform: &Platform,
    cfg: &BenchConfig,
    seed: u64,
    lane: &mut dr_trace::Lane,
) -> Result<(BenchResult, SimStats), SimError> {
    lane.enter("benchmark");
    lane.annotate("eval_seed", seed);
    let out = benchmark_instrumented(prog, platform, cfg, seed);
    match &out {
        Ok((result, stats)) => {
            lane.annotate("samples", stats.runs);
            lane.annotate("t_median_s", dr_obs::json::number(result.time()));
        }
        Err(e) => lane.annotate("error", e),
    }
    lane.exit();
    out
}

/// The measurement protocol with prefix-memoized execution.
///
/// Differs from [`benchmark`] in how per-sample noise seeds are chosen:
/// instead of a sequential generator seeded per evaluation, each
/// `(measurement, sample)` cell has a fixed seed shared by *every*
/// schedule (see [`cell_seed`]). That makes checkpoint snapshots in
/// `memo` reusable across the whole exploration — schedules sharing an
/// instruction prefix re-simulate only their suffix — while keeping the
/// protocol deterministic: the result is a pure function of the program
/// and platform, bit-identical warm or cold.
pub fn benchmark_memo(
    prog: &CompiledProgram,
    platform: &Platform,
    cfg: &BenchConfig,
    memo: &mut SimMemo,
) -> Result<BenchResult, SimError> {
    run_protocol_memo(prog, platform, cfg, memo, None)
}

/// Like [`benchmark_memo`], additionally folding every sample's
/// [`SimStats`] into one aggregate (`stats.runs` counts the samples).
pub fn benchmark_memo_instrumented(
    prog: &CompiledProgram,
    platform: &Platform,
    cfg: &BenchConfig,
    memo: &mut SimMemo,
) -> Result<(BenchResult, SimStats), SimError> {
    let mut stats = SimStats::for_shape(prog.num_ranks, prog.num_streams);
    let result = run_protocol_memo(prog, platform, cfg, memo, Some(&mut stats))?;
    Ok((result, stats))
}

fn run_protocol_memo(
    prog: &CompiledProgram,
    platform: &Platform,
    cfg: &BenchConfig,
    memo: &mut SimMemo,
    mut stats: Option<&mut SimStats>,
) -> Result<BenchResult, SimError> {
    let mut measurements = Vec::with_capacity(cfg.num_measurements);
    for m in 0..cfg.num_measurements {
        let mut accum = vec![0.0f64; prog.num_ranks];
        let mut samples = 0usize;
        loop {
            let (outcome, sample_stats) =
                execute_memo(prog, platform, cell_seed(m, samples), memo)?;
            if let Some(stats) = stats.as_deref_mut() {
                stats.merge(&sample_stats);
            }
            for (a, t) in accum.iter_mut().zip(&outcome.rank_times) {
                *a += t;
            }
            samples += 1;
            let elapsed = accum.iter().copied().fold(0.0, f64::max);
            if elapsed >= cfg.t_measure || samples >= cfg.max_samples {
                break;
            }
        }
        let mut est = accum.iter().map(|a| a / samples as f64).fold(0.0, f64::max);
        if let Some(plan) = &platform.faults {
            let factor = plan.outlier(measurements.len());
            if factor != 1.0 {
                est *= factor;
                if let Some(stats) = stats.as_deref_mut() {
                    stats.faults.outliers += 1;
                }
            }
        }
        measurements.push(est);
    }
    let mut sorted = measurements.clone();
    sorted.sort_by(f64::total_cmp);
    let percentiles = Percentiles {
        p01: percentile(&sorted, 1.0),
        p10: percentile(&sorted, 10.0),
        p50: percentile(&sorted, 50.0),
        p90: percentile(&sorted, 90.0),
        p99: percentile(&sorted, 99.0),
    };
    Ok(BenchResult {
        measurements,
        percentiles,
    })
}

fn run_protocol(
    prog: &CompiledProgram,
    platform: &Platform,
    cfg: &BenchConfig,
    seed: u64,
    mut stats: Option<&mut SimStats>,
) -> Result<BenchResult, SimError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut measurements = Vec::with_capacity(cfg.num_measurements);
    for _ in 0..cfg.num_measurements {
        // Per-rank accumulated busy time across samples of this measurement.
        let mut accum = vec![0.0f64; prog.num_ranks];
        let mut samples = 0usize;
        loop {
            let outcome = if let Some(stats) = stats.as_deref_mut() {
                let (outcome, sample_stats) = execute_instrumented(prog, platform, &mut rng)?;
                stats.merge(&sample_stats);
                outcome
            } else {
                execute(prog, platform, &mut rng)?
            };
            for (a, t) in accum.iter_mut().zip(&outcome.rank_times) {
                *a += t;
            }
            samples += 1;
            let elapsed = accum.iter().copied().fold(0.0, f64::max);
            if elapsed >= cfg.t_measure || samples >= cfg.max_samples {
                break;
            }
        }
        // Estimate: max over ranks of (elapsed on that rank / n_samples).
        let mut est = accum.iter().map(|a| a / samples as f64).fold(0.0, f64::max);
        // Heavy-tailed timer contamination from the fault plan: the
        // whole measurement (not an individual sample) reads high, which
        // is how wall-clock outliers present in real benchmark output.
        if let Some(plan) = &platform.faults {
            let factor = plan.outlier(measurements.len());
            if factor != 1.0 {
                est *= factor;
                if let Some(stats) = stats.as_deref_mut() {
                    stats.faults.outliers += 1;
                }
            }
        }
        measurements.push(est);
    }
    let mut sorted = measurements.clone();
    sorted.sort_by(f64::total_cmp);
    let percentiles = Percentiles {
        p01: percentile(&sorted, 1.0),
        p10: percentile(&sorted, 10.0),
        p50: percentile(&sorted, 50.0),
        p90: percentile(&sorted, 90.0),
        p99: percentile(&sorted, 99.0),
    };
    Ok(BenchResult {
        measurements,
        percentiles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::TableWorkload;
    use dr_dag::{build_schedule, CostKey, DagBuilder, DecisionSpace, OpSpec};

    fn one_op_program(dur: f64) -> CompiledProgram {
        let mut b = DagBuilder::new();
        b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let mut w = TableWorkload::new(2);
        w.cost_all("c", dur);
        CompiledProgram::compile(&s, &w).unwrap()
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 100.0), 5.0);
        assert_eq!(percentile(&data, 50.0), 3.0);
        assert_eq!(percentile(&data, 25.0), 2.0);
        assert!((percentile(&data, 10.0) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 1.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn noiseless_benchmark_recovers_duration() {
        let prog = one_op_program(2.5e-4);
        let platform = Platform::perlmutter_like().noiseless();
        let res = benchmark(&prog, &platform, &BenchConfig::quick(), 1).unwrap();
        assert!((res.time() - 2.5e-4).abs() < 1e-9, "{}", res.time());
        assert_eq!(
            res.measurements.len(),
            BenchConfig::quick().num_measurements
        );
        // All percentiles identical without noise.
        assert_eq!(res.percentiles.p01, res.percentiles.p99);
    }

    #[test]
    fn measurement_uses_multiple_samples_for_fast_programs() {
        let prog = one_op_program(1e-5);
        let platform = Platform::perlmutter_like().noiseless();
        let cfg = BenchConfig {
            t_measure: 1e-3,
            num_measurements: 3,
            max_samples: 500,
        };
        let res = benchmark(&prog, &platform, &cfg, 1).unwrap();
        // 100 samples of 1e-5 fill 1e-3 seconds; the estimate still
        // recovers the per-invocation time.
        assert!((res.time() - 1e-5).abs() < 1e-10);
    }

    #[test]
    fn max_samples_caps_the_loop() {
        let prog = one_op_program(1e-9);
        let platform = Platform::perlmutter_like().noiseless();
        let cfg = BenchConfig {
            t_measure: 10.0,
            num_measurements: 2,
            max_samples: 7,
        };
        let res = benchmark(&prog, &platform, &cfg, 1).unwrap();
        assert!((res.time() - 1e-9).abs() < 1e-12);
    }

    #[test]
    fn instrumented_benchmark_matches_plain_and_counts_samples() {
        let prog = one_op_program(1e-4);
        let platform = Platform::perlmutter_like(); // noisy
        let plain = benchmark(&prog, &platform, &BenchConfig::quick(), 5).unwrap();
        let (inst, stats) =
            benchmark_instrumented(&prog, &platform, &BenchConfig::quick(), 5).unwrap();
        assert_eq!(plain, inst, "instrumentation must not change measurements");
        assert!(stats.runs > 0);
        // The same instruction count accrues on every sample.
        assert_eq!(stats.instructions % stats.runs, 0);
        assert!(
            stats.instructions >= stats.runs * 2,
            "2 ranks, >= 1 instr each"
        );
        assert!(stats.cpu_busy.iter().all(|&b| b > 0.0));
    }

    #[test]
    fn traced_benchmark_matches_instrumented_and_records_a_span() {
        let prog = one_op_program(1e-4);
        let platform = Platform::perlmutter_like();
        let (plain, _) =
            benchmark_instrumented(&prog, &platform, &BenchConfig::quick(), 5).unwrap();
        let tracer = dr_trace::Tracer::new();
        let mut lane = tracer.lane("eval-0");
        let (traced, stats) =
            benchmark_traced(&prog, &platform, &BenchConfig::quick(), 5, &mut lane).unwrap();
        assert_eq!(plain, traced, "tracing must not change measurements");
        let snap = tracer.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!(s.name, "benchmark");
        assert!(s.end_s.is_some());
        let note = |k: &str| s.notes.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        assert_eq!(note("eval_seed").as_deref(), Some("5"));
        assert_eq!(note("samples").as_deref(), Some(&*stats.runs.to_string()));
        assert!(note("t_median_s").is_some());
        // Disabled tracer: identical results, zero spans.
        let off = dr_trace::Tracer::disabled();
        let mut off_lane = off.lane("eval-0");
        let (quiet, _) =
            benchmark_traced(&prog, &platform, &BenchConfig::quick(), 5, &mut off_lane).unwrap();
        assert_eq!(quiet, plain);
        assert_eq!(off.span_count(), 0);
    }

    #[test]
    fn memo_benchmark_is_deterministic() {
        let prog = one_op_program(1e-4);
        let platform = Platform::perlmutter_like(); // noisy
        let mut memo = SimMemo::default();
        let a = benchmark_memo(&prog, &platform, &BenchConfig::quick(), &mut memo).unwrap();
        let b = benchmark_memo(&prog, &platform, &BenchConfig::quick(), &mut memo).unwrap();
        assert_eq!(a, b, "warm rerun must be bit-identical");
        assert!(
            a.percentiles.p99 > a.percentiles.p01,
            "noise must spread measurements"
        );
        assert!((a.time() - 1e-4).abs() / 1e-4 < 0.05);
        let mut fresh = SimMemo::default();
        let (inst, stats) =
            benchmark_memo_instrumented(&prog, &platform, &BenchConfig::quick(), &mut fresh)
                .unwrap();
        assert_eq!(inst, a, "instrumentation must not change measurements");
        assert!(stats.runs > 0);
    }

    #[test]
    fn memo_benchmark_on_noiseless_platform_recovers_duration() {
        let prog = one_op_program(2.5e-4);
        let platform = Platform::perlmutter_like().noiseless();
        let mut memo = SimMemo::default();
        let res = benchmark_memo(&prog, &platform, &BenchConfig::quick(), &mut memo).unwrap();
        assert!((res.time() - 2.5e-4).abs() < 1e-9, "{}", res.time());
        assert_eq!(res.percentiles.p01, res.percentiles.p99);
    }

    #[test]
    fn noisy_benchmark_is_seed_deterministic_and_spread() {
        let prog = one_op_program(1e-4);
        let platform = Platform::perlmutter_like(); // sigma 0.02
        let a = benchmark(&prog, &platform, &BenchConfig::quick(), 5).unwrap();
        let b = benchmark(&prog, &platform, &BenchConfig::quick(), 5).unwrap();
        assert_eq!(a, b);
        assert!(
            a.percentiles.p99 > a.percentiles.p01,
            "noise must spread measurements"
        );
        // Median stays near the true duration.
        assert!((a.time() - 1e-4).abs() / 1e-4 < 0.05);
    }
}
