//! Discrete-event execution of a compiled program across all ranks.
//!
//! Every rank is an SPMD copy of the same instruction list. Ranks are
//! advanced round-robin; a rank blocks when it reaches an `MPI_Wait` whose
//! matching remote post has not executed yet. If no rank can advance, the
//! program deadlocks (e.g. all ranks waiting on receives before any rank
//! has posted its sends) and the executor reports it instead of hanging.
//!
//! Noise is *position-keyed*: one `sample_seed` is drawn per invocation
//! (from the caller's RNG) and every noisy quantity is a pure function of
//! `(sample_seed, position)` — `(rank, pc)` for instruction durations,
//! `(comm, src, dst)` for wire times. Because no sequential generator
//! threads through the run, the executor's state after retiring a prefix
//! of the program is independent of rank interleaving, which is what lets
//! [`run_to`](Executor::run_to) stop at an instruction boundary, snapshot
//! the state, and later resume bit-identically to a cold run.

use crate::compile::{CompiledProgram, Instr, SimError};
use crate::platform::{NoiseModel, Platform};
use crate::stats::SimStats;
use crate::trace::{Resource, Trace, TraceEvent};
use rand::rngs::SmallRng;
use rand::RngCore;

/// Domain tag for instruction-duration noise keys.
const NK_INSTR: u64 = 1 << 62;
/// Domain tag for wire-time noise keys.
const NK_WIRE: u64 = 2 << 62;

/// Noise key of the instruction at `(rank, pc)`.
#[inline]
fn instr_key(r: usize, pc: usize) -> u64 {
    NK_INSTR | ((r as u64) << 32) | pc as u64
}

/// Noise key of the wire `src → dst` under `comm`.
#[inline]
fn wire_key(comm: usize, src: usize, dst: usize) -> u64 {
    NK_WIRE | ((comm as u64) << 32) | ((src as u64) << 16) | dst as u64
}

/// A dense cache of position-keyed noise factors for one `sample_seed`.
///
/// [`NoiseModel::factor_keyed`] is a pure function of `(seed, key)`, so
/// its draws can be tabulated once and replayed bit-identically — and the
/// memoized bench protocol reuses the *same* per-cell sample seeds for
/// every schedule it evaluates, so the tables amortize across an entire
/// exploration. Slots hold `f64::NAN` until first use (`factor_keyed`
/// never returns NaN: its `u1` uniform is clamped above zero, so the
/// Box-Muller draw is always finite).
///
/// Instruction factors are indexed `[rank][pc]` and wire factors
/// `[(comm * ranks + src) * ranks + dst]` (the same layout as the
/// executor's arrival cache). The factor for a given `(rank, pc)` cell
/// depends only on the key, not the instruction occupying it, so tables
/// are shared across sibling schedules of one decision space — including
/// schedules of *different lengths* (stream-binding choices change how
/// many sync instructions lowering inserts), which is why [`fit`] grows
/// tables in place instead of resetting them.
///
/// [`fit`]: NoiseTable::fit
#[derive(Debug, Default)]
pub(crate) struct NoiseTable {
    instr: Vec<Vec<f64>>,
    wire: Vec<f64>,
    wire_ranks: usize,
}

impl NoiseTable {
    /// Grows the table to cover `prog`'s shape, keeping every factor
    /// already drawn (cells are key-addressed, so entries stay valid
    /// across programs of any shape with the same rank count). Only a
    /// rank-count change — which never happens within one exploration —
    /// invalidates the wire layout and resets that half.
    pub(crate) fn fit(&mut self, prog: &CompiledProgram) {
        let n = prog.names.len();
        if self.instr.len() < prog.num_ranks {
            self.instr.resize(prog.num_ranks, Vec::new());
        }
        for row in &mut self.instr[..prog.num_ranks] {
            if row.len() < n {
                row.resize(n, f64::NAN);
            }
        }
        let wire_len = prog.comms.len() * prog.num_ranks * prog.num_ranks;
        if self.wire_ranks != prog.num_ranks {
            self.wire_ranks = prog.num_ranks;
            self.wire = vec![f64::NAN; wire_len];
        } else if self.wire.len() < wire_len {
            self.wire.resize(wire_len, f64::NAN);
        }
    }

    #[inline]
    fn instr_factor(&mut self, noise: &NoiseModel, seed: u64, r: usize, pc: usize) -> f64 {
        let cached = self.instr[r][pc];
        if cached.is_nan() {
            let f = noise.factor_keyed(seed, instr_key(r, pc));
            self.instr[r][pc] = f;
            f
        } else {
            cached
        }
    }

    #[inline]
    fn wire_factor(
        &mut self,
        noise: &NoiseModel,
        seed: u64,
        comm: usize,
        src: usize,
        dst: usize,
    ) -> f64 {
        let slot = (comm * self.wire_ranks + src) * self.wire_ranks + dst;
        let cached = self.wire[slot];
        if cached.is_nan() {
            let f = noise.factor_keyed(seed, wire_key(comm, src, dst));
            self.wire[slot] = f;
            f
        } else {
            cached
        }
    }
}

/// Completion times of one simulated program invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Finish time of each rank, seconds from program start.
    pub rank_times: Vec<f64>,
}

impl ExecOutcome {
    /// Program time: the slowest rank.
    pub fn time(&self) -> f64 {
        self.rank_times.iter().copied().fold(0.0, f64::max)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    Advanced,
    Blocked,
    /// The rank reached the run limit (but not the end of its program).
    Capped,
    Done,
}

/// How a bounded run ended (errors are reported separately).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum RunEnd {
    /// Every rank retired its whole program.
    Done,
    /// Every rank is either done or stopped at the instruction limit; the
    /// run can be resumed from here.
    Capped,
}

#[derive(Debug, Clone, PartialEq)]
struct RankState {
    pc: usize,
    cpu: f64,
    stream_tail: Vec<f64>,
    /// Kernel execution intervals per stream, for the contention model.
    kernel_intervals: Vec<Vec<(f64, f64)>>,
    event_time: Vec<Option<f64>>,
    event_stream: Vec<Option<usize>>,
    /// Per comm index: the time this rank entered a collective (set on
    /// first arrival, consumed when all ranks have entered).
    collective_entry: Vec<Option<f64>>,
    /// Per comm index: post time of each send `(peer, bytes, t)`.
    send_posts: Vec<Option<Vec<(usize, u64, f64)>>>,
    /// Per comm index: post time of each receive `(peer, bytes, t)`.
    recv_posts: Vec<Option<Vec<(usize, u64, f64)>>>,
}

impl RankState {
    fn new(prog: &CompiledProgram) -> Self {
        RankState {
            pc: 0,
            cpu: 0.0,
            stream_tail: vec![0.0; prog.num_streams],
            kernel_intervals: vec![Vec::new(); prog.num_streams],
            event_time: vec![None; prog.num_events],
            event_stream: vec![None; prog.num_events],
            collective_entry: vec![None; prog.comms.len()],
            send_posts: vec![None; prog.comms.len()],
            recv_posts: vec![None; prog.comms.len()],
        }
    }

    /// Resizes per-dimension vectors to `prog`'s shape. Sound when `prog`
    /// shares the retired instruction prefix: indices the prefix touched
    /// are identical in both programs (the prefix hash covers them), and
    /// everything else is still at its default, so growing adds defaults
    /// and shrinking drops only defaults.
    fn fitted(mut self, prog: &CompiledProgram) -> Self {
        self.stream_tail.resize(prog.num_streams, 0.0);
        self.kernel_intervals.resize(prog.num_streams, Vec::new());
        self.event_time.resize(prog.num_events, None);
        self.event_stream.resize(prog.num_events, None);
        self.collective_entry.resize(prog.comms.len(), None);
        self.send_posts.resize(prog.comms.len(), None);
        self.recv_posts.resize(prog.comms.len(), None);
        self
    }
}

/// Executes one invocation of `prog` on `platform`, drawing measurement
/// noise from `rng`. Returns per-rank completion times.
pub fn execute(
    prog: &CompiledProgram,
    platform: &Platform,
    rng: &mut SmallRng,
) -> Result<ExecOutcome, SimError> {
    execute_seeded(prog, platform, rng.next_u64()).map(|(o, _)| o)
}

/// Like [`execute`], additionally recording a per-operation [`Trace`]
/// (host spans and kernel stream spans) for timeline inspection.
pub fn execute_traced(
    prog: &CompiledProgram,
    platform: &Platform,
    rng: &mut SmallRng,
) -> Result<(ExecOutcome, Trace), SimError> {
    let mut ex = Executor::new(prog, platform, true, rng.next_u64());
    ex.run_to(usize::MAX)?;
    let (o, t, _) = ex.into_result();
    Ok((o, t.expect("tracing was enabled")))
}

/// Like [`execute`], additionally returning the invocation's
/// [`SimStats`] (instruction counts, message protocol split, bytes
/// moved, sync-op counts per kind, per-resource busy time).
pub fn execute_instrumented(
    prog: &CompiledProgram,
    platform: &Platform,
    rng: &mut SmallRng,
) -> Result<(ExecOutcome, SimStats), SimError> {
    execute_seeded(prog, platform, rng.next_u64())
}

/// The position-keyed execution primitive: one invocation whose noise is
/// entirely determined by `sample_seed`. [`execute`] and friends draw the
/// seed from their RNG and delegate here; checkpoint-resumed runs (see
/// [`execute_memo`](crate::memo::execute_memo)) are bit-identical to this
/// function for the same seed.
pub fn execute_seeded(
    prog: &CompiledProgram,
    platform: &Platform,
    sample_seed: u64,
) -> Result<(ExecOutcome, SimStats), SimError> {
    let mut ex = Executor::new(prog, platform, false, sample_seed);
    ex.run_to(usize::MAX)?;
    let (o, _, s) = ex.into_result();
    Ok((o, s))
}

/// A sparse arrival-cache entry: `(comm, src, dst)` endpoint indices
/// mapped to `(arrival, send_complete)` times.
type ArrivalEntry = ((usize, usize, usize), (f64, f64));

/// A snapshot of executor state after retiring a program prefix: enough
/// to resume the run later — or on a *different* compiled program sharing
/// the same instruction prefix — bit-identically to a cold run.
///
/// Arrival times are stored sparsely (a prefix touches few transfers);
/// per-rank vectors are resized to the resuming program's dimensions on
/// restore. Entries beyond the prefix's reach are provably still at their
/// defaults, so resizing loses nothing.
#[derive(Debug, Clone)]
pub(crate) struct ExecSnapshot {
    ranks: Vec<RankState>,
    arrivals: Vec<ArrivalEntry>,
    stats: SimStats,
    steps: u64,
}

pub(crate) struct Executor<'a> {
    prog: &'a CompiledProgram,
    platform: &'a Platform,
    /// Seed of this invocation's position-keyed noise.
    sample_seed: u64,
    ranks: Vec<RankState>,
    /// Cached transfer arrival / send-completion times, flat-indexed by
    /// `(comm * R + src) * R + dst`, so both endpoints observe identical
    /// times without recomputing the (pure) wire time per wait.
    arrivals: Vec<Option<(f64, f64)>>,
    trace: Option<Trace>,
    stats: SimStats,
    /// Set when a blocked step still made observable progress (e.g. a
    /// rank registering its entry into a collective) so the deadlock
    /// detector does not fire spuriously.
    noted_progress: bool,
    /// Per-rank straggler compute multipliers from the fault plan
    /// (all 1.0 without a plan).
    rank_factors: Vec<f64>,
    /// Messages the fault plan drops, flat-indexed like `arrivals`: the
    /// send is lost, so the receiver (and a rendezvous sender) blocks
    /// forever — surfaced as a structured deadlock, never a hang.
    dropped: Vec<bool>,
    /// Instructions retired, for the watchdog budget.
    steps: u64,
    /// Shared noise-factor table for this invocation's `sample_seed`
    /// (memoized path); `None` computes factors directly.
    noise_tab: Option<&'a mut NoiseTable>,
}

impl<'a> Executor<'a> {
    pub(crate) fn new(
        prog: &'a CompiledProgram,
        platform: &'a Platform,
        traced: bool,
        sample_seed: u64,
    ) -> Self {
        let mut stats = SimStats::for_shape(prog.num_ranks, prog.num_streams);
        let rank_factors: Vec<f64> = match &platform.faults {
            Some(plan) => (0..prog.num_ranks).map(|r| plan.rank_factor(r)).collect(),
            None => vec![1.0; prog.num_ranks],
        };
        let nranks = prog.num_ranks;
        let mut dropped = vec![false; prog.comms.len() * nranks * nranks];
        let mut drops = 0u64;
        if let Some(plan) = &platform.faults {
            for (c, table) in prog.comms.iter().enumerate() {
                let key = dr_fault::key_hash(&table.key.0);
                for (src, sends) in table.sends.iter().enumerate() {
                    for &(dst, _) in sends {
                        if plan.message(key, src, dst) == Some(dr_fault::MessageFault::Drop)
                            && !std::mem::replace(
                                &mut dropped[(c * nranks + src) * nranks + dst],
                                true,
                            )
                        {
                            drops += 1;
                        }
                    }
                }
            }
        }
        stats.faults.drops = drops;
        Executor {
            prog,
            platform,
            sample_seed,
            ranks: (0..prog.num_ranks).map(|_| RankState::new(prog)).collect(),
            arrivals: vec![None; prog.comms.len() * nranks * nranks],
            trace: traced.then(Trace::default),
            stats,
            noted_progress: false,
            rank_factors,
            dropped,
            steps: 0,
            noise_tab: None,
        }
    }

    /// Attaches a noise-factor table (see [`NoiseTable`]); factors are
    /// then looked up before being computed. Purely a fast path — the
    /// table replays exactly what `factor_keyed` would return.
    pub(crate) fn with_noise(mut self, tab: Option<&'a mut NoiseTable>) -> Self {
        self.noise_tab = tab;
        self
    }

    /// Rebuilds an executor mid-run from a snapshot, fitted to `prog`'s
    /// dimensions. `prog` must share the instruction prefix the snapshot
    /// was taken at (the memo layer keys snapshots by prefix hash).
    pub(crate) fn resume(
        prog: &'a CompiledProgram,
        platform: &'a Platform,
        sample_seed: u64,
        snap: &ExecSnapshot,
    ) -> Self {
        let mut ex = Executor::new(prog, platform, false, sample_seed);
        ex.ranks = snap
            .ranks
            .iter()
            .map(|rs| rs.clone().fitted(prog))
            .collect();
        let nranks = prog.num_ranks;
        for &((comm, src, dst), times) in &snap.arrivals {
            debug_assert!(comm < prog.comms.len(), "snapshot comm beyond prefix");
            ex.arrivals[(comm * nranks + src) * nranks + dst] = Some(times);
        }
        ex.stats = snap.stats.clone();
        // Per-stream busy counters carry the donor program's stream count;
        // refit them like `RankState::fitted` (prefix-untouched entries are
        // provably still 0.0, so resizing loses nothing).
        ex.stats.cpu_busy.resize(prog.num_ranks, 0.0);
        for sb in &mut ex.stats.stream_busy {
            sb.resize(prog.num_streams, 0.0);
        }
        ex.stats
            .stream_busy
            .resize(prog.num_ranks, vec![0.0; prog.num_streams]);
        ex.steps = snap.steps;
        ex
    }

    /// Captures the current state for a later [`resume`](Executor::resume).
    pub(crate) fn snapshot(&self) -> ExecSnapshot {
        let nranks = self.prog.num_ranks;
        let arrivals = self
            .arrivals
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                a.map(|times| {
                    let dst = i % nranks;
                    let src = (i / nranks) % nranks;
                    let comm = i / (nranks * nranks);
                    ((comm, src, dst), times)
                })
            })
            .collect();
        ExecSnapshot {
            ranks: self.ranks.clone(),
            arrivals,
            stats: self.stats.clone(),
            steps: self.steps,
        }
    }

    /// Advances every rank as far as possible, retiring no instruction at
    /// index `>= limit`. Returns [`RunEnd::Done`] when all ranks finished,
    /// [`RunEnd::Capped`] when at least one rank stopped at the limit and
    /// nothing else can advance. Deadlock is only reported when no rank is
    /// capped (a capped run cannot distinguish "blocked on the suffix"
    /// from deadlock — the resumed full run detects it identically).
    pub(crate) fn run_to(&mut self, limit: usize) -> Result<RunEnd, SimError> {
        loop {
            let mut progressed = false;
            let mut all_done = true;
            let mut any_capped = false;
            for r in 0..self.prog.num_ranks {
                loop {
                    match self.step(r, limit)? {
                        Step::Advanced => progressed = true,
                        Step::Blocked => {
                            all_done = false;
                            break;
                        }
                        Step::Capped => {
                            all_done = false;
                            any_capped = true;
                            break;
                        }
                        Step::Done => break,
                    }
                }
            }
            if all_done {
                return Ok(RunEnd::Done);
            }
            if self.platform.max_virtual_time > 0.0 {
                let vt = self.ranks.iter().map(|r| r.cpu).fold(0.0, f64::max);
                if vt > self.platform.max_virtual_time {
                    return Err(SimError::Budget {
                        steps: self.steps,
                        detail: format!(
                            "virtual time {vt:.6}s exceeds limit {:.6}s",
                            self.platform.max_virtual_time
                        ),
                    });
                }
            }
            progressed |= std::mem::take(&mut self.noted_progress);
            if !progressed {
                if any_capped {
                    return Ok(RunEnd::Capped);
                }
                let blocked: Vec<String> = (0..self.prog.num_ranks)
                    .filter(|&r| self.ranks[r].pc < self.prog.instrs[r].len())
                    .map(|r| format!("rank {r} at {}", self.prog.names[self.ranks[r].pc]))
                    .collect();
                return Err(SimError::Deadlock {
                    detail: blocked.join("; "),
                });
            }
        }
    }

    /// Consumes a [`RunEnd::Done`] executor into its outcome.
    pub(crate) fn into_result(mut self) -> (ExecOutcome, Option<Trace>, SimStats) {
        self.stats.runs = 1;
        (
            ExecOutcome {
                rank_times: self.ranks.iter().map(|r| r.cpu).collect(),
            },
            self.trace,
            self.stats,
        )
    }

    /// Noise factor for the instruction at `(rank, pc)`.
    #[inline]
    fn instr_noise(&mut self, r: usize, pc: usize) -> f64 {
        match self.noise_tab.as_deref_mut() {
            Some(tab) => tab.instr_factor(&self.platform.noise, self.sample_seed, r, pc),
            None => self
                .platform
                .noise
                .factor_keyed(self.sample_seed, instr_key(r, pc)),
        }
    }

    /// Noise factor for the wire `src → dst` under `comm`.
    #[inline]
    fn wire_noise(&mut self, comm: usize, src: usize, dst: usize) -> f64 {
        match self.noise_tab.as_deref_mut() {
            Some(tab) => tab.wire_factor(&self.platform.noise, self.sample_seed, comm, src, dst),
            None => self
                .platform
                .noise
                .factor_keyed(self.sample_seed, wire_key(comm, src, dst)),
        }
    }

    fn step(&mut self, r: usize, limit: usize) -> Result<Step, SimError> {
        let prog = self.prog;
        let pc = self.ranks[r].pc;
        if pc >= prog.instrs[r].len() {
            return Ok(Step::Done);
        }
        if pc >= limit {
            return Ok(Step::Capped);
        }
        if self.platform.max_steps > 0 && self.steps >= self.platform.max_steps {
            return Err(SimError::Budget {
                steps: self.steps,
                detail: format!("step limit {} reached", self.platform.max_steps),
            });
        }
        // Blocking checks first (no state mutation on a blocked step).
        match &prog.instrs[r][pc] {
            Instr::WaitRecvs { comm } => {
                if self.ranks[r].recv_posts[*comm].is_none() {
                    return Err(SimError::WaitBeforePost {
                        rank: r,
                        name: prog.names[pc].clone(),
                    });
                }
                for &(peer, _) in &prog.comms[*comm].recvs[r] {
                    // A dropped send never arrives: the receiver blocks
                    // forever and the deadlock detector reports it.
                    if self.ranks[peer].send_posts[*comm].is_none()
                        || self.is_dropped(*comm, peer, r)
                    {
                        return Ok(Step::Blocked);
                    }
                }
            }
            Instr::WaitSends { comm } => {
                if self.ranks[r].send_posts[*comm].is_none() {
                    return Err(SimError::WaitBeforePost {
                        rank: r,
                        name: prog.names[pc].clone(),
                    });
                }
                for &(peer, bytes) in &prog.comms[*comm].sends[r] {
                    // A rendezvous send whose message is dropped can
                    // never complete its handshake; eager sends are
                    // buffered and complete locally even when lost.
                    if !self.platform.is_eager(bytes)
                        && (self.ranks[peer].recv_posts[*comm].is_none()
                            || self.is_dropped(*comm, r, peer))
                    {
                        return Ok(Step::Blocked);
                    }
                }
            }
            Instr::AllReduce { comm } => {
                // Register this rank's entry once; complete only when all
                // ranks have entered (blocking collective semantics).
                if self.ranks[r].collective_entry[*comm].is_none() {
                    self.ranks[r].collective_entry[*comm] = Some(self.ranks[r].cpu);
                    self.noted_progress = true;
                }
                let comm = *comm;
                if (0..prog.num_ranks).any(|p| self.ranks[p].collective_entry[comm].is_none()) {
                    return Ok(Step::Blocked);
                }
            }
            _ => {}
        }

        let cpu_before = self.ranks[r].cpu;
        let mut kernel_span: Option<(usize, f64, f64)> = None;
        match &prog.instrs[r][pc] {
            Instr::CpuWork { dur } => {
                let f = self.instr_noise(r, pc);
                let straggle = self.rank_factors[r];
                if straggle != 1.0 {
                    self.stats.faults.stragglers += 1;
                }
                self.ranks[r].cpu += dur * f * straggle;
            }
            Instr::KernelLaunch { stream, dur } => {
                let (stream, dur) = (*stream, *dur);
                let f = self.instr_noise(r, pc);
                let straggle = self.rank_factors[r];
                if straggle != 1.0 {
                    self.stats.faults.stragglers += 1;
                }
                let spike = match &self.platform.faults {
                    Some(plan) => plan.kernel_spike(r, pc),
                    None => 1.0,
                };
                if spike != 1.0 {
                    self.stats.faults.spikes += 1;
                }
                self.ranks[r].cpu += self.platform.kernel_launch_overhead;
                let start = self.ranks[r].cpu.max(self.ranks[r].stream_tail[stream]);
                let end = self.contended_end(r, stream, start, dur * f * straggle * spike);
                self.ranks[r].stream_tail[stream] = end;
                self.ranks[r].kernel_intervals[stream].push((start, end));
                kernel_span = Some((stream, start, end));
            }
            Instr::EventRecord { event, stream } => {
                self.stats.sync_cer += 1;
                self.ranks[r].cpu += self.platform.event_record_overhead;
                // The record is an in-stream marker: it completes when
                // everything enqueued in the stream so far has completed.
                self.ranks[r].event_time[*event] =
                    Some(self.ranks[r].stream_tail[*stream].max(self.ranks[r].cpu));
                self.ranks[r].event_stream[*event] = Some(*stream);
            }
            Instr::EventSync { events } => {
                self.stats.sync_ces += 1;
                let mut t = self.ranks[r].cpu + self.platform.event_sync_overhead;
                for &e in events.iter() {
                    let et =
                        self.ranks[r].event_time[e].expect("schedule orders records before syncs");
                    t = t.max(et);
                }
                self.ranks[r].cpu = t;
            }
            Instr::StreamWaitEvent { stream, event } => {
                self.stats.sync_cswe += 1;
                self.ranks[r].cpu += self.platform.stream_wait_overhead;
                let mut et = self.ranks[r].event_time[*event]
                    .expect("schedule orders records before stream waits");
                let src_stream =
                    self.ranks[r].event_stream[*event].expect("recorded events know their stream");
                if self.platform.gpu_of(src_stream) != self.platform.gpu_of(*stream) {
                    // Peer synchronization crosses the GPU interconnect.
                    et += self.platform.cross_gpu_sync_latency;
                }
                let tail = &mut self.ranks[r].stream_tail[*stream];
                *tail = tail.max(et);
            }
            Instr::PostSends { comm } => {
                let mut posts = Vec::with_capacity(prog.comms[*comm].sends[r].len());
                for &(peer, bytes) in &prog.comms[*comm].sends[r] {
                    self.ranks[r].cpu += self.platform.isend_overhead;
                    posts.push((peer, bytes, self.ranks[r].cpu));
                }
                self.ranks[r].send_posts[*comm] = Some(posts);
            }
            Instr::PostRecvs { comm } => {
                let mut posts = Vec::with_capacity(prog.comms[*comm].recvs[r].len());
                for &(peer, bytes) in &prog.comms[*comm].recvs[r] {
                    self.ranks[r].cpu += self.platform.irecv_overhead;
                    posts.push((peer, bytes, self.ranks[r].cpu));
                }
                self.ranks[r].recv_posts[*comm] = Some(posts);
            }
            Instr::WaitRecvs { comm } => {
                let mut t = self.ranks[r].cpu + self.platform.wait_overhead;
                for &(peer, _) in &prog.comms[*comm].recvs[r] {
                    let (arrival, _) = self.transfer(*comm, peer, r);
                    t = t.max(arrival);
                }
                self.ranks[r].cpu = t;
            }
            Instr::WaitSends { comm } => {
                let mut t = self.ranks[r].cpu + self.platform.wait_overhead;
                for &(peer, _) in &prog.comms[*comm].sends[r] {
                    let (_, send_complete) = self.transfer(*comm, r, peer);
                    t = t.max(send_complete);
                }
                self.ranks[r].cpu = t;
            }
            Instr::AllReduce { comm } => {
                let entries: f64 = (0..prog.num_ranks)
                    .map(|p| {
                        self.ranks[p].collective_entry[*comm]
                            .expect("blocking logic ensures all ranks entered")
                    })
                    .fold(0.0, f64::max);
                let bytes = prog.comms[*comm].sends[r]
                    .first()
                    .map(|&(_, b)| b)
                    .expect("collective pattern validated at compile time");
                let dur =
                    self.platform.collective_time(prog.num_ranks, bytes) * self.instr_noise(r, pc);
                self.ranks[r].cpu =
                    entries.max(self.ranks[r].cpu) + self.platform.wait_overhead + dur;
                self.stats.collective_ops += 1;
                self.stats.bytes_moved += bytes;
            }
            Instr::DeviceSync => {
                let tail_max = self.ranks[r]
                    .stream_tail
                    .iter()
                    .copied()
                    .fold(0.0f64, f64::max);
                self.ranks[r].cpu = self.ranks[r].cpu.max(tail_max);
            }
        }
        self.steps += 1;
        self.stats.instructions += 1;
        self.stats.cpu_busy[r] += self.ranks[r].cpu - cpu_before;
        if let Some((stream, start, end)) = kernel_span {
            self.stats.stream_busy[r][stream] += end - start;
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.events.push(TraceEvent {
                rank: r,
                name: prog.names[pc].clone(),
                resource: Resource::Cpu,
                start: cpu_before,
                end: self.ranks[r].cpu,
            });
            if let Some((stream, start, end)) = kernel_span {
                trace.events.push(TraceEvent {
                    rank: r,
                    name: prog.names[pc].clone(),
                    resource: Resource::Stream(stream),
                    start,
                    end,
                });
            }
        }
        self.ranks[r].pc += 1;
        Ok(Step::Advanced)
    }

    #[inline]
    fn is_dropped(&self, comm: usize, src: usize, dst: usize) -> bool {
        let n = self.prog.num_ranks;
        self.dropped[(comm * n + src) * n + dst]
    }

    /// Kernel end time under the inter-stream contention model: a kernel
    /// accrues `gpu_contention` extra seconds per second of overlap with
    /// kernels already placed in *other streams of the same GPU*. Solved
    /// by a short fixed point: extending the kernel can only add bounded
    /// overlap.
    fn contended_end(&self, r: usize, stream: usize, start: f64, dur: f64) -> f64 {
        let c = self.platform.gpu_contention;
        if c == 0.0 {
            return start + dur;
        }
        let gpu = self.platform.gpu_of(stream);
        let mut end = start + dur;
        for _ in 0..8 {
            let mut overlap = 0.0;
            for (s, intervals) in self.ranks[r].kernel_intervals.iter().enumerate() {
                if s == stream || self.platform.gpu_of(s) != gpu {
                    continue;
                }
                for &(a, b) in intervals {
                    overlap += (end.min(b) - start.max(a)).max(0.0);
                }
            }
            let new_end = start + dur + c * overlap;
            if (new_end - end).abs() < 1e-12 {
                return new_end;
            }
            end = new_end;
        }
        end
    }

    /// Arrival time at `dst` and completion time at `src` of the message
    /// `src → dst` under `comm`, computed once and cached. Both post times
    /// must already be known for rendezvous messages (the step() blocking
    /// logic guarantees it); eager messages need only the send post. The
    /// wire-time noise is keyed by `(comm, src, dst)`, so the cache is
    /// purely a fast path — recomputation would yield the same times.
    fn transfer(&mut self, comm: usize, src: usize, dst: usize) -> (f64, f64) {
        let n = self.prog.num_ranks;
        let slot = (comm * n + src) * n + dst;
        if let Some(cached) = self.arrivals[slot] {
            return cached;
        }
        let bytes = self.prog.comms[comm].sends[src]
            .iter()
            .find(|&&(p, _)| p == dst)
            .map(|&(_, b)| b)
            .expect("comm table validated pairwise at compile time");
        let send_post = self.ranks[src].send_posts[comm]
            .as_ref()
            .expect("blocking logic ensures sender posted")
            .iter()
            .find(|&&(p, _, _)| p == dst)
            .map(|&(_, _, t)| t)
            .expect("validated pairwise");
        let recv_post = self.ranks[dst].recv_posts[comm].as_ref().map(|posts| {
            posts
                .iter()
                .find(|&&(p, _, _)| p == src)
                .map(|&(_, _, t)| t)
                .expect("validated pairwise")
        });
        let mut wire = self.platform.wire_time(bytes) * self.wire_noise(comm, src, dst);
        if let Some(plan) = &self.platform.faults {
            let key = dr_fault::key_hash(&self.prog.comms[comm].key.0);
            if let Some(dr_fault::MessageFault::Delay(extra)) = plan.message(key, src, dst) {
                wire += extra;
                self.stats.faults.delays += 1;
            }
        }
        self.stats.bytes_moved += bytes;
        if self.platform.is_eager(bytes) {
            self.stats.eager_msgs += 1;
        } else {
            self.stats.rendezvous_msgs += 1;
        }
        let result = if self.platform.is_eager(bytes) {
            // Eager: payload leaves immediately and the send completes at
            // once (buffered). The receiver's wait clamps the arrival to
            // its own timeline, which is already past its receive post,
            // so no recv_post term is needed here.
            (send_post + wire, send_post)
        } else {
            // Rendezvous: the transfer starts once both sides have posted.
            let rp = recv_post.expect("blocking logic ensures receiver posted");
            let start = send_post.max(rp);
            let arrival = start + wire;
            (arrival, arrival)
        };
        self.arrivals[slot] = Some(result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledProgram;
    use crate::workload::{CommPattern, TableWorkload};
    use dr_dag::{build_schedule, CommKey, CostKey, DagBuilder, DecisionSpace, OpSpec, Schedule};
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    fn compile(
        build: impl FnOnce(&mut DagBuilder),
        pick: impl Fn(&DecisionSpace) -> dr_dag::Traversal,
        workload: &TableWorkload,
    ) -> (CompiledProgram, Schedule) {
        let mut b = DagBuilder::new();
        build(&mut b);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = pick(&sp);
        let s = build_schedule(&sp, &t);
        (CompiledProgram::compile(&s, workload).unwrap(), s)
    }

    #[test]
    fn single_cpu_op_takes_its_duration() {
        let mut w = TableWorkload::new(1);
        w.cost_all("c", 3e-3);
        let (p, _) = compile(
            |b| {
                b.add("c", OpSpec::CpuWork(CostKey::new("c")));
            },
            |sp| sp.enumerate().next().unwrap(),
            &w,
        );
        let platform = Platform::perlmutter_like().noiseless();
        let out = execute(&p, &platform, &mut rng()).unwrap();
        assert!((out.time() - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn same_stream_kernels_serialize_different_streams_overlap() {
        let mut w = TableWorkload::new(1);
        w.cost_all("k1", 1e-3).cost_all("k2", 1e-3);
        let platform = Platform {
            gpu_contention: 0.0,
            ..Platform::perlmutter_like().noiseless()
        };
        let build = |b: &mut DagBuilder| {
            b.add("k1", OpSpec::GpuKernel(CostKey::new("k1")));
            b.add("k2", OpSpec::GpuKernel(CostKey::new("k2")));
        };
        let same = |sp: &DecisionSpace| {
            sp.traversal_from_names(&[("k1", Some(0)), ("k2", Some(0))])
                .unwrap()
        };
        let diff = |sp: &DecisionSpace| {
            sp.traversal_from_names(&[("k1", Some(0)), ("k2", Some(1))])
                .unwrap()
        };
        let (p_same, _) = compile(build, same, &w);
        let (p_diff, _) = compile(build, diff, &w);
        let t_same = execute(&p_same, &platform, &mut rng()).unwrap().time();
        let t_diff = execute(&p_diff, &platform, &mut rng()).unwrap().time();
        assert!(t_same > 1.9e-3, "serialized kernels: {t_same}");
        assert!(t_diff < 1.2e-3, "overlapped kernels: {t_diff}");
    }

    #[test]
    fn contention_slows_overlapped_kernels() {
        let mut w = TableWorkload::new(1);
        w.cost_all("k1", 1e-3).cost_all("k2", 1e-3);
        let build = |b: &mut DagBuilder| {
            b.add("k1", OpSpec::GpuKernel(CostKey::new("k1")));
            b.add("k2", OpSpec::GpuKernel(CostKey::new("k2")));
        };
        let diff = |sp: &DecisionSpace| {
            sp.traversal_from_names(&[("k1", Some(0)), ("k2", Some(1))])
                .unwrap()
        };
        let free = Platform {
            gpu_contention: 0.0,
            ..Platform::perlmutter_like().noiseless()
        };
        let contended = Platform {
            gpu_contention: 0.5,
            ..free.clone()
        };
        let (p, _) = compile(build, diff, &w);
        let t_free = execute(&p, &free, &mut rng()).unwrap().time();
        let t_cont = execute(&p, &contended, &mut rng()).unwrap().time();
        assert!(
            t_cont > t_free,
            "contention must cost time: {t_cont} vs {t_free}"
        );
        // Still cheaper than full serialization (contention 0.5 < 1.0).
        assert!(t_cont < 2e-3);
    }

    #[test]
    fn event_sync_blocks_cpu_until_kernel_done() {
        let mut w = TableWorkload::new(1);
        w.cost_all("k", 5e-3).cost_all("c", 1e-6);
        let build = |b: &mut DagBuilder| {
            let k = b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
            let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
            b.edge(k, c);
        };
        let (p, _) = compile(
            build,
            |sp| {
                sp.traversal_from_names(&[
                    ("k", Some(0)),
                    ("CER-after-k", None),
                    ("CES-b4-c", None),
                    ("c", None),
                ])
                .unwrap()
            },
            &w,
        );
        let platform = Platform::perlmutter_like().noiseless();
        let out = execute(&p, &platform, &mut rng()).unwrap();
        assert!(
            out.time() >= 5e-3,
            "CPU op must wait for the kernel: {}",
            out.time()
        );
    }

    #[test]
    fn cross_stream_wait_orders_kernels() {
        let mut w = TableWorkload::new(1);
        w.cost_all("k1", 2e-3).cost_all("k2", 2e-3);
        let platform = Platform {
            gpu_contention: 0.0,
            ..Platform::perlmutter_like().noiseless()
        };
        let build = |b: &mut DagBuilder| {
            let a = b.add("k1", OpSpec::GpuKernel(CostKey::new("k1")));
            let c = b.add("k2", OpSpec::GpuKernel(CostKey::new("k2")));
            b.edge(a, c);
        };
        let (p, _) = compile(
            build,
            |sp| {
                sp.traversal_from_names(&[("k1", Some(0)), ("k2", Some(1))])
                    .unwrap()
            },
            &w,
        );
        let out = execute(&p, &platform, &mut rng()).unwrap();
        // Dependent kernels serialize even across streams.
        assert!(out.time() >= 4e-3, "{}", out.time());
    }

    #[test]
    fn device_sync_waits_for_all_streams() {
        let mut w = TableWorkload::new(1);
        w.cost_all("k", 7e-3);
        let (p, _) = compile(
            |b| {
                b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
            },
            |sp| sp.enumerate().next().unwrap(),
            &w,
        );
        let platform = Platform::perlmutter_like().noiseless();
        let out = execute(&p, &platform, &mut rng()).unwrap();
        assert!(out.time() >= 7e-3);
    }

    fn exchange_build(b: &mut DagBuilder) {
        let key = CommKey::new("x");
        let ps = b.add("PostSends", OpSpec::PostSends(key.clone()));
        let pr = b.add("PostRecvs", OpSpec::PostRecvs(key.clone()));
        let ws = b.add("WaitSends", OpSpec::WaitSends(key.clone()));
        let wr = b.add("WaitRecvs", OpSpec::WaitRecvs(key));
        b.edge(ps, ws);
        b.edge(pr, wr);
        b.edge(ps, wr);
    }

    #[test]
    fn exchange_completes_and_charges_wire_time() {
        let mut w = TableWorkload::new(2);
        let bytes = 1 << 20; // rendezvous-sized
        w.comm_all_to_all("x", bytes);
        let (p, _) = compile(
            exchange_build,
            |sp| {
                sp.traversal_from_names(&[
                    ("PostRecvs", None),
                    ("PostSends", None),
                    ("WaitSends", None),
                    ("WaitRecvs", None),
                ])
                .unwrap()
            },
            &w,
        );
        let platform = Platform::perlmutter_like().noiseless();
        let out = execute(&p, &platform, &mut rng()).unwrap();
        assert!(out.time() >= platform.wire_time(bytes), "{}", out.time());
        assert_eq!(out.rank_times.len(), 2);
    }

    #[test]
    fn eager_messages_do_not_need_recv_for_send_completion() {
        let mut w = TableWorkload::new(2);
        w.comm_all_to_all("x", 512); // below eager threshold
        let (p, _) = compile(
            exchange_build,
            |sp| {
                sp.traversal_from_names(&[
                    ("PostSends", None),
                    ("WaitSends", None),
                    ("PostRecvs", None),
                    ("WaitRecvs", None),
                ])
                .unwrap()
            },
            &w,
        );
        let platform = Platform::perlmutter_like().noiseless();
        // Sends complete before receives are posted: must not deadlock.
        let out = execute(&p, &platform, &mut rng()).unwrap();
        assert!(out.time() > 0.0);
    }

    #[test]
    fn rendezvous_wait_before_remote_recv_deadlocks_when_recv_never_posts() {
        // Both ranks: PostSends then WaitSends (rendezvous) with the recv
        // posts scheduled *after* the send wait. SPMD symmetry means no
        // rank ever posts receives before blocking: deadlock.
        let mut w = TableWorkload::new(2);
        w.comm_all_to_all("x", 1 << 20);
        let (p, _) = compile(
            exchange_build,
            |sp| {
                sp.traversal_from_names(&[
                    ("PostSends", None),
                    ("WaitSends", None),
                    ("PostRecvs", None),
                    ("WaitRecvs", None),
                ])
                .unwrap()
            },
            &w,
        );
        let platform = Platform::perlmutter_like().noiseless();
        match execute(&p, &platform, &mut rng()) {
            Err(SimError::Deadlock { .. }) => {}
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn asymmetric_sizes_by_rank_are_supported() {
        // Rank 0 sends 1 MiB to rank 1; rank 1 sends 2 MiB back.
        let mut w = TableWorkload::new(2);
        w.comm_on(
            0,
            "x",
            CommPattern {
                sends: vec![(1, 1 << 20)],
                recvs: vec![(1, 2 << 20)],
            },
        );
        w.comm_on(
            1,
            "x",
            CommPattern {
                sends: vec![(0, 2 << 20)],
                recvs: vec![(0, 1 << 20)],
            },
        );
        let (p, _) = compile(
            exchange_build,
            |sp| {
                sp.traversal_from_names(&[
                    ("PostRecvs", None),
                    ("PostSends", None),
                    ("WaitSends", None),
                    ("WaitRecvs", None),
                ])
                .unwrap()
            },
            &w,
        );
        let platform = Platform::perlmutter_like().noiseless();
        let out = execute(&p, &platform, &mut rng()).unwrap();
        // Rank 0 waits for the 2 MiB message; both finish after its wire time.
        assert!(out.rank_times[0] >= platform.wire_time(2 << 20));
    }

    #[test]
    fn noiseless_execution_is_exactly_reproducible() {
        let mut w = TableWorkload::new(2);
        w.comm_all_to_all("x", 1 << 16);
        let (p, _) = compile(
            exchange_build,
            |sp| {
                sp.traversal_from_names(&[
                    ("PostRecvs", None),
                    ("PostSends", None),
                    ("WaitSends", None),
                    ("WaitRecvs", None),
                ])
                .unwrap()
            },
            &w,
        );
        let platform = Platform::perlmutter_like().noiseless();
        let a = execute(&p, &platform, &mut rng()).unwrap();
        let b = execute(&p, &platform, &mut rng()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn noisy_execution_is_seed_deterministic() {
        let mut w = TableWorkload::new(2);
        w.comm_all_to_all("x", 1 << 16);
        let (p, _) = compile(
            exchange_build,
            |sp| {
                sp.traversal_from_names(&[
                    ("PostRecvs", None),
                    ("PostSends", None),
                    ("WaitSends", None),
                    ("WaitRecvs", None),
                ])
                .unwrap()
            },
            &w,
        );
        let platform = Platform::perlmutter_like(); // noisy
        let a = execute(&p, &platform, &mut SmallRng::seed_from_u64(9)).unwrap();
        let b = execute(&p, &platform, &mut SmallRng::seed_from_u64(9)).unwrap();
        let c = execute(&p, &platform, &mut SmallRng::seed_from_u64(10)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::bench::{benchmark, benchmark_instrumented, BenchConfig};
    use crate::workload::TableWorkload;
    use dr_dag::{build_schedule, CommKey, CostKey, DagBuilder, DecisionSpace, OpSpec};
    use dr_fault::{FaultConfig, FaultPlan};
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    fn cpu_program(dur: f64) -> CompiledProgram {
        let mut b = DagBuilder::new();
        b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let mut w = TableWorkload::new(2);
        w.cost_all("c", dur);
        CompiledProgram::compile(&s, &w).unwrap()
    }

    fn exchange_program(bytes: u64) -> CompiledProgram {
        let key = CommKey::new("x");
        let mut b = DagBuilder::new();
        let ps = b.add("PostSends", OpSpec::PostSends(key.clone()));
        let pr = b.add("PostRecvs", OpSpec::PostRecvs(key.clone()));
        let ws = b.add("WaitSends", OpSpec::WaitSends(key.clone()));
        let wr = b.add("WaitRecvs", OpSpec::WaitRecvs(key));
        b.edge(ps, ws);
        b.edge(pr, wr);
        b.edge(ps, wr);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[
                ("PostRecvs", None),
                ("PostSends", None),
                ("WaitSends", None),
                ("WaitRecvs", None),
            ])
            .unwrap();
        let s = build_schedule(&sp, &t);
        let mut w = TableWorkload::new(2);
        w.comm_all_to_all("x", bytes);
        CompiledProgram::compile(&s, &w).unwrap()
    }

    #[test]
    fn clean_plan_leaves_execution_bit_for_bit_identical() {
        let prog = exchange_program(1 << 16);
        let base = Platform::perlmutter_like();
        let faulted = base
            .clone()
            .with_faults(FaultPlan::derive(&FaultConfig::clean(), 7));
        let a = execute(&prog, &base, &mut SmallRng::seed_from_u64(3)).unwrap();
        let b = execute(&prog, &faulted, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn straggler_rank_slows_the_program() {
        let prog = cpu_program(1e-3);
        let base = Platform::perlmutter_like().noiseless();
        let cfg = FaultConfig {
            straggler_prob: 1.0,
            straggler_factor: 3.0,
            ..FaultConfig::clean()
        };
        let faulted = base.clone().with_faults(FaultPlan::derive(&cfg, 1));
        let t_base = execute(&prog, &base, &mut rng()).unwrap().time();
        let (out, stats) = execute_instrumented(&prog, &faulted, &mut rng()).unwrap();
        assert!(
            (out.time() - 3.0 * t_base).abs() < 1e-9,
            "{} vs {}",
            out.time(),
            t_base
        );
        assert_eq!(stats.faults.stragglers, 2, "one scaled op per rank");
    }

    #[test]
    fn delayed_message_adds_wire_time() {
        let prog = exchange_program(1 << 20);
        let base = Platform::perlmutter_like().noiseless();
        let cfg = FaultConfig {
            delay_prob: 1.0,
            delay_seconds: 5e-3,
            ..FaultConfig::clean()
        };
        let faulted = base.clone().with_faults(FaultPlan::derive(&cfg, 1));
        let t_base = execute(&prog, &base, &mut rng()).unwrap().time();
        let (out, stats) = execute_instrumented(&prog, &faulted, &mut rng()).unwrap();
        assert!(out.time() >= t_base + 5e-3, "{} vs {}", out.time(), t_base);
        assert_eq!(stats.faults.delays, 2, "both directions delayed");
    }

    #[test]
    fn dropped_message_becomes_structured_deadlock() {
        let prog = exchange_program(1 << 20);
        let cfg = FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::clean()
        };
        let faulted = Platform::perlmutter_like()
            .noiseless()
            .with_faults(FaultPlan::derive(&cfg, 1));
        match execute(&prog, &faulted, &mut rng()) {
            Err(SimError::Deadlock { detail }) => {
                assert!(detail.contains("rank"), "{detail}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn eager_dropped_message_still_deadlocks_the_receiver() {
        // Eager sends complete locally even when the payload is lost;
        // only the receiver's wait can never finish.
        let prog = exchange_program(512);
        let cfg = FaultConfig {
            drop_prob: 1.0,
            ..FaultConfig::clean()
        };
        let faulted = Platform::perlmutter_like()
            .noiseless()
            .with_faults(FaultPlan::derive(&cfg, 1));
        match execute(&prog, &faulted, &mut rng()) {
            Err(SimError::Deadlock { detail }) => {
                assert!(detail.contains("WaitRecvs"), "{detail}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn step_budget_kills_long_runs() {
        let prog = cpu_program(1e-3);
        let platform = Platform::perlmutter_like().noiseless().with_budget(1, 0.0);
        match execute(&prog, &platform, &mut rng()) {
            Err(SimError::Budget { steps, .. }) => assert_eq!(steps, 1),
            other => panic!("expected budget kill, got {other:?}"),
        }
    }

    #[test]
    fn virtual_time_budget_kills_slow_runs() {
        let prog = exchange_program(1 << 20);
        let platform = Platform::perlmutter_like().noiseless().with_budget(0, 1e-9);
        match execute(&prog, &platform, &mut rng()) {
            Err(SimError::Budget { detail, .. }) => {
                assert!(detail.contains("virtual time"), "{detail}");
            }
            other => panic!("expected budget kill, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_does_not_perturb_results() {
        let prog = exchange_program(1 << 16);
        let base = Platform::perlmutter_like();
        let budgeted = base.clone().with_budget(1_000_000, 1e6);
        let a = execute(&prog, &base, &mut SmallRng::seed_from_u64(3)).unwrap();
        let b = execute(&prog, &budgeted, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn outliers_contaminate_measurements_not_the_median() {
        let prog = cpu_program(1e-4);
        let base = Platform::perlmutter_like().noiseless();
        let cfg = FaultConfig {
            outlier_prob: 0.2,
            outlier_factor: 100.0,
            ..FaultConfig::clean()
        };
        let faulted = base.clone().with_faults(FaultPlan::derive(&cfg, 3));
        let bench = BenchConfig {
            t_measure: 1e-4,
            num_measurements: 25,
            max_samples: 4,
        };
        let clean = benchmark(&prog, &base, &bench, 5).unwrap();
        let (noisy, stats) = benchmark_instrumented(&prog, &faulted, &bench, 5).unwrap();
        assert!(stats.faults.outliers > 0, "some outliers must fire");
        assert!(
            stats.faults.outliers < bench.num_measurements as u64,
            "not every measurement is an outlier"
        );
        assert!(noisy.percentiles.p99 > 50.0 * clean.percentiles.p99);
        // The median survives 20% contamination.
        assert!((noisy.time() - clean.time()).abs() / clean.time() < 1e-9);
    }

    #[test]
    fn fault_decisions_are_identical_across_executions() {
        let prog = exchange_program(1 << 20);
        let cfg = FaultConfig::heavy().with_seed(11);
        let faulted = Platform::perlmutter_like()
            .noiseless()
            .with_faults(FaultPlan::derive(&cfg, 99));
        let a = execute(&prog, &faulted, &mut rng());
        let b = execute(&prog, &faulted, &mut rng());
        assert_eq!(a, b, "fault application must be pure");
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::Resource;
    use crate::workload::TableWorkload;
    use dr_dag::{build_schedule, CostKey, DagBuilder, DecisionSpace, OpSpec};
    use rand::SeedableRng;

    #[test]
    fn traced_execution_matches_untraced_and_covers_ops() {
        let mut b = DagBuilder::new();
        let k = b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(k, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let mut w = TableWorkload::new(2);
        w.cost_all("k", 1e-4).cost_all("c", 2e-5);
        let prog = CompiledProgram::compile(&s, &w).unwrap();
        let platform = Platform::perlmutter_like().noiseless();
        let plain = execute(&prog, &platform, &mut SmallRng::seed_from_u64(3)).unwrap();
        let (traced, trace) =
            execute_traced(&prog, &platform, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb timing");
        // Every instruction appears as a CPU span on every rank, and the
        // kernel additionally as a stream span.
        for rank in 0..2 {
            let cpu_spans = trace
                .rank(rank)
                .filter(|e| e.resource == Resource::Cpu)
                .count();
            assert_eq!(cpu_spans, prog.names.len());
            let kernel_spans: Vec<_> = trace
                .rank(rank)
                .filter(|e| matches!(e.resource, Resource::Stream(_)))
                .collect();
            assert_eq!(kernel_spans.len(), 1);
            assert_eq!(kernel_spans[0].name, "k");
            assert!((kernel_spans[0].duration() - 1e-4).abs() < 1e-12);
        }
        // Spans are within the makespan and ordered sanely.
        let makespan = trace.makespan();
        assert!((makespan - traced.time()).abs() < 1e-12);
        for e in &trace.events {
            assert!(e.start <= e.end);
            assert!(e.end <= makespan + 1e-15);
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::workload::TableWorkload;
    use dr_dag::{build_schedule, CommKey, CostKey, DagBuilder, DecisionSpace, OpSpec};
    use rand::SeedableRng;

    #[test]
    fn instrumented_execution_counts_sync_ops_and_matches_untraced() {
        // kernel -> cpu dependency forces a CER + CES pair on each rank.
        let mut b = DagBuilder::new();
        let k = b.add("k", OpSpec::GpuKernel(CostKey::new("k")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(k, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let mut w = TableWorkload::new(2);
        w.cost_all("k", 1e-4).cost_all("c", 2e-5);
        let prog = CompiledProgram::compile(&s, &w).unwrap();
        let platform = Platform::perlmutter_like().noiseless();
        let plain = execute(&prog, &platform, &mut SmallRng::seed_from_u64(3)).unwrap();
        let (out, stats) =
            execute_instrumented(&prog, &platform, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert_eq!(plain, out, "instrumentation must not perturb timing");
        assert_eq!(stats.runs, 1);
        assert_eq!(
            stats.instructions as usize,
            prog.names.len() * 2,
            "2 SPMD ranks"
        );
        assert_eq!(stats.sync_cer, 2, "one record per rank");
        assert_eq!(stats.sync_ces, 2, "one sync per rank");
        assert_eq!(stats.sync_cswe, 0);
        assert_eq!(
            stats.eager_msgs + stats.rendezvous_msgs,
            0,
            "no messaging here"
        );
        // Each rank's kernel ran for 1e-4 s on stream 0.
        for r in 0..2 {
            assert!((stats.stream_busy[r][0] - 1e-4).abs() < 1e-12);
            assert!((stats.cpu_busy[r] - out.rank_times[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn instrumented_execution_classifies_message_protocols() {
        let mut b = DagBuilder::new();
        let key = CommKey::new("x");
        let ps = b.add("PostSends", OpSpec::PostSends(key.clone()));
        let pr = b.add("PostRecvs", OpSpec::PostRecvs(key.clone()));
        let ws = b.add("WaitSends", OpSpec::WaitSends(key.clone()));
        let wr = b.add("WaitRecvs", OpSpec::WaitRecvs(key));
        b.edge(ps, ws);
        b.edge(pr, wr);
        b.edge(ps, wr);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[
                ("PostRecvs", None),
                ("PostSends", None),
                ("WaitSends", None),
                ("WaitRecvs", None),
            ])
            .unwrap();
        let s = build_schedule(&sp, &t);
        let platform = Platform::perlmutter_like().noiseless();
        for (bytes, eager) in [(512u64, true), (1u64 << 20, false)] {
            let mut w = TableWorkload::new(2);
            w.comm_all_to_all("x", bytes);
            let prog = CompiledProgram::compile(&s, &w).unwrap();
            let (_, stats) =
                execute_instrumented(&prog, &platform, &mut SmallRng::seed_from_u64(1)).unwrap();
            // One message each way between the two ranks.
            if eager {
                assert_eq!(stats.eager_msgs, 2);
                assert_eq!(stats.rendezvous_msgs, 0);
            } else {
                assert_eq!(stats.eager_msgs, 0);
                assert_eq!(stats.rendezvous_msgs, 2);
            }
            assert_eq!(stats.bytes_moved, 2 * bytes);
        }
    }

    #[test]
    fn collective_contributions_are_counted() {
        use crate::workload::CommPattern;
        let mut b = DagBuilder::new();
        b.add("dot", OpSpec::AllReduce(CommKey::new("dot")));
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let mut w = TableWorkload::new(4);
        for r in 0..4 {
            w.comm_on(
                r,
                "dot",
                CommPattern {
                    sends: vec![(0, 8)],
                    recvs: vec![],
                },
            );
        }
        let prog = CompiledProgram::compile(&s, &w).unwrap();
        let platform = Platform::perlmutter_like().noiseless();
        let (_, stats) =
            execute_instrumented(&prog, &platform, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert_eq!(stats.collective_ops, 4, "one completion per rank");
        assert_eq!(stats.bytes_moved, 4 * 8);
    }
}

#[cfg(test)]
mod multi_gpu_tests {
    use super::*;
    use crate::workload::TableWorkload;
    use dr_dag::{build_schedule, CostKey, DagBuilder, DecisionSpace, OpSpec};
    use rand::SeedableRng;

    fn two_kernel_prog(streams: (usize, usize), dep: bool, w: &TableWorkload) -> CompiledProgram {
        let mut b = DagBuilder::new();
        let k1 = b.add("k1", OpSpec::GpuKernel(CostKey::new("k1")));
        let k2 = b.add("k2", OpSpec::GpuKernel(CostKey::new("k2")));
        if dep {
            b.edge(k1, k2);
        }
        let sp = DecisionSpace::new(b.build().unwrap(), 4).unwrap();
        let t = sp
            .traversal_from_names(&[("k1", Some(streams.0)), ("k2", Some(streams.1))])
            .unwrap();
        let s = build_schedule(&sp, &t);
        CompiledProgram::compile(&s, w).unwrap()
    }

    fn workload() -> TableWorkload {
        let mut w = TableWorkload::new(1);
        w.cost_all("k1", 1e-3).cost_all("k2", 1e-3);
        w
    }

    #[test]
    fn separate_gpus_do_not_contend() {
        let w = workload();
        let platform = Platform {
            gpu_contention: 0.5,
            streams_per_gpu: 1, // stream 0 -> GPU 0, stream 1 -> GPU 1
            ..Platform::perlmutter_like().noiseless()
        };
        // Same-GPU contention baseline: both streams on GPU 0.
        let same_gpu = Platform {
            streams_per_gpu: 2,
            ..platform.clone()
        };
        let prog = two_kernel_prog((0, 1), false, &w);
        let t_sep = execute(&prog, &platform, &mut SmallRng::seed_from_u64(1))
            .unwrap()
            .time();
        let t_same = execute(&prog, &same_gpu, &mut SmallRng::seed_from_u64(1))
            .unwrap()
            .time();
        assert!(
            t_sep < t_same,
            "separate GPUs avoid contention: {t_sep} vs {t_same}"
        );
        assert!(
            (t_sep - 1e-3).abs() < 2e-5,
            "fully parallel on 2 GPUs: {t_sep}"
        );
    }

    #[test]
    fn cross_gpu_dependency_pays_peer_sync_latency() {
        let w = workload();
        let base = Platform {
            gpu_contention: 0.0,
            streams_per_gpu: 1,
            cross_gpu_sync_latency: 50e-6,
            ..Platform::perlmutter_like().noiseless()
        };
        let prog_cross = two_kernel_prog((0, 1), true, &w);
        let prog_local = two_kernel_prog((0, 0), true, &w);
        let t_cross = execute(&prog_cross, &base, &mut SmallRng::seed_from_u64(1))
            .unwrap()
            .time();
        let t_local = execute(&prog_local, &base, &mut SmallRng::seed_from_u64(1))
            .unwrap()
            .time();
        assert!(
            t_cross >= t_local + 45e-6,
            "peer sync latency must show: {t_cross} vs {t_local}"
        );
    }

    #[test]
    fn single_gpu_default_is_unchanged() {
        let p = Platform::perlmutter_like();
        for s in 0..16 {
            assert_eq!(p.gpu_of(s), 0);
        }
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;
    use crate::workload::{CommPattern, TableWorkload};
    use dr_dag::{build_schedule, CommKey, CostKey, DagBuilder, DecisionSpace, OpSpec};
    use rand::SeedableRng;

    fn contribution(w: &mut TableWorkload, ranks: usize, key: &str, bytes: u64) {
        for r in 0..ranks {
            w.comm_on(
                r,
                key,
                CommPattern {
                    sends: vec![(0, bytes)],
                    recvs: vec![],
                },
            );
        }
    }

    /// Per-rank skewed work followed by a blocking allreduce.
    fn program(ranks: usize) -> (CompiledProgram, f64) {
        let mut b = DagBuilder::new();
        let work = b.add("work", OpSpec::CpuWork(CostKey::new("work")));
        let red = b.add("dot", OpSpec::AllReduce(CommKey::new("dot")));
        b.edge(work, red);
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let mut w = TableWorkload::new(ranks);
        let slowest = 1e-3 * ranks as f64;
        for r in 0..ranks {
            w.cost_on(r, "work", 1e-3 * (r + 1) as f64);
        }
        contribution(&mut w, ranks, "dot", 8);
        (CompiledProgram::compile(&s, &w).unwrap(), slowest)
    }

    #[test]
    fn allreduce_synchronizes_all_ranks() {
        let (prog, slowest) = program(4);
        let platform = Platform::perlmutter_like().noiseless();
        let out = execute(&prog, &platform, &mut SmallRng::seed_from_u64(1)).unwrap();
        // Every rank finishes after the slowest rank's work plus the tree.
        let tree = platform.collective_time(4, 8);
        for rt in &out.rank_times {
            assert!(*rt >= slowest + tree, "{rt} < {slowest} + {tree}");
        }
        // The fast ranks do not finish much later than the slow one.
        let spread = out.rank_times.iter().copied().fold(0.0f64, f64::max)
            - out.rank_times.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread < 1e-5, "collective aligns ranks: spread {spread}");
    }

    #[test]
    fn collective_time_scales_logarithmically() {
        let p = Platform::perlmutter_like();
        assert_eq!(p.collective_time(1, 1024), 0.0);
        let t2 = p.collective_time(2, 1024);
        let t8 = p.collective_time(8, 1024);
        assert!((t8 / t2 - 3.0).abs() < 1e-9, "log2(8) = 3 rounds");
    }

    #[test]
    fn single_rank_allreduce_is_free() {
        let (prog, _) = program(1);
        let platform = Platform::perlmutter_like().noiseless();
        let out = execute(&prog, &platform, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert!((out.time() - 1e-3 - platform.wait_overhead).abs() < 1e-9);
    }

    #[test]
    fn mixed_key_use_is_rejected() {
        let mut b = DagBuilder::new();
        let red = b.add("dot", OpSpec::AllReduce(CommKey::new("x")));
        let ps = b.add("PostSends", OpSpec::PostSends(CommKey::new("x")));
        b.edge(red, ps);
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let mut w = TableWorkload::new(2);
        contribution(&mut w, 2, "x", 8);
        assert!(matches!(
            CompiledProgram::compile(&s, &w),
            Err(SimError::MixedCommKey { .. })
        ));
    }

    #[test]
    fn malformed_collective_pattern_is_rejected() {
        let mut b = DagBuilder::new();
        b.add("dot", OpSpec::AllReduce(CommKey::new("x")));
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let mut w = TableWorkload::new(2);
        // recvs must be empty for a collective key.
        w.comm_on(
            0,
            "x",
            CommPattern {
                sends: vec![(0, 8)],
                recvs: vec![(1, 8)],
            },
        );
        w.comm_on(
            1,
            "x",
            CommPattern {
                sends: vec![(0, 8)],
                recvs: vec![],
            },
        );
        assert!(matches!(
            CompiledProgram::compile(&s, &w),
            Err(SimError::InvalidCollective { rank: 0, .. })
        ));
    }
}
