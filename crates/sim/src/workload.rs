//! Workload abstraction: resolves the symbolic cost/communication keys in
//! a program DAG to concrete per-rank durations and message patterns.

use dr_dag::{CommKey, CostKey};
use std::collections::HashMap;

/// The point-to-point traffic of one rank under one communication key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommPattern {
    /// `(peer, bytes)` for each `MPI_Isend` the rank posts.
    pub sends: Vec<(usize, u64)>,
    /// `(peer, bytes)` for each `MPI_Irecv` the rank posts.
    pub recvs: Vec<(usize, u64)>,
}

/// Resolves symbolic keys for a concrete problem instance.
///
/// A workload is SPMD: every rank executes the same schedule, but costs
/// and communication differ per rank (e.g. edge ranks of a banded SpMV
/// have fewer neighbours).
pub trait Workload {
    /// Number of MPI ranks.
    fn num_ranks(&self) -> usize;
    /// Noiseless duration, in seconds, of the keyed operation on `rank`.
    /// `None` if the key is unknown (compilation fails).
    fn cost(&self, rank: usize, key: &CostKey) -> Option<f64>;
    /// The keyed communication pattern of `rank`. `None` if unknown.
    fn comm(&self, rank: usize, key: &CommKey) -> Option<CommPattern>;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn num_ranks(&self) -> usize {
        self.as_ref().num_ranks()
    }
    fn cost(&self, rank: usize, key: &CostKey) -> Option<f64> {
        self.as_ref().cost(rank, key)
    }
    fn comm(&self, rank: usize, key: &CommKey) -> Option<CommPattern> {
        self.as_ref().comm(rank, key)
    }
}

/// A simple table-backed workload, convenient for tests, examples, and
/// hand-built scenarios.
#[derive(Debug, Clone, Default)]
pub struct TableWorkload {
    ranks: usize,
    costs: HashMap<(usize, CostKey), f64>,
    comms: HashMap<(usize, CommKey), CommPattern>,
}

impl TableWorkload {
    /// Creates an empty workload over `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        TableWorkload {
            ranks,
            ..Default::default()
        }
    }

    /// Sets the duration of `key` on every rank.
    pub fn cost_all(&mut self, key: impl Into<String>, seconds: f64) -> &mut Self {
        let key = CostKey::new(key.into());
        for r in 0..self.ranks {
            self.costs.insert((r, key.clone()), seconds);
        }
        self
    }

    /// Sets the duration of `key` on one rank.
    pub fn cost_on(&mut self, rank: usize, key: impl Into<String>, seconds: f64) -> &mut Self {
        self.costs.insert((rank, CostKey::new(key.into())), seconds);
        self
    }

    /// Sets the communication pattern of `key` on one rank.
    pub fn comm_on(
        &mut self,
        rank: usize,
        key: impl Into<String>,
        pattern: CommPattern,
    ) -> &mut Self {
        self.comms.insert((rank, CommKey::new(key.into())), pattern);
        self
    }

    /// All-to-all exchange of `bytes` under `key`.
    pub fn comm_all_to_all(&mut self, key: impl Into<String>, bytes: u64) -> &mut Self {
        let key: String = key.into();
        for r in 0..self.ranks {
            let peers: Vec<usize> = (0..self.ranks).filter(|&p| p != r).collect();
            let pattern = CommPattern {
                sends: peers.iter().map(|&p| (p, bytes)).collect(),
                recvs: peers.iter().map(|&p| (p, bytes)).collect(),
            };
            self.comms.insert((r, CommKey::new(key.clone())), pattern);
        }
        self
    }
}

impl Workload for TableWorkload {
    fn num_ranks(&self) -> usize {
        self.ranks
    }

    fn cost(&self, rank: usize, key: &CostKey) -> Option<f64> {
        self.costs.get(&(rank, key.clone())).copied()
    }

    fn comm(&self, rank: usize, key: &CommKey) -> Option<CommPattern> {
        self.comms.get(&(rank, key.clone())).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_workload_round_trips() {
        let mut w = TableWorkload::new(3);
        w.cost_all("k", 1e-3).cost_on(1, "k", 2e-3);
        assert_eq!(w.cost(0, &CostKey::new("k")), Some(1e-3));
        assert_eq!(w.cost(1, &CostKey::new("k")), Some(2e-3));
        assert_eq!(w.cost(0, &CostKey::new("missing")), None);
    }

    #[test]
    fn all_to_all_pattern_is_symmetric() {
        let mut w = TableWorkload::new(4);
        w.comm_all_to_all("x", 100);
        for r in 0..4 {
            let p = w.comm(r, &CommKey::new("x")).unwrap();
            assert_eq!(p.sends.len(), 3);
            assert_eq!(p.recvs.len(), 3);
            assert!(p.sends.iter().all(|&(peer, b)| peer != r && b == 100));
        }
    }

    #[test]
    fn unknown_comm_key_is_none() {
        let w = TableWorkload::new(2);
        assert_eq!(w.comm(0, &CommKey::new("x")), None);
    }
}
