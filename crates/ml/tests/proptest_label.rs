//! Property tests for the hardened labeling stage: `label_times` must
//! never panic and must always produce a structurally valid labeling —
//! finite, monotone class ranges and in-range labels — even on
//! contaminated (NaN / ±inf), empty, or all-equal inputs.

use dr_ml::{label_times, Labeling, LabelingConfig};
use proptest::prelude::*;

/// Benchmark-like vectors laced with non-finite contamination. Each drawn
/// entry carries a selector; 0..=2 replace the value with NaN / +inf /
/// -inf, the rest keep the finite draw. (The vendored shim has no
/// `prop_oneof`, so contamination is encoded in the tuple.)
fn contaminated() -> impl Strategy<Value = Vec<f64>> {
    collection::vec((1e-6f64..1e-2, 0usize..8), 0..160).prop_map(|v| {
        v.into_iter()
            .map(|(x, sel)| match sel {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => x,
            })
            .collect()
    })
}

/// Structural invariants every labeling must satisfy, whatever the input.
fn assert_well_formed(times: &[f64], labeling: &Labeling) {
    assert_eq!(labeling.labels.len(), times.len());
    assert!(labeling.num_classes >= 1);
    assert_eq!(labeling.class_ranges.len(), labeling.num_classes);
    for &label in &labeling.labels {
        assert!(label < labeling.num_classes, "label {label} out of range");
    }
    for &(lo, hi) in &labeling.class_ranges {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "non-finite range ({lo}, {hi})"
        );
        assert!(lo <= hi, "inverted range ({lo}, {hi})");
    }
    // Classes partition the sorted series, so ranges never overlap and
    // never regress: class c ends no later than class c+1 begins.
    for w in labeling.class_ranges.windows(2) {
        assert!(
            w[0].1 <= w[1].0,
            "class ranges out of order: {:?}",
            labeling.class_ranges
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn contaminated_vectors_never_panic_and_stay_well_formed(
        times in contaminated(),
    ) {
        for cfg in [LabelingConfig::default(), LabelingConfig::robust()] {
            let labeling = label_times(&times, &cfg);
            assert_well_formed(&times, &labeling);
            // Every finite time must fall inside the union of the class
            // ranges (clamping only moves *non-finite* entries).
            let lo = labeling.class_ranges[0].0;
            let hi = labeling.class_ranges[labeling.num_classes - 1].1;
            for &t in times.iter().filter(|t| t.is_finite()) {
                prop_assert!(t >= lo && t <= hi, "{t} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn all_equal_series_yield_a_single_class(
        (x, n) in (1e-6f64..1e-2, 0usize..64),
    ) {
        let times = vec![x; n];
        for cfg in [LabelingConfig::default(), LabelingConfig::robust()] {
            let labeling = label_times(&times, &cfg);
            assert_well_formed(&times, &labeling);
            prop_assert_eq!(labeling.num_classes, 1);
            prop_assert!(labeling.labels.iter().all(|&l| l == 0));
        }
    }

    #[test]
    fn entirely_non_finite_series_degrade_to_one_class(
        sels in collection::vec(0usize..3, 1..40),
    ) {
        let times: Vec<f64> = sels
            .into_iter()
            .map(|sel| match sel {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            })
            .collect();
        for cfg in [LabelingConfig::default(), LabelingConfig::robust()] {
            let labeling = label_times(&times, &cfg);
            assert_well_formed(&times, &labeling);
            prop_assert_eq!(labeling.num_classes, 1);
        }
    }

    #[test]
    fn labeling_is_deterministic(times in contaminated()) {
        let cfg = LabelingConfig::robust();
        let a = label_times(&times, &cfg);
        let b = label_times(&times, &cfg);
        prop_assert_eq!(a, b);
    }
}
