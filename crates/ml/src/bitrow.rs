//! Word-packed binary feature rows.
//!
//! The Section IV-B feature vectors are pure bit vectors, and the CART
//! trainer's inner loop is dominated by counting how many samples of
//! each class fall on each side of a candidate split. Packing rows (and
//! the trainer's column/class masks) into `u64` words turns those counts
//! into a handful of `popcount` instructions per 64 samples instead of
//! one branch per sample, and shrinks the feature matrix 8×.
//!
//! Bits past `len` in the last word are kept zero (every mutator
//! maintains the invariant), so popcounts never need a tail mask.

use std::ops::Index;

const WORD_BITS: usize = 64;

/// The referents of [`BitRow`]'s `Index` impl, which must hand out
/// references.
static TRUE: bool = true;
static FALSE: bool = false;

/// A fixed-order sequence of bits packed 64 per word.
///
/// Supports `row[i]` indexing like the `Vec<bool>` it replaces, plus the
/// word-wise intersection counts the decision-tree trainer is built on.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BitRow {
    words: Vec<u64>,
    len: usize,
}

impl BitRow {
    /// An empty row.
    pub fn new() -> Self {
        BitRow::default()
    }

    /// A row of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitRow {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// A row of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut row = BitRow {
            words: vec![!0u64; len.div_ceil(WORD_BITS)],
            len,
        };
        let tail = len % WORD_BITS;
        if tail != 0 {
            *row.words.last_mut().expect("len > 0 when tail > 0") = (1u64 << tail) - 1;
        }
        row
    }

    /// Packs a bool slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        bits.iter().copied().collect()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the row holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(WORD_BITS) {
            self.words.push(0);
        }
        if bit {
            self.words[self.len / WORD_BITS] |= 1u64 << (self.len % WORD_BITS);
        }
        self.len += 1;
    }

    /// The bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Sets the bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        if bit {
            self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
        } else {
            self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
        }
    }

    /// Iterates the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of positions set in both `self` and `other`.
    pub fn and_count(&self, other: &BitRow) -> usize {
        debug_assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Number of positions set in `self` and `keep` but not `exclude` —
    /// the trainer's "samples of this class going left" count, without
    /// materializing an intermediate row.
    pub fn count_and_not(&self, keep: &BitRow, exclude: &BitRow) -> usize {
        debug_assert_eq!(self.len, keep.len, "length mismatch");
        debug_assert_eq!(self.len, exclude.len, "length mismatch");
        self.words
            .iter()
            .zip(&keep.words)
            .zip(&exclude.words)
            .map(|((a, b), c)| (a & b & !c).count_ones() as usize)
            .sum()
    }

    /// `self & other`.
    pub fn and(&self, other: &BitRow) -> BitRow {
        debug_assert_eq!(self.len, other.len, "length mismatch");
        BitRow {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// `self & !other` (the tail invariant survives because `self`'s
    /// tail bits are already zero).
    pub fn and_not(&self, other: &BitRow) -> BitRow {
        debug_assert_eq!(self.len, other.len, "length mismatch");
        BitRow {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
            len: self.len,
        }
    }
}

impl Index<usize> for BitRow {
    type Output = bool;

    fn index(&self, i: usize) -> &bool {
        if self.get(i) {
            &TRUE
        } else {
            &FALSE
        }
    }
}

impl FromIterator<bool> for BitRow {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut row = BitRow::new();
        for bit in iter {
            row.push(bit);
        }
        row
    }
}

impl Extend<bool> for BitRow {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for bit in iter {
            self.push(bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_and_index_round_trip() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let row = BitRow::from_bools(&bits);
        assert_eq!(row.len(), 130);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(row.get(i), b, "bit {i}");
            assert_eq!(row[i], b, "bit {i} via Index");
        }
        assert_eq!(row.iter().collect::<Vec<bool>>(), bits);
    }

    #[test]
    fn counts_match_a_naive_model() {
        let a: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let c: Vec<bool> = (0..200).map(|i| i % 5 == 0).collect();
        let (ra, rb, rc) = (
            BitRow::from_bools(&a),
            BitRow::from_bools(&b),
            BitRow::from_bools(&c),
        );
        assert_eq!(ra.count_ones(), a.iter().filter(|&&x| x).count());
        let and = (0..200).filter(|&i| a[i] && b[i]).count();
        assert_eq!(ra.and_count(&rb), and);
        let triple = (0..200).filter(|&i| a[i] && b[i] && !c[i]).count();
        assert_eq!(ra.count_and_not(&rb, &rc), triple);
        assert_eq!(ra.and(&rb).count_ones(), and);
        assert_eq!(
            ra.and_not(&rc).count_ones(),
            ra.count_ones() - ra.and_count(&rc)
        );
    }

    #[test]
    fn ones_masks_the_tail_word() {
        for len in [0usize, 1, 63, 64, 65, 128, 130] {
            let row = BitRow::ones(len);
            assert_eq!(row.count_ones(), len, "len {len}");
            assert_eq!(row, (0..len).map(|_| true).collect());
        }
    }

    #[test]
    fn set_clears_and_sets() {
        let mut row = BitRow::zeros(70);
        row.set(0, true);
        row.set(69, true);
        assert_eq!(row.count_ones(), 2);
        row.set(69, false);
        assert!(!row.get(69));
        assert_eq!(row.count_ones(), 1);
    }

    #[test]
    fn extend_appends_bits() {
        let mut row = BitRow::from_bools(&[true]);
        row.extend([false, true]);
        assert_eq!(row, BitRow::from_bools(&[true, false, true]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_past_the_end_panics() {
        BitRow::zeros(3).get(3);
    }
}
