//! Automatic performance-class labeling (paper Section IV-A, Fig. 4).
//!
//! The benchmark times of the explored implementations are sorted, the
//! sorted series is convolved with a step kernel whose radius is 0.5 % of
//! the number of measurements (minimum 1), peaks of the response are
//! detected, small peaks are screened out by keeping only those whose
//! prominence reaches the 98th percentile, and each surviving peak becomes
//! a boundary between performance classes. The number of classes is
//! therefore discovered, not chosen a priori.

use crate::signal::{find_peaks, peak_prominences, percentile, step_convolve, Convolution};

/// Labeling parameters (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelingConfig {
    /// Step-kernel radius as a fraction of the number of measurements
    /// (paper: 0.005, minimum radius 1).
    pub radius_frac: f64,
    /// Keep only peaks whose prominence is at or above this percentile of
    /// all peak prominences (paper: 98).
    pub prominence_percentile: f64,
    /// MAD outlier screen: times above
    /// `median + k · 1.4826 · MAD` are excluded from boundary detection
    /// and folded into the slowest class, so heavy-tailed measurement
    /// contamination cannot fabricate classes. `0.0` (the default)
    /// disables the screen, leaving the paper's algorithm untouched.
    pub outlier_mad_k: f64,
}

impl Default for LabelingConfig {
    fn default() -> Self {
        LabelingConfig {
            radius_frac: 0.005,
            prominence_percentile: 98.0,
            outlier_mad_k: 0.0,
        }
    }
}

impl LabelingConfig {
    /// Paper defaults plus an MAD outlier screen sized for chaos runs
    /// (`k = 3.5`, a standard robust-statistics cutoff).
    pub fn robust() -> Self {
        LabelingConfig {
            outlier_mad_k: 3.5,
            ..LabelingConfig::default()
        }
    }
}

/// The outcome of class labeling.
#[derive(Debug, Clone, PartialEq)]
pub struct Labeling {
    /// Indices of the input series sorted by ascending time.
    pub order: Vec<usize>,
    /// The sorted times.
    pub sorted_times: Vec<f64>,
    /// The step-kernel convolution of the sorted times (for Fig. 4b).
    pub convolution: Convolution,
    /// Class boundaries as positions in the *sorted* series: class `c`
    /// spans `boundaries[c-1] .. boundaries[c]` (with implicit 0 and n).
    /// An implementation at sorted position `p` has class
    /// `boundaries.partition_point(|b| b <= p)`.
    pub boundaries: Vec<usize>,
    /// Class of each input implementation (0 = fastest class).
    pub labels: Vec<usize>,
    /// Number of classes (`boundaries.len() + 1`).
    pub num_classes: usize,
    /// `(fastest, slowest)` time inside each class.
    pub class_ranges: Vec<(f64, f64)>,
}

impl Labeling {
    /// The class a (possibly unseen) time falls into, by comparing
    /// against the class boundaries in time space: the class whose range
    /// contains `t`, or the nearest class if `t` falls in a gap or
    /// outside all ranges.
    pub fn class_of_time(&self, t: f64) -> usize {
        for (c, &(_, hi)) in self.class_ranges.iter().enumerate() {
            if t <= hi {
                return c;
            }
        }
        self.num_classes - 1
    }
}

/// Labels a series of benchmark times. `times[i]` is the measured time of
/// implementation `i`; the returned [`Labeling::labels`] is parallel to
/// the input.
///
/// The function never panics and never produces non-finite class ranges:
///
/// * an empty series yields a degenerate single-class labeling;
/// * non-finite times are clamped to the nearest finite extreme of the
///   series (`NaN`/`+∞` to the slowest finite time, `-∞` to the fastest)
///   before sorting, so they join the edge classes instead of poisoning
///   the convolution;
/// * with [`LabelingConfig::outlier_mad_k`] set, MAD-screened outliers
///   are excluded from boundary detection and folded into the slowest
///   class.
pub fn label_times(times: &[f64], cfg: &LabelingConfig) -> Labeling {
    let n = times.len();
    if n == 0 {
        return Labeling {
            order: Vec::new(),
            sorted_times: Vec::new(),
            convolution: Convolution {
                start: 0,
                values: Vec::new(),
            },
            boundaries: Vec::new(),
            labels: Vec::new(),
            num_classes: 1,
            class_ranges: vec![(0.0, 0.0)],
        };
    }

    // Clamp non-finite measurements to the finite extremes of the series
    // (everything-non-finite degrades to a constant series → one class).
    let min_finite = times
        .iter()
        .copied()
        .filter(|t| t.is_finite())
        .fold(f64::INFINITY, f64::min);
    let (lo_clamp, hi_clamp) = if min_finite.is_finite() {
        let max_finite = times
            .iter()
            .copied()
            .filter(|t| t.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        (min_finite, max_finite)
    } else {
        (0.0, 0.0)
    };
    let clamped: Vec<f64> = times
        .iter()
        .map(|&t| {
            if t.is_finite() {
                t
            } else if t == f64::NEG_INFINITY {
                lo_clamp
            } else {
                hi_clamp
            }
        })
        .collect();

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| clamped[a].total_cmp(&clamped[b]));
    let sorted_times: Vec<f64> = order.iter().map(|&i| clamped[i]).collect();

    // MAD outlier screen: boundary detection sees only the first
    // `screened` sorted entries; the contaminated tail joins the slowest
    // class instead of spawning classes of its own.
    let screened = if cfg.outlier_mad_k > 0.0 {
        let median = sorted_times[n / 2];
        let mut dev: Vec<f64> = sorted_times.iter().map(|&t| (t - median).abs()).collect();
        dev.sort_by(f64::total_cmp);
        let mad = dev[n / 2];
        if mad > 0.0 {
            let cutoff = median + cfg.outlier_mad_k * 1.4826 * mad;
            sorted_times.partition_point(|&t| t <= cutoff).max(1)
        } else {
            n
        }
    } else {
        n
    };

    let radius = ((cfg.radius_frac * screened as f64).round() as usize).max(1);
    let convolution = step_convolve(&sorted_times[..screened], radius);

    let peaks = find_peaks(&convolution.values);
    let boundaries: Vec<usize> = if peaks.is_empty() {
        Vec::new()
    } else {
        let prominences = peak_prominences(&convolution.values, &peaks);
        let mut sorted_prom = prominences.clone();
        sorted_prom.sort_by(f64::total_cmp);
        let threshold = percentile(&sorted_prom, cfg.prominence_percentile);
        let mut bounds: Vec<usize> = peaks
            .iter()
            .zip(&prominences)
            .filter(|&(_, &p)| p >= threshold)
            // The peak marks the last index of the faster regime; the
            // boundary (first index of the next class) is one past it.
            .map(|(&j, _)| convolution.input_index(j) + 1)
            .collect();
        bounds.dedup();
        // Boundaries must be strictly inside (0, n) so every class is
        // non-empty; peak positions guarantee ascending order.
        bounds.retain(|&b| b > 0 && b < n);
        bounds
    };

    let num_classes = boundaries.len() + 1;
    let mut labels = vec![0usize; n];
    for (pos, &orig) in order.iter().enumerate() {
        labels[orig] = boundaries.partition_point(|&b| b <= pos);
    }
    let mut class_ranges = Vec::with_capacity(num_classes);
    let mut lo = 0usize;
    for c in 0..num_classes {
        let hi = if c < boundaries.len() {
            boundaries[c]
        } else {
            n
        };
        debug_assert!(hi > lo, "class {c} must be non-empty");
        class_ranges.push((sorted_times[lo], sorted_times[hi - 1]));
        lo = hi;
    }

    Labeling {
        order,
        sorted_times,
        convolution,
        boundaries,
        labels,
        num_classes,
        class_ranges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic three-regime series like Fig. 1: bands at 1.0, 1.2 and
    /// 1.45 with pseudo-random in-class spread (irregular spacing makes
    /// the convolution produce many tiny peaks, as real noisy benchmark
    /// data does — the 98th-percentile prominence screen relies on that).
    fn three_regimes(per_class: usize) -> Vec<f64> {
        let mut v = Vec::new();
        for (b, base) in [1.0, 1.2, 1.45].into_iter().enumerate() {
            for i in 0..per_class {
                let u = ((i * 7919 + b * 104_729) % 1009) as f64 / 1009.0;
                v.push(base + 0.02 * u);
            }
        }
        v
    }

    #[test]
    fn three_regimes_give_three_classes() {
        let mut times = three_regimes(100);
        // Shuffle deterministically to verify order independence.
        let n = times.len();
        for i in 0..n {
            times.swap(i, (i * 7919) % n);
        }
        let l = label_times(&times, &LabelingConfig::default());
        assert_eq!(l.num_classes, 3, "boundaries: {:?}", l.boundaries);
        // Boundaries land at the regime edges (±2 for jittered spacing).
        assert!(l.boundaries[0].abs_diff(100) <= 2, "{:?}", l.boundaries);
        assert!(l.boundaries[1].abs_diff(200) <= 2, "{:?}", l.boundaries);
        // Labels follow the time regimes.
        for (i, &t) in times.iter().enumerate() {
            let want = if t < 1.1 {
                0
            } else if t < 1.3 {
                1
            } else {
                2
            };
            assert_eq!(l.labels[i], want, "time {t}");
        }
    }

    #[test]
    fn class_ranges_are_ordered_and_tight() {
        let times = three_regimes(100);
        let l = label_times(&times, &LabelingConfig::default());
        assert_eq!(l.class_ranges.len(), 3);
        for w in l.class_ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "ranges must not overlap: {w:?}");
        }
        assert!((l.class_ranges[0].0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_data_yields_one_class() {
        // Identical times: the convolution is exactly zero everywhere, so
        // there are no peaks and a single class remains.
        let times = vec![1.0; 200];
        let l = label_times(&times, &LabelingConfig::default());
        assert_eq!(l.num_classes, 1, "boundaries: {:?}", l.boundaries);
        assert!(l.labels.iter().all(|&c| c == 0));
    }

    #[test]
    fn single_sample_is_one_class() {
        let l = label_times(&[3.0], &LabelingConfig::default());
        assert_eq!(l.num_classes, 1);
        assert_eq!(l.labels, vec![0]);
        assert_eq!(l.class_ranges, vec![(3.0, 3.0)]);
    }

    #[test]
    fn radius_has_a_floor_of_one() {
        // 20 samples → 0.5% rounds to 0 → floor 1; two clear regimes.
        let mut times = vec![1.0; 10];
        times.extend(vec![2.0; 10]);
        let l = label_times(&times, &LabelingConfig::default());
        assert_eq!(l.num_classes, 2);
        assert_eq!(l.boundaries, vec![10]);
    }

    #[test]
    fn class_of_time_maps_ranges_and_gaps() {
        let times = three_regimes(100);
        let l = label_times(&times, &LabelingConfig::default());
        assert_eq!(l.class_of_time(1.005), 0);
        assert_eq!(l.class_of_time(1.205), 1); // inside class-1 span
        assert_eq!(l.class_of_time(1.13), 1); // gap between 0 and 1 → next class
        assert_eq!(l.class_of_time(9.0), 2); // beyond all ranges → slowest
    }

    #[test]
    fn prominence_threshold_screens_small_steps() {
        // One big step and many small wiggles: only the big step remains.
        let mut times = Vec::new();
        for i in 0..300 {
            let base = if i < 150 { 1.0 } else { 2.0 };
            times.push(base + 1e-3 * ((i % 7) as f64));
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let l = label_times(&times, &LabelingConfig::default());
        assert_eq!(l.num_classes, 2, "boundaries: {:?}", l.boundaries);
    }

    #[test]
    fn empty_series_is_a_single_degenerate_class() {
        let l = label_times(&[], &LabelingConfig::default());
        assert_eq!(l.num_classes, 1);
        assert!(l.labels.is_empty());
        assert!(l.boundaries.is_empty());
        assert_eq!(l.class_ranges, vec![(0.0, 0.0)]);
        assert_eq!(l.class_of_time(1.0), 0);
    }

    #[test]
    fn non_finite_times_are_clamped_not_fatal() {
        let times = vec![1.0, f64::NAN, 2.0, f64::INFINITY, 1.5, f64::NEG_INFINITY];
        let l = label_times(&times, &LabelingConfig::default());
        assert_eq!(l.labels.len(), times.len());
        for &(lo, hi) in &l.class_ranges {
            assert!(lo.is_finite() && hi.is_finite(), "{:?}", l.class_ranges);
        }
        // NaN and +inf joined the slowest region, -inf the fastest.
        assert_eq!(l.labels[1], l.labels[3]);
        assert_eq!(l.labels[5], l.labels[0].min(l.labels[5]));
    }

    #[test]
    fn all_non_finite_collapses_to_one_class() {
        let times = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let l = label_times(&times, &LabelingConfig::default());
        assert_eq!(l.num_classes, 1);
        assert!(l.labels.iter().all(|&c| c == 0));
        assert!(l.class_ranges.iter().all(|r| r.0.is_finite()));
    }

    #[test]
    fn mad_screen_folds_outliers_into_the_slowest_class() {
        // The clean three-regime series plus a handful of wild outliers
        // that would otherwise dominate the convolution's peak landscape.
        let mut times = three_regimes(100);
        times.extend([50.0, 80.0, 120.0]);
        let robust = label_times(&times, &LabelingConfig::robust());
        assert_eq!(robust.num_classes, 3, "{:?}", robust.boundaries);
        // The outliers carry the slowest label, not classes of their own.
        for i in 300..303 {
            assert_eq!(robust.labels[i], robust.num_classes - 1);
        }
    }

    #[test]
    fn zero_mad_k_is_bitforbit_the_default_algorithm() {
        let times = three_regimes(100);
        let base = label_times(&times, &LabelingConfig::default());
        let zero_k = label_times(
            &times,
            &LabelingConfig {
                outlier_mad_k: 0.0,
                ..LabelingConfig::default()
            },
        );
        assert_eq!(base, zero_k);
    }

    #[test]
    fn labels_are_permutation_invariant() {
        let times = three_regimes(80);
        let l1 = label_times(&times, &LabelingConfig::default());
        let mut shuffled = times.clone();
        shuffled.reverse();
        let l2 = label_times(&shuffled, &LabelingConfig::default());
        for i in 0..times.len() {
            assert_eq!(l1.labels[i], l2.labels[times.len() - 1 - i]);
        }
    }
}
