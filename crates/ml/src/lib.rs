//! # dr-ml — design-rule mining
//!
//! Implements Section IV of the paper: turning the `(sequence, time)`
//! pairs collected during design-space exploration into human-readable
//! design rules.
//!
//! * [`label_times`] — automatic performance-class labeling by sorting,
//!   step-kernel convolution, and prominence-screened peak detection
//!   (Fig. 4);
//! * [`featurize`] — the sequence-to-vector transform: pairwise ordering
//!   and same-stream features, with constant/duplicate column pruning,
//!   packed into word-backed [`BitRow`] vectors;
//! * [`DecisionTree`] — CART from scratch (gini/entropy, best-first
//!   `max_leaf_nodes` growth, `class_weight="balanced"`), plus
//!   [`algorithm1`], the paper's leaf-budget hyperparameter search
//!   (Fig. 5);
//! * [`extract_rulesets`] / [`compare_to_canonical`] — root-to-leaf paths
//!   as rulesets, with the overconstrained/underconstrained consistency
//!   analysis of Tables V–VII.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitrow;
pub mod export;
mod features;
mod hyper;
mod label;
mod metrics;
mod rules;
pub mod signal;
mod tree;

pub use bitrow::BitRow;
pub use export::tree_to_dot;
pub use features::{feature_universe, featurize, Feature, FeatureKind, FeatureSet};
pub use hyper::{algorithm1, HyperSearch, SearchStep};
pub use label::{label_times, Labeling, LabelingConfig};
pub use metrics::{confusion_matrix, feature_importances, precision_recall};
pub use rules::{
    compare_to_canonical, extract_rulesets, render_ruleset, rulesets_for_class, Consistency, Rule,
    RuleSet,
};
pub use tree::{Criterion, DecisionTree, LeafPath, Node, TrainConfig};
