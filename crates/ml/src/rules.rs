//! Design-rule extraction and cross-budget comparison
//! (paper Sections IV-D and V, Tables V–VII).
//!
//! Every root-to-leaf path of the trained decision tree is a conjunction
//! of feature conditions — a *ruleset*. An implementation satisfying all
//! rules of a ruleset lands in that leaf and therefore (to the extent the
//! leaf is pure) in its performance class. Rulesets mined from a partial
//! exploration are compared against the *canonical* rulesets mined from
//! the exhaustive search: extra conditions are harmless
//! (*overconstrained*, blue in the paper's tables), missing conditions
//! are accuracy losses (*underconstrained*, red).

use crate::features::{Feature, FeatureKind, FeatureSet};
use crate::tree::DecisionTree;
use dr_dag::DecisionSpace;

/// One condition of a ruleset, normalized to be comparable across
/// feature sets derived from different sample subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rule {
    /// The semantic feature (operand order normalized).
    pub kind: FeatureKind,
    /// Required value of the feature.
    pub value: bool,
}

impl Rule {
    /// Human-readable phrasing, as printed in the paper's tables.
    pub fn phrase(&self, space: &DecisionSpace) -> String {
        Feature {
            kind: self.kind,
            name: String::new(),
        }
        .phrase(space, self.value)
    }
}

/// A ruleset: the conditions of one root-to-leaf path.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSet {
    /// Conditions, root-first.
    pub rules: Vec<Rule>,
    /// Performance class of the leaf (majority by weighted counts).
    pub class: usize,
    /// Training samples in the leaf.
    pub samples: usize,
    /// Raw per-class sample counts in the leaf.
    pub class_counts: Vec<usize>,
    /// Whether the leaf holds a single class.
    pub pure: bool,
}

/// Extracts one ruleset per leaf from a trained tree.
pub fn extract_rulesets(tree: &DecisionTree, features: &FeatureSet) -> Vec<RuleSet> {
    tree.leaf_paths()
        .into_iter()
        .map(|p| {
            let node = &tree.nodes()[p.node];
            RuleSet {
                rules: p
                    .conditions
                    .iter()
                    .map(|&(f, v)| Rule {
                        kind: features.features[f].kind,
                        value: v,
                    })
                    .collect(),
                class: node.class(),
                samples: node.raw_counts.iter().sum(),
                class_counts: node.raw_counts.clone(),
                pure: node.is_pure(),
            }
        })
        .collect()
}

/// Rulesets of one class, sorted by descending training-sample support
/// (the paper's tables list the top three).
pub fn rulesets_for_class(rulesets: &[RuleSet], class: usize) -> Vec<&RuleSet> {
    let mut v: Vec<&RuleSet> = rulesets.iter().filter(|r| r.class == class).collect();
    v.sort_by_key(|r| std::cmp::Reverse(r.samples));
    v
}

/// Consistency of one ruleset against the canonical rulesets of the same
/// class (paper Section V).
#[derive(Debug, Clone, PartialEq)]
pub struct Consistency {
    /// Index of the best-matching canonical ruleset.
    pub matched: usize,
    /// Conditions shared with the match.
    pub shared: Vec<Rule>,
    /// Harmless extra conditions (overconstrained, blue).
    pub extra: Vec<Rule>,
    /// Canonical conditions this ruleset lacks (underconstrained, red).
    pub missing: Vec<Rule>,
}

impl Consistency {
    /// Consistent-with-canonical: no canonical condition is missing.
    pub fn is_consistent(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Compares `candidate` against the canonical rulesets of its class,
/// choosing the canonical set sharing the most conditions. Returns `None`
/// when the canonical mining produced no ruleset for that class.
pub fn compare_to_canonical(candidate: &RuleSet, canonical: &[RuleSet]) -> Option<Consistency> {
    let same_class: Vec<(usize, &RuleSet)> = canonical
        .iter()
        .enumerate()
        .filter(|(_, c)| c.class == candidate.class)
        .collect();
    if same_class.is_empty() {
        return None;
    }
    let cand: std::collections::HashSet<Rule> = candidate.rules.iter().copied().collect();
    let (matched, best) = same_class
        .into_iter()
        .max_by_key(|(_, c)| c.rules.iter().filter(|r| cand.contains(r)).count())
        .expect("non-empty");
    let canon: std::collections::HashSet<Rule> = best.rules.iter().copied().collect();
    let shared = candidate
        .rules
        .iter()
        .copied()
        .filter(|r| canon.contains(r))
        .collect();
    let extra = candidate
        .rules
        .iter()
        .copied()
        .filter(|r| !canon.contains(r))
        .collect();
    let missing = best
        .rules
        .iter()
        .copied()
        .filter(|r| !cand.contains(r))
        .collect();
    Some(Consistency {
        matched,
        shared,
        extra,
        missing,
    })
}

/// Renders a ruleset as the paper's tables do: one condition per line.
pub fn render_ruleset(rs: &RuleSet, space: &DecisionSpace) -> Vec<String> {
    rs.rules.iter().map(|r| r.phrase(space)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::featurize;
    use crate::tree::TrainConfig;
    use dr_dag::{CostKey, DagBuilder, OpSpec, Traversal};

    fn space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    /// Labels derived from a simple ground truth: class 1 iff a and b
    /// share a stream.
    fn labelled_data(sp: &DecisionSpace) -> (Vec<Traversal>, Vec<usize>) {
        let all: Vec<_> = sp.enumerate().collect();
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        let y: Vec<usize> = all
            .iter()
            .map(|t| {
                let st = t.streams(sp.num_ops());
                usize::from(st[a] == st[b])
            })
            .collect();
        (all, y)
    }

    #[test]
    fn extracted_rules_recover_ground_truth() {
        let sp = space();
        let (all, y) = labelled_data(&sp);
        let refs: Vec<&Traversal> = all.iter().collect();
        let fs = featurize(&sp, &refs);
        let tree = DecisionTree::fit(&fs.matrix, &y, 2, &TrainConfig::default());
        assert_eq!(tree.error(&fs.matrix, &y), 0.0);
        let rulesets = extract_rulesets(&tree, &fs);
        assert_eq!(rulesets.len(), 2);
        // Each class has one pure ruleset with exactly one stream rule.
        for class in 0..2 {
            let rs = rulesets_for_class(&rulesets, class);
            assert_eq!(rs.len(), 1);
            assert!(rs[0].pure);
            assert_eq!(rs[0].rules.len(), 1);
            let rule = rs[0].rules[0];
            assert!(matches!(rule.kind, FeatureKind::SameStream(_, _)));
            assert_eq!(rule.value, class == 1);
        }
    }

    #[test]
    fn phrase_matches_paper_style() {
        let sp = space();
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        let r = Rule {
            kind: FeatureKind::SameStream(a, b),
            value: false,
        };
        assert_eq!(r.phrase(&sp), "a different stream than b");
        let r2 = Rule {
            kind: FeatureKind::Before(a, b),
            value: false,
        };
        assert_eq!(r2.phrase(&sp), "b before a");
    }

    #[test]
    fn comparison_classifies_extra_and_missing() {
        let k1 = FeatureKind::Before(0, 1);
        let k2 = FeatureKind::Before(0, 2);
        let k3 = FeatureKind::SameStream(0, 1);
        let canon = vec![RuleSet {
            rules: vec![
                Rule {
                    kind: k1,
                    value: true,
                },
                Rule {
                    kind: k2,
                    value: true,
                },
            ],
            class: 0,
            samples: 10,
            class_counts: vec![10],
            pure: true,
        }];
        // Overconstrained: superset of the canonical conditions.
        let over = RuleSet {
            rules: vec![
                Rule {
                    kind: k1,
                    value: true,
                },
                Rule {
                    kind: k2,
                    value: true,
                },
                Rule {
                    kind: k3,
                    value: false,
                },
            ],
            class: 0,
            samples: 5,
            class_counts: vec![5],
            pure: true,
        };
        let c = compare_to_canonical(&over, &canon).unwrap();
        assert!(c.is_consistent());
        assert_eq!(c.extra.len(), 1);
        assert_eq!(c.shared.len(), 2);
        // Underconstrained: misses a canonical condition.
        let under = RuleSet {
            rules: vec![Rule {
                kind: k1,
                value: true,
            }],
            class: 0,
            samples: 5,
            class_counts: vec![5],
            pure: true,
        };
        let c = compare_to_canonical(&under, &canon).unwrap();
        assert!(!c.is_consistent());
        assert_eq!(
            c.missing,
            vec![Rule {
                kind: k2,
                value: true
            }]
        );
    }

    #[test]
    fn comparison_requires_matching_class() {
        let canon = vec![RuleSet {
            rules: vec![],
            class: 1,
            samples: 1,
            class_counts: vec![0, 1],
            pure: true,
        }];
        let cand = RuleSet {
            rules: vec![],
            class: 0,
            samples: 1,
            class_counts: vec![1, 0],
            pure: true,
        };
        assert!(compare_to_canonical(&cand, &canon).is_none());
    }

    #[test]
    fn rulesets_sorted_by_support() {
        let mk = |samples| RuleSet {
            rules: vec![],
            class: 0,
            samples,
            class_counts: vec![samples],
            pure: true,
        };
        let sets = vec![mk(3), mk(10), mk(7)];
        let sorted = rulesets_for_class(&sets, 0);
        let counts: Vec<usize> = sorted.iter().map(|r| r.samples).collect();
        assert_eq!(counts, vec![10, 7, 3]);
    }
}
