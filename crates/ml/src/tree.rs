//! CART decision-tree classifier (paper Section IV-C, Table IV).
//!
//! A from-scratch reimplementation of the scikit-learn
//! `DecisionTreeClassifier` configuration the paper uses: CART with the
//! Gini (or entropy) criterion, best-first growth honouring
//! `max_leaf_nodes`, a `max_depth` cap, and `class_weight="balanced"`.
//! Features are binary (the Section IV-B vectors), so every split is
//! "feature = 0 goes left, feature = 1 goes right".
//!
//! Training works on word-packed bit masks: the row-major [`BitRow`]
//! input is transposed once into per-feature column masks and per-class
//! membership masks over the samples, a node's sample subset is itself a
//! mask, and every split candidate's class counts reduce to
//! `popcount(node ∧ class ∧ ¬column)` — no per-sample branching.

use crate::bitrow::BitRow;

/// Split-quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity — the paper's choice ("simpler and faster, no
    /// difference for test cases").
    Gini,
    /// Shannon entropy.
    Entropy,
}

impl Criterion {
    /// Impurity of a weighted class-count vector under this criterion.
    pub fn impurity(&self, counts: &[f64]) -> f64 {
        let total: f64 = counts.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        match self {
            Criterion::Gini => {
                1.0 - counts
                    .iter()
                    .map(|&c| (c / total) * (c / total))
                    .sum::<f64>()
            }
            Criterion::Entropy => -counts
                .iter()
                .filter(|&&c| c > 0.0)
                .map(|&c| {
                    let p = c / total;
                    p * p.log2()
                })
                .sum::<f64>(),
        }
    }
}

/// Training parameters (defaults mirror the paper's Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Split criterion.
    pub criterion: Criterion,
    /// Maximum number of leaves (best-first growth); `None` = unlimited.
    pub max_leaf_nodes: Option<usize>,
    /// Maximum tree depth; `None` = unlimited.
    pub max_depth: Option<usize>,
    /// Weight all classes equally regardless of how many samples carry
    /// each label (`class_weight="balanced"`).
    pub balanced: bool,
}

impl TrainConfig {
    /// Impurity of a weighted class-count vector under this config's
    /// criterion (convenience for diagnostics like feature importances).
    pub fn criterion_impurity(&self, counts: &[f64]) -> f64 {
        self.criterion.impurity(counts)
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            criterion: Criterion::Gini,
            max_leaf_nodes: None,
            max_depth: None,
            balanced: true,
        }
    }
}

/// A tree node; leaves have `feature == None`.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Split feature, `None` for leaves.
    pub feature: Option<usize>,
    /// Child for `feature == false` (valid when `feature` is `Some`).
    pub left: usize,
    /// Child for `feature == true`.
    pub right: usize,
    /// Class-weighted sample counts reaching this node.
    pub weighted_counts: Vec<f64>,
    /// Raw sample counts reaching this node.
    pub raw_counts: Vec<usize>,
    /// Depth (root = 0).
    pub depth: usize,
}

impl Node {
    /// Majority class by weighted counts (ties → lowest class id).
    pub fn class(&self) -> usize {
        let mut best = 0;
        for (c, &w) in self.weighted_counts.iter().enumerate() {
            if w > self.weighted_counts[best] {
                best = c;
            }
        }
        best
    }

    /// True when all samples at this node share one label.
    pub fn is_pure(&self) -> bool {
        self.raw_counts.iter().filter(|&&c| c > 0).count() <= 1
    }
}

/// A trained CART classifier over binary features.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_classes: usize,
    class_weights: Vec<f64>,
}

/// One root-to-leaf path: the conjunction of feature conditions plus the
/// leaf reached.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafPath {
    /// `(feature, value)` conditions on the path, root first.
    pub conditions: Vec<(usize, bool)>,
    /// Index of the leaf node in the tree.
    pub node: usize,
}

impl DecisionTree {
    /// Fits a tree on binary features `x` (row-major) with labels `y` in
    /// `0..num_classes`.
    pub fn fit(x: &[BitRow], y: &[usize], num_classes: usize, cfg: &TrainConfig) -> Self {
        assert_eq!(x.len(), y.len(), "sample/label length mismatch");
        assert!(!x.is_empty(), "cannot fit on an empty sample set");
        assert!(y.iter().all(|&c| c < num_classes), "label out of range");
        let n = x.len();
        let num_features = x[0].len();

        // Transpose once: column masks over samples (bit s of `cols[f]`
        // is sample s's feature f) and class-membership masks.
        let mut cols = vec![BitRow::zeros(n); num_features];
        for (s, row) in x.iter().enumerate() {
            for (f, col) in cols.iter_mut().enumerate() {
                if row.get(f) {
                    col.set(s, true);
                }
            }
        }
        let mut class_masks = vec![BitRow::zeros(n); num_classes];
        for (s, &c) in y.iter().enumerate() {
            class_masks[c].set(s, true);
        }

        // class_weight="balanced": w_c = n / (k * count_c).
        let mut raw = vec![0usize; num_classes];
        for &c in y {
            raw[c] += 1;
        }
        let class_weights: Vec<f64> = if cfg.balanced {
            raw.iter()
                .map(|&c| {
                    if c == 0 {
                        0.0
                    } else {
                        n as f64 / (num_classes as f64 * c as f64)
                    }
                })
                .collect()
        } else {
            vec![1.0; num_classes]
        };

        let mut tree = DecisionTree {
            nodes: Vec::new(),
            num_classes,
            class_weights,
        };
        let all = BitRow::ones(n);
        let root = tree.make_node(&all, &class_masks, 0);
        tree.nodes.push(root);

        // Best-first growth: always split the frontier leaf with the
        // largest weighted impurity decrease. A node's sample subset is
        // a mask over the samples.
        struct Candidate {
            node: usize,
            mask: BitRow,
            feature: usize,
            improvement: f64,
        }
        let mut frontier: Vec<Candidate> = Vec::new();
        let push_candidate = |tree: &DecisionTree,
                              node: usize,
                              mask: BitRow,
                              frontier: &mut Vec<Candidate>| {
            if tree.nodes[node].is_pure() {
                return;
            }
            if let Some(d) = cfg.max_depth {
                if tree.nodes[node].depth >= d {
                    return;
                }
            }
            if let Some((feature, improvement)) = tree.best_split(&mask, &cols, &class_masks, cfg) {
                frontier.push(Candidate {
                    node,
                    mask,
                    feature,
                    improvement,
                });
            }
        };
        push_candidate(&tree, 0, all, &mut frontier);

        let mut num_leaves = 1usize;
        while !frontier.is_empty() {
            if let Some(cap) = cfg.max_leaf_nodes {
                if num_leaves >= cap {
                    break;
                }
            }
            // Extract the best candidate (frontiers are tiny; linear scan).
            let best = frontier
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.improvement
                        .partial_cmp(&b.1.improvement)
                        .expect("improvements are finite")
                        // Deterministic tie-break: earlier node id wins.
                        .then(b.1.node.cmp(&a.1.node))
                })
                .map(|(i, _)| i)
                .expect("frontier non-empty");
            let cand = frontier.swap_remove(best);

            let ls = cand.mask.and_not(&cols[cand.feature]);
            let rs = cand.mask.and(&cols[cand.feature]);
            let left = tree.nodes.len();
            let lnode = tree.make_node(&ls, &class_masks, tree.nodes[cand.node].depth + 1);
            tree.nodes.push(lnode);
            let right = tree.nodes.len();
            let rnode = tree.make_node(&rs, &class_masks, tree.nodes[cand.node].depth + 1);
            tree.nodes.push(rnode);
            tree.nodes[cand.node].feature = Some(cand.feature);
            tree.nodes[cand.node].left = left;
            tree.nodes[cand.node].right = right;
            num_leaves += 1;

            push_candidate(&tree, left, ls, &mut frontier);
            push_candidate(&tree, right, rs, &mut frontier);
        }
        tree
    }

    fn make_node(&self, mask: &BitRow, class_masks: &[BitRow], depth: usize) -> Node {
        let raw: Vec<usize> = class_masks.iter().map(|cm| mask.and_count(cm)).collect();
        let weighted: Vec<f64> = raw
            .iter()
            .zip(&self.class_weights)
            .map(|(&c, &w)| c as f64 * w)
            .collect();
        Node {
            feature: None,
            left: 0,
            right: 0,
            weighted_counts: weighted,
            raw_counts: raw,
            depth,
        }
    }

    /// Best split of a sample subset (given as a mask): the feature
    /// maximizing the weighted impurity decrease. Returns `None` when no
    /// feature separates the samples with positive improvement. Class
    /// counts on each side are popcounts of `mask ∧ class ∧ ¬column`.
    fn best_split(
        &self,
        mask: &BitRow,
        cols: &[BitRow],
        class_masks: &[BitRow],
        cfg: &TrainConfig,
    ) -> Option<(usize, f64)> {
        let parent: Vec<f64> = class_masks
            .iter()
            .zip(&self.class_weights)
            .map(|(cm, &w)| mask.and_count(cm) as f64 * w)
            .collect();
        let w_parent: f64 = parent.iter().sum();
        let imp_parent = cfg.criterion.impurity(&parent);
        let mut best: Option<(usize, f64)> = None;
        for (f, col) in cols.iter().enumerate() {
            let left: Vec<f64> = class_masks
                .iter()
                .zip(&self.class_weights)
                .map(|(cm, &w)| mask.count_and_not(cm, col) as f64 * w)
                .collect();
            let w_left: f64 = left.iter().sum();
            let w_right = w_parent - w_left;
            if w_left <= 0.0 || w_right <= 0.0 {
                continue; // split does not separate anything
            }
            let right: Vec<f64> = parent.iter().zip(&left).map(|(&p, &l)| p - l).collect();
            let improvement = w_parent * imp_parent
                - w_left * cfg.criterion.impurity(&left)
                - w_right * cfg.criterion.impurity(&right);
            // Any separating split is acceptable (scikit-learn splits
            // every impure node; improvement only ranks candidates), so a
            // zero-improvement split — e.g. the first level of XOR — is
            // still taken when nothing better exists.
            if best.is_none_or(|(_, b)| improvement > b) {
                best = Some((f, improvement));
            }
        }
        best
    }

    /// All nodes (root is index 0).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of classes the tree was trained with.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Predicted class of one feature vector.
    pub fn predict(&self, x: &BitRow) -> usize {
        let mut node = 0usize;
        while let Some(f) = self.nodes[node].feature {
            node = if x[f] {
                self.nodes[node].right
            } else {
                self.nodes[node].left
            };
        }
        self.nodes[node].class()
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.feature.is_none()).count()
    }

    /// Maximum depth reached (root = 0).
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Class-weighted misclassification rate on a labelled set (plain
    /// rate when the tree was trained unweighted). Weighting keeps small
    /// classes relevant in Algorithm 1's error minimization, matching the
    /// `class_weight="balanced"` intent.
    pub fn error(&self, x: &[BitRow], y: &[usize]) -> f64 {
        let mut wrong = 0.0;
        let mut total = 0.0;
        for (xi, &yi) in x.iter().zip(y) {
            let w = self.class_weights[yi];
            total += w;
            if self.predict(xi) != yi {
                wrong += w;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            wrong / total
        }
    }

    /// Every root-to-leaf path (pre-order).
    pub fn leaf_paths(&self) -> Vec<LeafPath> {
        let mut out = Vec::new();
        let mut stack = vec![(0usize, Vec::new())];
        while let Some((node, conds)) = stack.pop() {
            match self.nodes[node].feature {
                None => out.push(LeafPath {
                    conditions: conds,
                    node,
                }),
                Some(f) => {
                    let mut right = conds.clone();
                    right.push((f, true));
                    stack.push((self.nodes[node].right, right));
                    let mut left = conds;
                    left.push((f, false));
                    stack.push((self.nodes[node].left, left));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(bits: &[&[bool]]) -> Vec<BitRow> {
        bits.iter().map(|b| BitRow::from_bools(b)).collect()
    }

    fn xor_data() -> (Vec<BitRow>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in [false, true] {
            for b in [false, true] {
                for _ in 0..5 {
                    x.push(BitRow::from_bools(&[a, b]));
                    y.push(usize::from(a ^ b));
                }
            }
        }
        (x, y)
    }

    #[test]
    fn learns_xor_exactly() {
        let (x, y) = xor_data();
        let tree = DecisionTree::fit(&x, &y, 2, &TrainConfig::default());
        assert_eq!(tree.error(&x, &y), 0.0);
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(tree.predict(xi), yi);
        }
        assert_eq!(tree.num_leaves(), 4);
        assert_eq!(tree.depth(), 2);
    }

    #[test]
    fn single_feature_split() {
        let x = rows(&[&[false], &[false], &[true], &[true]]);
        let y = vec![0, 0, 1, 1];
        let tree = DecisionTree::fit(&x, &y, 2, &TrainConfig::default());
        assert_eq!(tree.num_leaves(), 2);
        assert_eq!(tree.predict(&BitRow::from_bools(&[false])), 0);
        assert_eq!(tree.predict(&BitRow::from_bools(&[true])), 1);
    }

    #[test]
    fn max_leaf_nodes_caps_growth() {
        let (x, y) = xor_data();
        let cfg = TrainConfig {
            max_leaf_nodes: Some(3),
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, 2, &cfg);
        assert_eq!(tree.num_leaves(), 3);
    }

    #[test]
    fn max_depth_caps_growth() {
        let (x, y) = xor_data();
        let cfg = TrainConfig {
            max_depth: Some(1),
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, 2, &cfg);
        assert!(tree.depth() <= 1);
        assert!(tree.num_leaves() <= 2);
    }

    #[test]
    fn pure_node_stops_splitting() {
        let x = vec![BitRow::from_bools(&[false, true]); 6];
        let y = vec![1; 6];
        let tree = DecisionTree::fit(&x, &y, 3, &TrainConfig::default());
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.predict(&BitRow::from_bools(&[true, false])), 1);
    }

    #[test]
    fn balanced_weights_protect_minority_class() {
        // 1 minority sample distinguishable by feature 0; 99 majority.
        let mut x = vec![BitRow::from_bools(&[true])];
        let mut y = vec![1usize];
        for _ in 0..99 {
            x.push(BitRow::from_bools(&[false]));
            y.push(0);
        }
        let balanced = DecisionTree::fit(&x, &y, 2, &TrainConfig::default());
        assert_eq!(
            balanced.predict(&BitRow::from_bools(&[true])),
            1,
            "minority class must be found"
        );
        assert_eq!(balanced.error(&x, &y), 0.0);
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let (x, y) = xor_data();
        let cfg = TrainConfig {
            criterion: Criterion::Entropy,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, 2, &cfg);
        assert_eq!(tree.error(&x, &y), 0.0);
    }

    #[test]
    fn impurity_values() {
        assert_eq!(Criterion::Gini.impurity(&[5.0, 5.0]), 0.5);
        assert_eq!(Criterion::Gini.impurity(&[10.0, 0.0]), 0.0);
        assert!((Criterion::Entropy.impurity(&[5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert_eq!(Criterion::Entropy.impurity(&[10.0]), 0.0);
        assert_eq!(Criterion::Gini.impurity(&[]), 0.0);
    }

    #[test]
    fn leaf_paths_partition_the_feature_space() {
        let (x, y) = xor_data();
        let tree = DecisionTree::fit(&x, &y, 2, &TrainConfig::default());
        let paths = tree.leaf_paths();
        assert_eq!(paths.len(), tree.num_leaves());
        // Every sample follows exactly one path.
        for xi in &x {
            let matching = paths
                .iter()
                .filter(|p| p.conditions.iter().all(|&(f, v)| xi[f] == v))
                .count();
            assert_eq!(matching, 1);
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let (x, y) = xor_data();
        let a = DecisionTree::fit(&x, &y, 2, &TrainConfig::default());
        let b = DecisionTree::fit(&x, &y, 2, &TrainConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn three_class_problem() {
        // Class = number of true features (0, 1, 2).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in [false, true] {
            for b in [false, true] {
                x.push(BitRow::from_bools(&[a, b]));
                y.push(usize::from(a) + usize::from(b));
            }
        }
        let tree = DecisionTree::fit(&x, &y, 3, &TrainConfig::default());
        assert_eq!(tree.error(&x, &y), 0.0);
        assert_eq!(tree.predict(&BitRow::from_bools(&[true, true])), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_rejected() {
        DecisionTree::fit(
            &[BitRow::from_bools(&[true])],
            &[5],
            2,
            &TrainConfig::default(),
        );
    }
}
