//! Signal-processing primitives for class labeling (paper Section IV-A):
//! step-kernel convolution, local-maxima peak detection, and peak
//! prominences with `scipy.signal`-compatible semantics.

/// Result of convolving the sorted measurement data with the step kernel.
/// `values[j]` is the convolution at input index `start + j`; only indices
/// where the kernel fully overlaps the data are produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Convolution {
    /// Input index of `values[0]`.
    pub start: usize,
    /// Convolution values.
    pub values: Vec<f64>,
}

impl Convolution {
    /// Maps an index within `values` back to an input index.
    pub fn input_index(&self, j: usize) -> usize {
        self.start + j
    }
}

/// Convolves `a` with the radius-`r` step kernel
/// `k_m = −1 for −r < m ≤ 0, +1 for 0 < m ≤ r` (paper Section IV-A):
/// the response at `i` is `sum(a[i+1 ..= i+r]) − sum(a[i−r+1 ..= i])`,
/// which peaks where the sorted data takes a large step upward.
///
/// Only positions where the kernel fully overlaps are computed; data
/// shorter than `2r` produces an empty result.
pub fn step_convolve(a: &[f64], r: usize) -> Convolution {
    assert!(r >= 1, "radius must be at least 1");
    let n = a.len();
    if n < 2 * r {
        return Convolution {
            start: 0,
            values: Vec::new(),
        };
    }
    // Valid i: the window a[i-r+1 ..= i+r] must stay in bounds.
    let start = r - 1;
    let end = n - r; // exclusive
    let mut values = Vec::with_capacity(end - start);
    // Incremental evaluation: O(n) instead of O(n·r).
    let mut neg: f64 = a[start + 1 - r..=start].iter().sum();
    let mut pos: f64 = a[start + 1..start + 1 + r].iter().sum();
    values.push(pos - neg);
    for i in start + 1..end {
        neg += a[i] - a[i - r];
        pos += a[i + r] - a[i];
        values.push(pos - neg);
    }
    Convolution { start, values }
}

/// Finds local maxima with `scipy.signal.find_peaks` semantics: a sample
/// strictly greater than its neighbours; flat-topped plateaus report their
/// midpoint. Edges can never be peaks.
pub fn find_peaks(x: &[f64]) -> Vec<usize> {
    let n = x.len();
    let mut peaks = Vec::new();
    if n < 3 {
        return peaks;
    }
    let mut i = 1;
    while i < n - 1 {
        if x[i - 1] < x[i] {
            let mut ahead = i + 1;
            while ahead < n - 1 && x[ahead] == x[i] {
                ahead += 1;
            }
            if x[ahead] < x[i] {
                let left_edge = i;
                let right_edge = ahead - 1;
                peaks.push((left_edge + right_edge) / 2);
                i = ahead;
                continue;
            }
        }
        i += 1;
    }
    peaks
}

/// Peak prominences with `scipy.signal.peak_prominences` semantics
/// (unlimited window): walk outward from each peak until a strictly
/// higher sample or the signal edge; the prominence is the peak height
/// minus the higher of the two interval minima.
pub fn peak_prominences(x: &[f64], peaks: &[usize]) -> Vec<f64> {
    peaks
        .iter()
        .map(|&p| {
            let h = x[p];
            let mut left_min = h;
            let mut i = p as isize;
            while i >= 0 && x[i as usize] <= h {
                left_min = left_min.min(x[i as usize]);
                i -= 1;
            }
            let mut right_min = h;
            let mut j = p;
            while j < x.len() && x[j] <= h {
                right_min = right_min.min(x[j]);
                j += 1;
            }
            h - left_min.max(right_min)
        })
        .collect()
}

/// Percentile with linear interpolation between order statistics on
/// already-sorted data (numpy default), `q ∈ [0, 100]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&q), "q out of range: {q}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q / 100.0 * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_convolve_flat_data_is_zero() {
        let c = step_convolve(&[5.0; 10], 2);
        assert!(c.values.iter().all(|&v| v.abs() < 1e-12));
        assert_eq!(c.start, 1);
        assert_eq!(c.values.len(), 10 - 2 - 1);
    }

    #[test]
    fn step_convolve_detects_a_step() {
        // A step up at index 5 produces a maximal response at the last
        // index of the low plateau.
        let mut a = vec![1.0; 5];
        a.extend(vec![2.0; 5]);
        let c = step_convolve(&a, 2);
        let (jmax, _) = c
            .values
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap();
        assert_eq!(c.input_index(jmax), 4);
        // Peak response = r * step size.
        assert!((c.values[jmax] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn step_convolve_incremental_matches_naive() {
        let a: Vec<f64> = (0..40).map(|i| ((i * 37) % 11) as f64).collect();
        for r in [1usize, 2, 3, 5] {
            let c = step_convolve(&a, r);
            for (j, &v) in c.values.iter().enumerate() {
                let i = c.input_index(j);
                let neg: f64 = a[i + 1 - r..=i].iter().sum();
                let pos: f64 = a[i + 1..=i + r].iter().sum();
                assert!((v - (pos - neg)).abs() < 1e-9, "r={r} i={i}");
            }
        }
    }

    #[test]
    fn step_convolve_short_input_is_empty() {
        assert!(step_convolve(&[1.0, 2.0, 3.0], 2).values.is_empty());
    }

    #[test]
    fn find_peaks_simple() {
        assert_eq!(find_peaks(&[0.0, 1.0, 0.0]), vec![1]);
        assert_eq!(find_peaks(&[0.0, 1.0, 0.5, 2.0, 0.0]), vec![1, 3]);
        assert_eq!(find_peaks(&[3.0, 2.0, 1.0]), Vec::<usize>::new());
    }

    #[test]
    fn find_peaks_plateau_reports_midpoint() {
        assert_eq!(find_peaks(&[0.0, 1.0, 1.0, 1.0, 0.0]), vec![2]);
        assert_eq!(find_peaks(&[0.0, 2.0, 2.0, 0.0]), vec![1]);
    }

    #[test]
    fn find_peaks_edges_excluded() {
        assert_eq!(find_peaks(&[5.0, 1.0, 5.0]), Vec::<usize>::new());
        // Rising plateau that runs into the edge is not a peak.
        assert_eq!(find_peaks(&[0.0, 1.0, 1.0]), Vec::<usize>::new());
    }

    #[test]
    fn prominences_match_scipy_reference() {
        // scipy.signal.peak_prominences doc example:
        // x = np.linspace(0, 6π, 1000); x = np.sin(x) + 0.6·sin(2.6·x)
        // is overkill — use a crafted case instead:
        let x = [0.0, 5.0, 1.0, 3.0, 0.0, 4.0, 0.0];
        let peaks = find_peaks(&x);
        assert_eq!(peaks, vec![1, 3, 5]);
        let prom = peak_prominences(&x, &peaks);
        // Peak 1 (h=5): highest peak, bases are the signal ends => 5-0.
        assert_eq!(prom[0], 5.0);
        // Peak 3 (h=3): left walk stops at 5.0, min=1; right stops at 4.0,
        // min=0 => 3 - max(1,0) = 2.
        assert_eq!(prom[1], 2.0);
        // Peak 5 (h=4): left stops at 5.0 with min 0; right hits edge min 0.
        assert_eq!(prom[2], 4.0);
    }

    #[test]
    fn percentile_matches_numpy() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&d, 98.0) - 3.94).abs() < 1e-12);
        assert_eq!(percentile(&d, 0.0), 1.0);
        assert_eq!(percentile(&d, 100.0), 4.0);
    }
}
