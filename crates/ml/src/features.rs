//! Sequence-to-vector feature transformation (paper Section IV-B).
//!
//! Each traversal becomes a fixed-length binary vector:
//!
//! * an **ordering feature** for every pair of decision operations `(u,v)`
//!   — 1 iff `u` is issued before `v`;
//! * a **stream-assignment feature** for every pair of GPU operations —
//!   1 iff they are bound to the same stream.
//!
//! Features that take the same value in every sample carry no
//! discriminatory power (e.g. `u before v` when `u → v` is a DAG
//! constraint) and are removed; so is every feature identical to an
//! earlier one across all samples (e.g. when `v` always immediately
//! follows `u`, their orderings against any third operation coincide).

use crate::bitrow::BitRow;
use dr_dag::{DecisionKind, DecisionSpace, OpId, Traversal};

/// Semantic identity of a feature, independent of the sample set it was
/// derived from (used to compare rules across exploration budgets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureKind {
    /// Ordering feature: 1 iff op `.0` is issued before op `.1`
    /// (normalized so `.0 < .1`).
    Before(OpId, OpId),
    /// Stream feature: 1 iff GPU ops `.0` and `.1` share a stream
    /// (normalized so `.0 < .1`).
    SameStream(OpId, OpId),
}

/// A named feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    /// Semantic identity.
    pub kind: FeatureKind,
    /// Human-readable positive phrasing (value = 1), e.g.
    /// `"Pack before yl"` or `"Pack same stream as yl"`.
    pub name: String,
}

impl Feature {
    /// The phrasing of `feature == value`, as the paper's rule tables
    /// print it: a false ordering flips the operands, a false stream
    /// feature becomes "different stream than".
    pub fn phrase(&self, space: &DecisionSpace, value: bool) -> String {
        let name = |o: OpId| space.ops()[o].name.as_str();
        match (self.kind, value) {
            (FeatureKind::Before(u, v), true) => format!("{} before {}", name(u), name(v)),
            (FeatureKind::Before(u, v), false) => format!("{} before {}", name(v), name(u)),
            (FeatureKind::SameStream(u, v), true) => {
                format!("{} same stream as {}", name(u), name(v))
            }
            (FeatureKind::SameStream(u, v), false) => {
                format!("{} different stream than {}", name(u), name(v))
            }
        }
    }
}

/// The feature matrix of a sample set: retained columns plus bookkeeping
/// about what was pruned.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSet {
    /// Retained feature columns.
    pub features: Vec<Feature>,
    /// `matrix[sample][feature]`, one packed row per sample.
    pub matrix: Vec<BitRow>,
    /// Number of constant columns removed.
    pub dropped_constant: usize,
    /// Number of duplicate columns removed.
    pub dropped_duplicate: usize,
}

impl FeatureSet {
    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.matrix.len()
    }

    /// Number of retained features.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// Computes the retained feature vector of a traversal that was not
    /// necessarily part of the original sample set (used to classify the
    /// full space with rules learned from a subset).
    pub fn vector_of(&self, space: &DecisionSpace, t: &Traversal) -> BitRow {
        let pos = t.positions(space.num_ops());
        let streams = t.streams(space.num_ops());
        self.features
            .iter()
            .map(|f| eval_kind(f.kind, &pos, &streams))
            .collect()
    }
}

fn eval_kind(kind: FeatureKind, pos: &[usize], streams: &[Option<usize>]) -> bool {
    match kind {
        FeatureKind::Before(u, v) => pos[u] < pos[v],
        FeatureKind::SameStream(u, v) => streams[u] == streams[v],
    }
}

/// The full (un-pruned) feature universe of a decision space.
pub fn feature_universe(space: &DecisionSpace) -> Vec<Feature> {
    let n = space.num_ops();
    let mut features = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            features.push(Feature {
                kind: FeatureKind::Before(u, v),
                name: format!("{} before {}", space.ops()[u].name, space.ops()[v].name),
            });
        }
    }
    let gpu_ops: Vec<OpId> = (0..n)
        .filter(|&o| matches!(space.ops()[o].kind, DecisionKind::Gpu(_)))
        .collect();
    for (i, &u) in gpu_ops.iter().enumerate() {
        for &v in &gpu_ops[i + 1..] {
            features.push(Feature {
                kind: FeatureKind::SameStream(u, v),
                name: format!(
                    "{} same stream as {}",
                    space.ops()[u].name,
                    space.ops()[v].name
                ),
            });
        }
    }
    features
}

/// Builds the pruned feature matrix of a sample set: per-traversal
/// position/stream indices are computed once up front, every universe
/// column is evaluated as a packed bit column (so the constant and
/// duplicate checks are word compares, not per-sample scans), retained
/// features are moved — never cloned — and the surviving columns are
/// transposed into packed rows.
pub fn featurize(space: &DecisionSpace, traversals: &[&Traversal]) -> FeatureSet {
    let universe = feature_universe(space);
    let rows: Vec<(Vec<usize>, Vec<Option<usize>>)> = traversals
        .iter()
        .map(|t| (t.positions(space.num_ops()), t.streams(space.num_ops())))
        .collect();

    // Evaluate column-wise for pruning.
    let mut features: Vec<Feature> = Vec::new();
    let mut cols: Vec<BitRow> = Vec::new();
    let mut dropped_constant = 0;
    let mut dropped_duplicate = 0;
    for f in universe {
        let col: BitRow = rows
            .iter()
            .map(|(pos, st)| eval_kind(f.kind, pos, st))
            .collect();
        let ones = col.count_ones();
        if !rows.is_empty() && (ones == 0 || ones == rows.len()) {
            dropped_constant += 1;
            continue;
        }
        if cols.contains(&col) {
            dropped_duplicate += 1;
            continue;
        }
        features.push(f);
        cols.push(col);
    }

    let matrix: Vec<BitRow> = (0..rows.len())
        .map(|s| cols.iter().map(|col| col.get(s)).collect())
        .collect();
    FeatureSet {
        features,
        matrix,
        dropped_constant,
        dropped_duplicate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CostKey, DagBuilder, OpSpec};

    /// Two independent GPU kernels and a dependent CPU op.
    fn space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let g = b.add("b", OpSpec::GpuKernel(CostKey::new("b")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(a, c);
        b.edge(g, c);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    #[test]
    fn universe_covers_all_pairs() {
        let sp = space();
        let n = sp.num_ops(); // 6 ops (a, b, c, 2×CER, CES)
        let uni = feature_universe(&sp);
        let ordering = uni
            .iter()
            .filter(|f| matches!(f.kind, FeatureKind::Before(_, _)))
            .count();
        let stream = uni
            .iter()
            .filter(|f| matches!(f.kind, FeatureKind::SameStream(_, _)))
            .count();
        assert_eq!(ordering, n * (n - 1) / 2);
        assert_eq!(stream, 1); // only (a, b) are GPU
    }

    #[test]
    fn constant_features_are_pruned() {
        let sp = space();
        let all: Vec<_> = sp.enumerate().collect();
        let refs: Vec<&Traversal> = all.iter().collect();
        let fs = featurize(&sp, &refs);
        assert!(
            fs.dropped_constant > 0,
            "DAG-implied orderings must be pruned"
        );
        // "a before CER-after-a" is DAG-implied: never retained.
        let a = sp.op_by_name("a").unwrap();
        let cer = sp.op_by_name("CER-after-a").unwrap();
        assert!(fs
            .features
            .iter()
            .all(|f| f.kind != FeatureKind::Before(a.min(cer), a.max(cer))));
    }

    #[test]
    fn retained_features_discriminate() {
        let sp = space();
        let all: Vec<_> = sp.enumerate().collect();
        let refs: Vec<&Traversal> = all.iter().collect();
        let fs = featurize(&sp, &refs);
        assert!(fs.num_features() > 0);
        for j in 0..fs.num_features() {
            let col: Vec<bool> = fs.matrix.iter().map(|r| r[j]).collect();
            assert!(
                col.iter().any(|&b| b) && col.iter().any(|&b| !b),
                "feature {j}"
            );
        }
    }

    #[test]
    fn duplicate_columns_are_pruned() {
        let sp = space();
        let all: Vec<_> = sp.enumerate().collect();
        let refs: Vec<&Traversal> = all.iter().collect();
        let fs = featurize(&sp, &refs);
        for i in 0..fs.num_features() {
            for j in i + 1..fs.num_features() {
                let ci: Vec<bool> = fs.matrix.iter().map(|r| r[i]).collect();
                let cj: Vec<bool> = fs.matrix.iter().map(|r| r[j]).collect();
                assert_ne!(ci, cj, "columns {i} and {j} identical");
            }
        }
    }

    #[test]
    fn vector_of_matches_matrix_rows() {
        let sp = space();
        let all: Vec<_> = sp.enumerate().collect();
        let refs: Vec<&Traversal> = all.iter().collect();
        let fs = featurize(&sp, &refs);
        for (s, t) in all.iter().enumerate() {
            assert_eq!(fs.vector_of(&sp, t), fs.matrix[s]);
        }
    }

    #[test]
    fn phrase_renders_positive_and_negative() {
        let sp = space();
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        let before = Feature {
            kind: FeatureKind::Before(a, b),
            name: String::new(),
        };
        assert_eq!(before.phrase(&sp, true), "a before b");
        assert_eq!(before.phrase(&sp, false), "b before a");
        let stream = Feature {
            kind: FeatureKind::SameStream(a, b),
            name: String::new(),
        };
        assert_eq!(stream.phrase(&sp, true), "a same stream as b");
        assert_eq!(stream.phrase(&sp, false), "a different stream than b");
    }

    #[test]
    fn same_stream_feature_reflects_bindings() {
        let sp = space();
        let t_same = sp
            .traversal_from_names(&[
                ("a", Some(0)),
                ("CER-after-a", None),
                ("b", Some(0)),
                ("CER-after-b", None),
                ("CES-b4-c", None),
                ("c", None),
            ])
            .unwrap();
        let t_diff = sp
            .traversal_from_names(&[
                ("a", Some(0)),
                ("CER-after-a", None),
                ("b", Some(1)),
                ("CER-after-b", None),
                ("CES-b4-c", None),
                ("c", None),
            ])
            .unwrap();
        let fs = featurize(&sp, &[&t_same, &t_diff]);
        let a = sp.op_by_name("a").unwrap();
        let b = sp.op_by_name("b").unwrap();
        let j = fs
            .features
            .iter()
            .position(|f| f.kind == FeatureKind::SameStream(a.min(b), a.max(b)))
            .expect("stream feature retained: it differs between samples");
        assert!(fs.matrix[0][j]);
        assert!(!fs.matrix[1][j]);
    }
}
