//! Graphviz export of trained decision trees, in the style of the
//! paper's Fig. 6: each node shows its split condition, sample count, and
//! per-class counts; leaves are colored by their dominating class.

use crate::tree::DecisionTree;

/// A small qualitative palette for class coloring (cycled when there are
/// more classes than entries).
const PALETTE: [&str; 6] = [
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462",
];

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Renders `tree` in `dot` syntax. `feature_names[i]` labels feature `i`
/// (its value-1 phrasing); `class_names[c]` labels class `c`.
pub fn tree_to_dot(
    tree: &DecisionTree,
    feature_names: &[String],
    class_names: &[String],
) -> String {
    let mut out = String::from("digraph tree {\n  node [shape=box,style=\"rounded,filled\"];\n");
    for (id, n) in tree.nodes().iter().enumerate() {
        let samples: usize = n.raw_counts.iter().sum();
        let label = match n.feature {
            Some(f) => format!(
                "{}?\\nsamples {}\\nclasses {:?}",
                escape(&feature_names[f]),
                samples,
                n.raw_counts
            ),
            None => format!(
                "{}\\nsamples {}\\nclasses {:?}",
                escape(&class_names[n.class()]),
                samples,
                n.raw_counts
            ),
        };
        let color = PALETTE[n.class() % PALETTE.len()];
        out.push_str(&format!(
            "  n{id} [label=\"{label}\",fillcolor=\"{color}\"];\n"
        ));
    }
    for (id, n) in tree.nodes().iter().enumerate() {
        if n.feature.is_some() {
            out.push_str(&format!("  n{id} -> n{} [label=\"no\"];\n", n.left));
            out.push_str(&format!("  n{id} -> n{} [label=\"yes\"];\n", n.right));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TrainConfig;

    #[test]
    fn dot_covers_nodes_and_branches() {
        let x: Vec<crate::BitRow> = [[false], [false], [true], [true]]
            .iter()
            .map(|b| crate::BitRow::from_bools(b))
            .collect();
        let y = vec![0, 0, 1, 1];
        let tree = DecisionTree::fit(&x, &y, 2, &TrainConfig::default());
        let dot = tree_to_dot(
            &tree,
            &["a before b".to_string()],
            &["fast".to_string(), "slow".to_string()],
        );
        assert!(dot.contains("a before b?"));
        assert!(dot.contains("fast"));
        assert!(dot.contains("slow"));
        assert!(dot.contains("label=\"no\""));
        assert!(dot.contains("label=\"yes\""));
        assert_eq!(dot.matches("fillcolor").count(), tree.nodes().len());
    }

    #[test]
    fn single_leaf_tree_renders() {
        let x = vec![crate::BitRow::from_bools(&[true]); 3];
        let y = vec![1; 3];
        let tree = DecisionTree::fit(&x, &y, 2, &TrainConfig::default());
        let dot = tree_to_dot(&tree, &[String::from("f")], &["c0".into(), "c1".into()]);
        assert!(dot.contains("c1"));
        assert!(!dot.contains("label=\"yes\""));
    }
}
