//! Classifier diagnostics: confusion matrices and Gini feature
//! importances, used to interpret the mined rules ("which design
//! decisions carry the discriminating power?").

use crate::bitrow::BitRow;
use crate::tree::{DecisionTree, TrainConfig};

/// `matrix[true_class][predicted_class]` counts over a labelled set.
pub fn confusion_matrix(
    tree: &DecisionTree,
    x: &[BitRow],
    y: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (xi, &yi) in x.iter().zip(y) {
        m[yi][tree.predict(xi)] += 1;
    }
    m
}

/// Per-class precision and recall derived from a confusion matrix.
/// Classes with no predictions (or no members) report 0.
pub fn precision_recall(matrix: &[Vec<usize>]) -> Vec<(f64, f64)> {
    let k = matrix.len();
    (0..k)
        .map(|c| {
            let tp = matrix[c][c] as f64;
            let predicted: usize = (0..k).map(|t| matrix[t][c]).sum();
            let actual: usize = matrix[c].iter().sum();
            let precision = if predicted == 0 {
                0.0
            } else {
                tp / predicted as f64
            };
            let recall = if actual == 0 { 0.0 } else { tp / actual as f64 };
            (precision, recall)
        })
        .collect()
}

/// Gini (mean-decrease-impurity) feature importances, normalized to sum
/// to 1 (all zeros when the tree has no splits): the total weighted
/// impurity decrease contributed by each feature's splits, as
/// scikit-learn's `feature_importances_` reports.
pub fn feature_importances(
    tree: &DecisionTree,
    num_features: usize,
    cfg: &TrainConfig,
) -> Vec<f64> {
    let mut imp = vec![0.0f64; num_features];
    for n in tree.nodes() {
        let Some(f) = n.feature else { continue };
        let w: f64 = n.weighted_counts.iter().sum();
        let wl: f64 = tree.nodes()[n.left].weighted_counts.iter().sum();
        let wr: f64 = tree.nodes()[n.right].weighted_counts.iter().sum();
        let decrease = w * cfg.criterion_impurity(&n.weighted_counts)
            - wl * cfg.criterion_impurity(&tree.nodes()[n.left].weighted_counts)
            - wr * cfg.criterion_impurity(&tree.nodes()[n.right].weighted_counts);
        imp[f] += decrease.max(0.0);
    }
    let total: f64 = imp.iter().sum();
    if total > 0.0 {
        for v in &mut imp {
            *v /= total;
        }
    }
    imp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTree;

    fn data() -> (Vec<BitRow>, Vec<usize>) {
        // Feature 0 decides the class; feature 1 is pure noise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let f0 = i % 2 == 0;
            let f1 = i % 3 == 0;
            x.push(BitRow::from_bools(&[f0, f1]));
            y.push(usize::from(f0));
        }
        (x, y)
    }

    #[test]
    fn confusion_matrix_diagonal_for_perfect_tree() {
        let (x, y) = data();
        let tree = DecisionTree::fit(&x, &y, 2, &TrainConfig::default());
        let m = confusion_matrix(&tree, &x, &y, 2);
        assert_eq!(m[0][1] + m[1][0], 0, "no confusion: {m:?}");
        assert_eq!(m[0][0] + m[1][1], 40);
    }

    #[test]
    fn precision_recall_perfect_is_one() {
        let (x, y) = data();
        let tree = DecisionTree::fit(&x, &y, 2, &TrainConfig::default());
        let pr = precision_recall(&confusion_matrix(&tree, &x, &y, 2));
        for (p, r) in pr {
            assert_eq!((p, r), (1.0, 1.0));
        }
    }

    #[test]
    fn precision_recall_handles_empty_rows() {
        let m = vec![vec![0, 0], vec![3, 5]];
        let pr = precision_recall(&m);
        assert_eq!(pr[0], (0.0, 0.0)); // class 0 never occurs / never hit
        assert_eq!(pr[1].1, 5.0 / 8.0);
    }

    #[test]
    fn informative_feature_dominates_importances() {
        let (x, y) = data();
        let cfg = TrainConfig::default();
        let tree = DecisionTree::fit(&x, &y, 2, &cfg);
        let imp = feature_importances(&tree, 2, &cfg);
        assert!(imp[0] > 0.99, "{imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stump_has_zero_importances() {
        let x = vec![BitRow::from_bools(&[true]); 4];
        let y = vec![0; 4];
        let cfg = TrainConfig::default();
        let tree = DecisionTree::fit(&x, &y, 1, &cfg);
        assert_eq!(feature_importances(&tree, 1, &cfg), vec![0.0]);
    }
}
