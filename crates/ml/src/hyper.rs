//! Decision-tree hyperparameter search (paper Algorithm 1, Fig. 5).
//!
//! The paths to leaf nodes become design rules, so a maximally accurate
//! tree is wanted without concern for overfitting. Starting from two leaf
//! nodes, the leaf budget is increased (probing up to five steps ahead)
//! until the training error stops shrinking; `max_depth` is always one
//! less than the leaf budget.

use crate::bitrow::BitRow;
use crate::tree::{DecisionTree, TrainConfig};

/// One `train()` invocation during the search, for Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchStep {
    /// `max_leaf_nodes` used.
    pub max_leaf_nodes: usize,
    /// Training error of the resulting tree.
    pub error: f64,
    /// Depth actually reached (may be below the allowance).
    pub depth: usize,
    /// Leaves actually grown.
    pub leaves: usize,
    /// Whether the step was accepted as the new best.
    pub accepted: bool,
}

/// Result of Algorithm 1.
#[derive(Debug, Clone)]
pub struct HyperSearch {
    /// The selected classifier.
    pub tree: DecisionTree,
    /// The selected `max_leaf_nodes`.
    pub max_leaf_nodes: usize,
    /// Its training error.
    pub error: f64,
    /// Every probe, in execution order (Fig. 5 plots these).
    pub history: Vec<SearchStep>,
}

/// Runs Algorithm 1: iteratively grow the leaf budget while training
/// error shrinks. `base` supplies criterion/weighting; its
/// `max_leaf_nodes`/`max_depth` are overridden by the search.
pub fn algorithm1(
    x: &[BitRow],
    y: &[usize],
    num_classes: usize,
    base: &TrainConfig,
) -> HyperSearch {
    let train = |mln: usize| -> (f64, DecisionTree, usize, usize) {
        let cfg = TrainConfig {
            max_leaf_nodes: Some(mln),
            max_depth: Some(mln.saturating_sub(1).max(1)),
            ..*base
        };
        let t = DecisionTree::fit(x, y, num_classes, &cfg);
        let e = t.error(x, y);
        let d = t.depth();
        let l = t.num_leaves();
        (e, t, d, l)
    };

    let mut history = Vec::new();
    let mut mln = 2usize;
    let mut err = f64::INFINITY;
    let (mut cur, mut clf, d0, l0) = train(mln);
    history.push(SearchStep {
        max_leaf_nodes: mln,
        error: cur,
        depth: d0,
        leaves: l0,
        accepted: true,
    });
    while cur < err {
        err = cur;
        for i in 1..=5 {
            let (e, t, d, l) = train(mln + i);
            let accepted = e < err;
            history.push(SearchStep {
                max_leaf_nodes: mln + i,
                error: e,
                depth: d,
                leaves: l,
                accepted,
            });
            if accepted {
                clf = t;
                mln += i;
                cur = e;
                break;
            }
        }
        // If no probe improved, `cur` still equals `err` and the loop ends.
    }
    HyperSearch {
        tree: clf,
        max_leaf_nodes: mln,
        error: err.min(cur),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three classes separable with 3 leaves: f0 splits class 2, f1
    /// splits 0 from 1.
    fn data() -> (Vec<BitRow>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..10 {
            x.push(BitRow::from_bools(&[true, false]));
            y.push(2);
            x.push(BitRow::from_bools(&[false, false]));
            y.push(0);
            x.push(BitRow::from_bools(&[false, true]));
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn search_reaches_zero_error_with_minimal_leaves() {
        let (x, y) = data();
        let s = algorithm1(&x, &y, 3, &TrainConfig::default());
        assert_eq!(s.error, 0.0);
        assert_eq!(s.tree.num_leaves(), 3);
        assert!(s.max_leaf_nodes >= 3);
        // History starts at the mandatory mln=2 probe.
        assert_eq!(s.history[0].max_leaf_nodes, 2);
        assert!(s.history[0].error > 0.0);
    }

    #[test]
    fn search_history_is_monotone_in_accepted_steps() {
        let (x, y) = data();
        let s = algorithm1(&x, &y, 3, &TrainConfig::default());
        let accepted: Vec<f64> = s
            .history
            .iter()
            .filter(|h| h.accepted)
            .map(|h| h.error)
            .collect();
        for w in accepted.windows(2) {
            assert!(w[1] < w[0], "accepted errors must strictly decrease");
        }
    }

    #[test]
    fn trivial_problem_stops_immediately() {
        // Perfectly separable with 2 leaves: the mln=2 tree already has
        // zero error, probes 3..7 cannot improve, search stops.
        let x: Vec<BitRow> = [[false], [true], [false], [true]]
            .iter()
            .map(|b| BitRow::from_bools(b))
            .collect();
        let y = vec![0, 1, 0, 1];
        let s = algorithm1(&x, &y, 2, &TrainConfig::default());
        assert_eq!(s.error, 0.0);
        assert_eq!(s.max_leaf_nodes, 2);
        // 1 initial + 5 failed probes.
        assert_eq!(s.history.len(), 6);
    }

    #[test]
    fn depth_is_capped_at_leaves_minus_one() {
        let (x, y) = data();
        let s = algorithm1(&x, &y, 3, &TrainConfig::default());
        for h in &s.history {
            assert!(h.depth <= h.max_leaf_nodes.saturating_sub(1).max(1));
        }
    }
}
