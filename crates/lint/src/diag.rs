//! Diagnostics: stable rule codes, severities, reports, and aggregate
//! counters, rendered as human-readable text or JSON.

use dr_dag::OpId;
use std::collections::BTreeMap;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Pure-overhead or analysis-coverage findings; the schedule is still
    /// correct.
    Warning,
    /// The schedule is (or may be) incorrect: a race, a deadlock, or a
    /// malformed lowering.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identifier of one lint rule.
///
/// Codes are grouped by analysis: `SCHED*` (schedule well-formedness),
/// `HB*` (happens-before verification), `MPI1*` (deadlock detection),
/// `RS*` (redundant synchronization). Codes never change meaning across
/// versions; new rules get new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // each variant is documented via `description`
pub enum RuleCode {
    Sched001,
    Sched002,
    Sched003,
    Hb001,
    Hb002,
    Mpi101,
    Mpi102,
    Mpi103,
    Mpi104,
    Mpi105,
    Mpi106,
    Mpi107,
    Rs001,
    Rs002,
    Rs003,
    Rs004,
}

impl RuleCode {
    /// The stable textual code, e.g. `"HB001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleCode::Sched001 => "SCHED001",
            RuleCode::Sched002 => "SCHED002",
            RuleCode::Sched003 => "SCHED003",
            RuleCode::Hb001 => "HB001",
            RuleCode::Hb002 => "HB002",
            RuleCode::Mpi101 => "MPI101",
            RuleCode::Mpi102 => "MPI102",
            RuleCode::Mpi103 => "MPI103",
            RuleCode::Mpi104 => "MPI104",
            RuleCode::Mpi105 => "MPI105",
            RuleCode::Mpi106 => "MPI106",
            RuleCode::Mpi107 => "MPI107",
            RuleCode::Rs001 => "RS001",
            RuleCode::Rs002 => "RS002",
            RuleCode::Rs003 => "RS003",
            RuleCode::Rs004 => "RS004",
        }
    }

    /// One-line description of what the rule detects.
    pub fn description(self) -> &'static str {
        match self {
            RuleCode::Sched001 => "decision op missing from (or duplicated in) the schedule",
            RuleCode::Sched002 => "event or stream id out of the schedule's declared range",
            RuleCode::Sched003 => "traversal is not a valid completion of the decision space",
            RuleCode::Hb001 => "DAG dependency edge not covered by the happens-before order",
            RuleCode::Hb002 => "wait/sync references an event with no preceding record",
            RuleCode::Mpi101 => "blocking wait issued before its own matching post",
            RuleCode::Mpi102 => "asymmetric point-to-point pattern (unmatched message)",
            RuleCode::Mpi103 => "blocking wait whose matching remote post never appears",
            RuleCode::Mpi104 => "cross-rank deadlock: ranks blocked with no possible progress",
            RuleCode::Mpi105 => "comm key used both point-to-point and collectively",
            RuleCode::Mpi106 => "comm key without topology information (analysis skipped)",
            RuleCode::Mpi107 => "invalid collective pattern (need one send, no recvs per rank)",
            RuleCode::Rs001 => "StreamWaitEvent dominated by the existing partial order",
            RuleCode::Rs002 => "EventSync wholly dominated by the existing partial order",
            RuleCode::Rs003 => "redundant event within an otherwise-needed EventSync",
            RuleCode::Rs004 => "EventRecord never consumed by a wait or sync",
        }
    }

    /// The severity this rule always reports at.
    pub fn severity(self) -> Severity {
        match self {
            RuleCode::Sched001
            | RuleCode::Sched002
            | RuleCode::Sched003
            | RuleCode::Hb001
            | RuleCode::Hb002
            | RuleCode::Mpi101
            | RuleCode::Mpi102
            | RuleCode::Mpi103
            | RuleCode::Mpi104
            | RuleCode::Mpi105
            | RuleCode::Mpi107 => Severity::Error,
            RuleCode::Mpi106
            | RuleCode::Rs001
            | RuleCode::Rs002
            | RuleCode::Rs003
            | RuleCode::Rs004 => Severity::Warning,
        }
    }

    /// Whether the rule reports a happens-before race.
    pub fn is_race(self) -> bool {
        matches!(self, RuleCode::Hb001 | RuleCode::Hb002)
    }

    /// Whether the rule reports an MPI deadlock (as opposed to a merely
    /// malformed communication pattern).
    pub fn is_deadlock(self) -> bool {
        matches!(self, RuleCode::Mpi103 | RuleCode::Mpi104)
    }

    /// Whether the rule reports redundant synchronization.
    pub fn is_redundant_sync(self) -> bool {
        matches!(
            self,
            RuleCode::Rs001 | RuleCode::Rs002 | RuleCode::Rs003 | RuleCode::Rs004
        )
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding of one rule on one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: RuleCode,
    /// Human-readable explanation, naming the offending items.
    pub message: String,
    /// Indices into `Schedule::items` of the offending instructions.
    pub items: Vec<usize>,
    /// Decision ops involved, when the items map back to ops.
    pub ops: Vec<OpId>,
}

impl Diagnostic {
    /// Creates a diagnostic with no item/op anchors.
    pub fn new(code: RuleCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            message: message.into(),
            items: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Anchors the diagnostic to schedule items.
    pub fn with_items(mut self, items: Vec<usize>) -> Self {
        self.items = items;
        self
    }

    /// Anchors the diagnostic to decision ops.
    pub fn with_ops(mut self, ops: Vec<OpId>) -> Self {
        self.ops = ops;
        self
    }

    /// The rule's severity.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders as `severity CODE: message [items ...]`.
    pub fn render(&self) -> String {
        let mut s = format!("{} {}: {}", self.severity(), self.code, self.message);
        if !self.items.is_empty() {
            s.push_str(&format!(" [items {:?}]", self.items));
        }
        s
    }

    fn to_json(&self) -> String {
        let items: Vec<String> = self.items.iter().map(|i| i.to_string()).collect();
        let ops: Vec<String> = self.ops.iter().map(|o| o.to_string()).collect();
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"items\":[{}],\"ops\":[{}]}}",
            self.code,
            self.severity(),
            escape(&self.message),
            items.join(","),
            ops.join(",")
        )
    }
}

/// All findings of one lint pass over one schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Every diagnostic, in analysis order (well-formedness, then
    /// happens-before, then MPI, then redundancy).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Wraps a diagnostic list.
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        LintReport { diagnostics }
    }

    /// Error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// True when no error-severity diagnostic fired (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether any diagnostic carries the given code.
    pub fn has_code(&self, code: RuleCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Number of diagnostics carrying the given code.
    pub fn count_code(&self, code: RuleCode) -> usize {
        self.diagnostics.iter().filter(|d| d.code == code).count()
    }

    /// Happens-before races reported.
    pub fn races(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.code.is_race()).count()
    }

    /// Deadlocks reported.
    pub fn deadlocks(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.code.is_deadlock())
            .count()
    }

    /// Redundant synchronizations reported.
    pub fn redundant_syncs(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.code.is_redundant_sync())
            .count()
    }

    /// Renders every diagnostic, one per line.
    pub fn render_text(&self) -> String {
        if self.diagnostics.is_empty() {
            return "clean: no diagnostics\n".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(|d| d.to_json()).collect();
        format!(
            "{{\"errors\":{},\"warnings\":{},\"diagnostics\":[{}]}}",
            self.errors().count(),
            self.warnings().count(),
            diags.join(",")
        )
    }
}

/// Aggregate counters across many linted schedules (e.g. a whole
/// enumerated decision space, or every evaluation of a pipeline run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintCounters {
    /// Schedules linted.
    pub schedules: u64,
    /// Error-severity diagnostics.
    pub errors: u64,
    /// Warning-severity diagnostics.
    pub warnings: u64,
    /// Happens-before races (`HB*`).
    pub races: u64,
    /// Deadlocks (`MPI103`/`MPI104`).
    pub deadlocks: u64,
    /// Redundant synchronizations (`RS*`).
    pub redundant_syncs: u64,
    /// Diagnostic count per rule code.
    pub by_code: BTreeMap<&'static str, u64>,
}

impl LintCounters {
    /// Folds one schedule's report into the counters.
    pub fn absorb(&mut self, report: &LintReport) {
        self.schedules += 1;
        self.errors += report.errors().count() as u64;
        self.warnings += report.warnings().count() as u64;
        self.races += report.races() as u64;
        self.deadlocks += report.deadlocks() as u64;
        self.redundant_syncs += report.redundant_syncs() as u64;
        for d in &report.diagnostics {
            *self.by_code.entry(d.code.as_str()).or_insert(0) += 1;
        }
    }

    /// Merges another counter set (e.g. from a parallel worker).
    pub fn merge(&mut self, other: &LintCounters) {
        self.schedules += other.schedules;
        self.errors += other.errors;
        self.warnings += other.warnings;
        self.races += other.races;
        self.deadlocks += other.deadlocks;
        self.redundant_syncs += other.redundant_syncs;
        for (code, n) in &other.by_code {
            *self.by_code.entry(code).or_insert(0) += n;
        }
    }

    /// Renders the counters as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "schedules {}: {} errors, {} warnings\n  races {}, deadlocks {}, redundant syncs {}\n",
            self.schedules,
            self.errors,
            self.warnings,
            self.races,
            self.deadlocks,
            self.redundant_syncs
        );
        for (code, n) in &self.by_code {
            out.push_str(&format!("  {code} x {n}\n"));
        }
        out
    }

    /// Renders the counters as one JSON object.
    pub fn to_json(&self) -> String {
        let by_code: Vec<String> = self
            .by_code
            .iter()
            .map(|(code, n)| format!("\"{code}\":{n}"))
            .collect();
        format!(
            concat!(
                "{{\"schedules\":{},\"errors\":{},\"warnings\":{},\"races\":{},",
                "\"deadlocks\":{},\"redundant_syncs\":{},\"by_code\":{{{}}}}}"
            ),
            self.schedules,
            self.errors,
            self.warnings,
            self.races,
            self.deadlocks,
            self.redundant_syncs,
            by_code.join(",")
        )
    }
}

/// One deduplicated diagnostic across many schedules of a space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregatedDiag {
    /// The underlying diagnostic (one representative occurrence).
    pub diag: Diagnostic,
    /// Number of schedules it fired in.
    pub schedules: u64,
    /// Index of the first schedule it fired in.
    pub first_schedule: u64,
}

impl AggregatedDiag {
    /// Renders as `severity CODE: message [items ...] (N schedules, first #i)`.
    pub fn render(&self) -> String {
        format!(
            "{} ({} schedule{}, first #{})",
            self.diag.render(),
            self.schedules,
            if self.schedules == 1 { "" } else { "s" },
            self.first_schedule
        )
    }
}

/// Sort/dedup key of an aggregated diagnostic: `(code, items, message)`.
type DiagKey = (&'static str, Vec<usize>, String);

/// Aggregation state: `(representative, schedule count, first schedule,
/// last schedule counted)`. The trailing marker makes a diagnostic that
/// fires several times within one schedule count that schedule once.
type DiagSlot = (Diagnostic, u64, u64, u64);

/// Deduplicates diagnostics across a schedule space: the same finding
/// (code + items + message) reports once with a schedule count instead
/// of once per schedule, and the output is stably sorted by
/// `(code, items, message)`.
#[derive(Debug, Clone, Default)]
pub struct DiagAggregator {
    map: BTreeMap<DiagKey, DiagSlot>,
}

impl DiagAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one schedule's report in; `schedule` is the schedule's
    /// index in enumeration order (absorb in nondecreasing order). A
    /// diagnostic firing several times in one schedule counts that
    /// schedule once.
    pub fn absorb(&mut self, schedule: u64, report: &LintReport) {
        for d in &report.diagnostics {
            let key = (d.code.as_str(), d.items.clone(), d.message.clone());
            match self.map.get_mut(&key) {
                None => {
                    self.map.insert(key, (d.clone(), 1, schedule, schedule));
                }
                Some(entry) => {
                    if entry.3 != schedule {
                        entry.1 += 1;
                        entry.3 = schedule;
                    }
                }
            }
        }
    }

    /// The deduplicated findings, stably sorted by (code, items, message).
    pub fn entries(&self) -> Vec<AggregatedDiag> {
        self.map
            .values()
            .map(|(diag, schedules, first, _)| AggregatedDiag {
                diag: diag.clone(),
                schedules: *schedules,
                first_schedule: *first,
            })
            .collect()
    }

    /// Number of distinct findings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing fired.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Renders every deduplicated finding, one per line.
    pub fn render_text(&self) -> String {
        if self.map.is_empty() {
            return "clean: no diagnostics\n".to_string();
        }
        let mut out = String::new();
        for e in self.entries() {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_classify() {
        for code in [
            RuleCode::Sched001,
            RuleCode::Sched002,
            RuleCode::Sched003,
            RuleCode::Hb001,
            RuleCode::Hb002,
            RuleCode::Mpi101,
            RuleCode::Mpi102,
            RuleCode::Mpi103,
            RuleCode::Mpi104,
            RuleCode::Mpi105,
            RuleCode::Mpi106,
            RuleCode::Mpi107,
            RuleCode::Rs001,
            RuleCode::Rs002,
            RuleCode::Rs003,
            RuleCode::Rs004,
        ] {
            assert!(!code.as_str().is_empty());
            assert!(!code.description().is_empty());
            // Redundant-sync rules are pure-overhead findings, never errors.
            if code.is_redundant_sync() {
                assert_eq!(code.severity(), Severity::Warning);
            }
            if code.is_race() || code.is_deadlock() {
                assert_eq!(code.severity(), Severity::Error);
            }
        }
    }

    #[test]
    fn report_partitions_by_severity() {
        let report = LintReport::new(vec![
            Diagnostic::new(RuleCode::Hb001, "race").with_items(vec![1, 2]),
            Diagnostic::new(RuleCode::Rs001, "redundant wait"),
        ]);
        assert_eq!(report.errors().count(), 1);
        assert_eq!(report.warnings().count(), 1);
        assert!(!report.is_clean());
        assert_eq!(report.races(), 1);
        assert_eq!(report.redundant_syncs(), 1);
        assert!(report.has_code(RuleCode::Hb001));
        assert!(!report.has_code(RuleCode::Mpi104));
        let text = report.render_text();
        assert!(text.contains("error HB001: race [items [1, 2]]"));
        assert!(text.contains("warning RS001"));
    }

    #[test]
    fn counters_absorb_and_merge() {
        let report = LintReport::new(vec![
            Diagnostic::new(RuleCode::Hb001, "race"),
            Diagnostic::new(RuleCode::Rs003, "redundant event"),
        ]);
        let mut a = LintCounters::default();
        a.absorb(&report);
        let mut b = LintCounters::default();
        b.absorb(&report);
        b.absorb(&LintReport::default());
        a.merge(&b);
        assert_eq!(a.schedules, 3);
        assert_eq!(a.errors, 2);
        assert_eq!(a.warnings, 2);
        assert_eq!(a.by_code["HB001"], 2);
        let json = a.to_json();
        assert!(json.contains("\"schedules\":3"));
        assert!(json.contains("\"HB001\":2"));
    }

    #[test]
    fn aggregator_dedups_and_sorts_stably() {
        let race = Diagnostic::new(RuleCode::Hb001, "race").with_items(vec![1, 2]);
        let rs = Diagnostic::new(RuleCode::Rs003, "redundant event").with_items(vec![4]);
        let mut agg = DiagAggregator::new();
        // The race fires twice within schedule 0 (counts once), then in
        // schedules 2 and 5; the RS only in schedule 2.
        agg.absorb(0, &LintReport::new(vec![race.clone(), race.clone()]));
        agg.absorb(1, &LintReport::default());
        agg.absorb(2, &LintReport::new(vec![race.clone(), rs.clone()]));
        agg.absorb(5, &LintReport::new(vec![race.clone()]));
        let entries = agg.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].diag.code, RuleCode::Hb001);
        assert_eq!(entries[0].schedules, 3);
        assert_eq!(entries[0].first_schedule, 0);
        assert_eq!(entries[1].diag.code, RuleCode::Rs003);
        assert_eq!(entries[1].schedules, 1);
        assert_eq!(entries[1].first_schedule, 2);
        let text = agg.render_text();
        assert!(text.contains("(3 schedules, first #0)"), "{text}");
        assert!(text.contains("(1 schedule, first #2)"), "{text}");
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic::new(RuleCode::Hb001, "edge \"a\" -> \"b\"");
        let json = LintReport::new(vec![d]).to_json();
        assert!(json.contains("\\\"a\\\""));
    }
}
