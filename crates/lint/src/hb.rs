//! Happens-before reconstruction and dependency-edge verification.
//!
//! Every [`ScheduledItem`] contributes three nodes to the happens-before
//! graph — *issue* (the host call), *start* (the work begins), and *end*
//! (the work completes) — connected by:
//!
//! * program order: `issue(i) → issue(i+1)`, `issue(i) → start(i) →
//!   end(i)`, and `end(i) → issue(i+1)` for host-blocking items (CPU
//!   work, MPI calls, `EventSync`, `DeviceSync`);
//! * stream FIFO: `end(a) → start(b)` for consecutive device-enqueued
//!   items `a`, `b` on the same stream (kernels, records, stream waits);
//! * events: an event completes with its record item (which FIFO order
//!   places after all prior work on the recorded stream), so
//!   `end(record) → end(waiter)` for `StreamWaitEvent` and `EventSync`;
//! * device-wide sync: `end(d) → end(sync)` for every device-enqueued
//!   item `d` issued before a `DeviceSync`.
//!
//! Every edge points from a lower to a higher item index, so the node
//! order is topological and reachability closes in one backward sweep
//! over per-node bitsets. A DAG dependency `u → v` is *covered* iff
//! `end(item(u))` reaches `start(item(v))`; an uncovered edge means the
//! lowering lost the dependency — a data race on a real platform.

use crate::diag::{Diagnostic, RuleCode};
use dr_dag::{DecisionSpace, EventId, Schedule, ScheduleAction};

/// The *issue* node of item `i` (host reaches the call).
pub(crate) fn issue(i: usize) -> usize {
    3 * i
}

/// The *start* node of item `i` (the work begins executing).
pub(crate) fn start(i: usize) -> usize {
    3 * i + 1
}

/// The *end* node of item `i` (the work completes).
pub(crate) fn end(i: usize) -> usize {
    3 * i + 2
}

/// Transitive happens-before reachability over the 3-nodes-per-item graph.
pub struct HbGraph {
    words: usize,
    reach: Vec<u64>,
}

impl HbGraph {
    /// Whether node `from` happens-before node `to` (strictly: `from`
    /// does not reach itself unless on a cycle, and the graph is acyclic).
    pub(crate) fn reaches(&self, from: usize, to: usize) -> bool {
        self.reach[from * self.words + to / 64] >> (to % 64) & 1 == 1
    }
}

/// Everything one happens-before construction produces.
pub(crate) struct HbBuild {
    /// The closed reachability relation.
    pub hb: HbGraph,
    /// Well-formedness and use-before-record diagnostics.
    pub diags: Vec<Diagnostic>,
    /// Per item: `true` when it is an `EventRecord` that some later wait
    /// or sync resolved to.
    pub used_records: Vec<bool>,
}

/// Builds the happens-before graph of `schedule`.
///
/// `active(item, event)` gates the record→waiter edge a `StreamWaitEvent`
/// or `EventSync` at `item` would add for `event`; the redundancy
/// analyzer rebuilds the graph with individual sync effects disabled to
/// test whether coverage survives without them. All structural edges
/// (program order, FIFO) are always present.
pub(crate) fn build_hb<F: Fn(usize, EventId) -> bool>(schedule: &Schedule, active: F) -> HbBuild {
    let n = schedule.items.len();
    let nodes = 3 * n;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes];
    let mut diags = Vec::new();
    let mut used_records = vec![false; n];

    let mut last_in_stream: Vec<Option<usize>> = vec![None; schedule.num_streams];
    let mut latest_record: Vec<Option<usize>> = vec![None; schedule.num_events];
    let mut device_items: Vec<usize> = Vec::new();

    let edge = |adj: &mut Vec<Vec<u32>>, from: usize, to: usize| {
        debug_assert!(from < to, "happens-before edges must point forward");
        adj[from].push(to as u32);
    };

    for (i, item) in schedule.items.iter().enumerate() {
        edge(&mut adj, issue(i), start(i));
        edge(&mut adj, start(i), end(i));
        if i + 1 < n {
            edge(&mut adj, issue(i), issue(i + 1));
        }

        // Device-enqueued items join their stream's FIFO; everything else
        // blocks the host until complete.
        let stream = match &item.action {
            ScheduleAction::KernelLaunch { stream, .. }
            | ScheduleAction::EventRecord { stream, .. }
            | ScheduleAction::StreamWaitEvent { stream, .. } => Some(*stream),
            _ => None,
        };
        match stream {
            Some(s) if s < schedule.num_streams => {
                if let Some(prev) = last_in_stream[s] {
                    edge(&mut adj, end(prev), start(i));
                }
                last_in_stream[s] = Some(i);
                device_items.push(i);
            }
            Some(s) => {
                diags.push(
                    Diagnostic::new(
                        RuleCode::Sched002,
                        format!(
                            "item {i} ({:?}) targets stream {s} but the schedule declares {}",
                            item.name, schedule.num_streams
                        ),
                    )
                    .with_items(vec![i]),
                );
                device_items.push(i);
            }
            None => {
                if i + 1 < n {
                    edge(&mut adj, end(i), issue(i + 1));
                }
            }
        }

        // Event effects: resolve each referenced event to its most recent
        // preceding record (CUDA captures the record at wait-issue time).
        let resolve = |adj: &mut Vec<Vec<u32>>,
                       diags: &mut Vec<Diagnostic>,
                       used: &mut Vec<bool>,
                       latest: &[Option<usize>],
                       ev: EventId| {
            if ev >= schedule.num_events {
                diags.push(
                    Diagnostic::new(
                        RuleCode::Sched002,
                        format!(
                            "item {i} ({:?}) references event {ev} but the schedule declares {}",
                            item.name, schedule.num_events
                        ),
                    )
                    .with_items(vec![i]),
                );
                return;
            }
            match latest[ev] {
                Some(rec) => {
                    used[rec] = true;
                    if active(i, ev) {
                        edge(adj, end(rec), end(i));
                    }
                }
                None => diags.push(
                    Diagnostic::new(
                        RuleCode::Hb002,
                        format!(
                            "item {i} ({:?}) waits on event {ev} before any record of it",
                            item.name
                        ),
                    )
                    .with_items(vec![i]),
                ),
            }
        };

        match &item.action {
            ScheduleAction::EventRecord { event, .. } => {
                if *event >= schedule.num_events {
                    diags.push(
                        Diagnostic::new(
                            RuleCode::Sched002,
                            format!(
                                "item {i} ({:?}) records event {event} but the schedule declares {}",
                                item.name, schedule.num_events
                            ),
                        )
                        .with_items(vec![i]),
                    );
                } else {
                    latest_record[*event] = Some(i);
                }
            }
            ScheduleAction::StreamWaitEvent { event, .. } => {
                resolve(
                    &mut adj,
                    &mut diags,
                    &mut used_records,
                    &latest_record,
                    *event,
                );
            }
            ScheduleAction::EventSync { events } => {
                for &ev in events {
                    resolve(&mut adj, &mut diags, &mut used_records, &latest_record, ev);
                }
            }
            ScheduleAction::DeviceSync => {
                for &d in &device_items {
                    edge(&mut adj, end(d), end(i));
                }
            }
            _ => {}
        }
    }

    // Close reachability: edges only point forward, so a single backward
    // sweep in node order computes the transitive closure.
    let words = nodes.div_ceil(64);
    let mut reach = vec![0u64; nodes * words];
    for node in (0..nodes).rev() {
        for s in std::mem::take(&mut adj[node]) {
            let succ = s as usize;
            reach[node * words + succ / 64] |= 1 << (succ % 64);
            let (head, tail) = reach.split_at_mut(succ * words);
            let dst = &mut head[node * words..node * words + words];
            let src = &tail[..words];
            for (d, s) in dst.iter_mut().zip(src) {
                *d |= *s;
            }
        }
    }

    HbBuild {
        hb: HbGraph { words, reach },
        diags,
        used_records,
    }
}

/// Maps every decision op to its schedule item (via `ScheduledItem::
/// source`), reporting `SCHED001` for ops that are missing or duplicated.
pub(crate) fn map_ops(
    space: &DecisionSpace,
    schedule: &Schedule,
) -> (Vec<Option<usize>>, Vec<Diagnostic>) {
    let mut item_of_op: Vec<Option<usize>> = vec![None; space.num_ops()];
    let mut diags = Vec::new();
    for (i, item) in schedule.items.iter().enumerate() {
        if let Some(op) = item.source {
            if op >= space.num_ops() {
                diags.push(
                    Diagnostic::new(
                        RuleCode::Sched001,
                        format!("item {i} ({:?}) names unknown decision op {op}", item.name),
                    )
                    .with_items(vec![i]),
                );
            } else if let Some(first) = item_of_op[op] {
                diags.push(
                    Diagnostic::new(
                        RuleCode::Sched001,
                        format!(
                            "decision op {:?} lowered twice (items {first} and {i})",
                            space.ops()[op].name
                        ),
                    )
                    .with_items(vec![first, i])
                    .with_ops(vec![op]),
                );
            } else {
                item_of_op[op] = Some(i);
            }
        }
    }
    for (op, slot) in item_of_op.iter().enumerate() {
        if slot.is_none() {
            diags.push(
                Diagnostic::new(
                    RuleCode::Sched001,
                    format!(
                        "decision op {:?} has no schedule item",
                        space.ops()[op].name
                    ),
                )
                .with_ops(vec![op]),
            );
        }
    }
    (item_of_op, diags)
}

/// The DAG dependency edges the verifier must see covered, as schedule
/// item pairs `(item_u, item_v)`; `item_v == usize::MAX` marks an edge
/// into the artificial `End` (covered by the final `DeviceSync`).
pub(crate) fn dependency_edges(
    space: &DecisionSpace,
    item_of_op: &[Option<usize>],
) -> Vec<(usize, usize, String)> {
    let dag = space.dag();
    let mut edges = Vec::new();
    for v in dag.user_vertices() {
        let Some(iv) = space.op_of_vertex(v).and_then(|op| item_of_op[op]) else {
            continue;
        };
        for &u in dag.preds(v) {
            let Some(iu) = space.op_of_vertex(u).and_then(|op| item_of_op[op]) else {
                continue;
            };
            edges.push((
                iu,
                iv,
                format!("{} -> {}", dag.vertex(u).name, dag.vertex(v).name),
            ));
        }
    }
    // Edges into End: every user predecessor of the terminal vertex must
    // complete before the program does.
    for &u in dag.preds(dag.end()) {
        if let Some(iu) = space.op_of_vertex(u).and_then(|op| item_of_op[op]) {
            edges.push((iu, usize::MAX, format!("{} -> End", dag.vertex(u).name)));
        }
    }
    edges
}

/// Which dependency edges the given happens-before order covers.
pub(crate) fn coverage(
    schedule: &Schedule,
    hb: &HbGraph,
    edges: &[(usize, usize, String)],
) -> Vec<bool> {
    let n = schedule.items.len();
    // "Program end" is the completion of a final DeviceSync; without one,
    // nothing bounds still-running device work.
    let end_node = schedule
        .items
        .last()
        .filter(|item| item.action == ScheduleAction::DeviceSync)
        .map(|_| end(n - 1));
    edges
        .iter()
        .map(|&(iu, iv, _)| {
            if iv == usize::MAX {
                match end_node {
                    Some(e) => end(iu) == e || hb.reaches(end(iu), e),
                    None => false,
                }
            } else {
                hb.reaches(end(iu), start(iv))
            }
        })
        .collect()
}

/// Verifies that the schedule's happens-before order covers every DAG
/// dependency edge; each uncovered edge is one `HB001` race diagnostic.
pub fn verify_happens_before(space: &DecisionSpace, schedule: &Schedule) -> Vec<Diagnostic> {
    let (item_of_op, mut diags) = map_ops(space, schedule);
    let build = build_hb(schedule, |_, _| true);
    diags.extend(build.diags);
    let edges = dependency_edges(space, &item_of_op);
    let covered = coverage(schedule, &build.hb, &edges);
    for ((iu, iv, name), ok) in edges.iter().zip(&covered) {
        if !ok {
            let items = if *iv == usize::MAX {
                vec![*iu]
            } else {
                vec![*iu, *iv]
            };
            diags.push(
                Diagnostic::new(
                    RuleCode::Hb001,
                    format!("dependency {name} is not enforced by any synchronization"),
                )
                .with_items(items),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{build_schedule, CostKey, DagBuilder, OpSpec, ScheduledItem};

    fn two_kernel_space() -> DecisionSpace {
        let mut b = DagBuilder::new();
        let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
        let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
        b.edge(g1, g2);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    #[test]
    fn same_stream_fifo_covers_the_edge() {
        let sp = two_kernel_space();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(0))])
            .unwrap();
        let s = build_schedule(&sp, &t);
        assert!(verify_happens_before(&sp, &s).is_empty());
    }

    #[test]
    fn cross_stream_glue_covers_the_edge() {
        let sp = two_kernel_space();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(1))])
            .unwrap();
        let s = build_schedule(&sp, &t);
        assert!(verify_happens_before(&sp, &s).is_empty());
    }

    #[test]
    fn dropping_the_stream_wait_is_a_race() {
        let sp = two_kernel_space();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(1))])
            .unwrap();
        let mut s = build_schedule(&sp, &t);
        s.items
            .retain(|item| !matches!(item.action, ScheduleAction::StreamWaitEvent { .. }));
        let diags = verify_happens_before(&sp, &s);
        assert!(diags.iter().any(|d| d.code == RuleCode::Hb001), "{diags:?}");
    }

    #[test]
    fn wait_before_record_is_flagged() {
        let sp = two_kernel_space();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(1))])
            .unwrap();
        let mut s = build_schedule(&sp, &t);
        // Swap the glued record and the stream wait: the wait now resolves
        // to nothing.
        let rec = s
            .items
            .iter()
            .position(|i| matches!(i.action, ScheduleAction::EventRecord { .. }))
            .unwrap();
        let wait = s
            .items
            .iter()
            .position(|i| matches!(i.action, ScheduleAction::StreamWaitEvent { .. }))
            .unwrap();
        s.items.swap(rec, wait);
        let diags = verify_happens_before(&sp, &s);
        assert!(diags.iter().any(|d| d.code == RuleCode::Hb002), "{diags:?}");
    }

    #[test]
    fn missing_decision_op_is_flagged() {
        let sp = two_kernel_space();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(0))])
            .unwrap();
        let mut s = build_schedule(&sp, &t);
        s.items.retain(|item| item.name != "g2");
        let diags = verify_happens_before(&sp, &s);
        assert!(
            diags.iter().any(|d| d.code == RuleCode::Sched001),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_final_device_sync_breaks_end_edges() {
        let sp = two_kernel_space();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(0))])
            .unwrap();
        let mut s = build_schedule(&sp, &t);
        s.items.pop();
        let diags = verify_happens_before(&sp, &s);
        assert!(
            diags
                .iter()
                .any(|d| d.code == RuleCode::Hb001 && d.message.contains("End")),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_range_ids_are_flagged() {
        let sp = two_kernel_space();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(1))])
            .unwrap();
        let mut s = build_schedule(&sp, &t);
        s.items.insert(
            0,
            ScheduledItem {
                name: "bogus".into(),
                action: ScheduleAction::EventRecord {
                    event: 99,
                    stream: 0,
                },
                source: None,
            },
        );
        let diags = verify_happens_before(&sp, &s);
        assert!(
            diags.iter().any(|d| d.code == RuleCode::Sched002),
            "{diags:?}"
        );
    }

    #[test]
    fn reachability_is_transitive_over_host_order() {
        let sp = two_kernel_space();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(0))])
            .unwrap();
        let s = build_schedule(&sp, &t);
        let build = build_hb(&s, |_, _| true);
        let n = s.items.len();
        // The first issue reaches every later node.
        for node in 1..3 * n {
            assert!(build.hb.reaches(issue(0), node), "issue(0) -/-> {node}");
        }
    }
}
