//! Communication topology: the per-rank message patterns the deadlock
//! detector matches against.
//!
//! The lint crate is deliberately independent of the simulator, so it
//! carries its own minimal mirror of the workload's communication facts:
//! for each [`CommKey`], who each rank sends to and receives from (and
//! how many bytes), plus the platform's eager threshold (a rendezvous
//! send blocks in `WaitSends` until the peer posts its receives; an
//! eager send never does).

use dr_dag::CommKey;
use std::collections::{BTreeMap, BTreeSet};

/// One rank's point-to-point traffic under one communication key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankTraffic {
    /// `(peer, bytes)` for each message the rank sends.
    pub sends: Vec<(usize, u64)>,
    /// `(peer, bytes)` for each message the rank receives.
    pub recvs: Vec<(usize, u64)>,
}

/// Per-key, per-rank communication patterns for an SPMD program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommTopology {
    num_ranks: usize,
    eager_threshold: Option<u64>,
    table: BTreeMap<CommKey, Vec<RankTraffic>>,
    lost: BTreeSet<(CommKey, usize, usize)>,
}

impl CommTopology {
    /// Creates an empty topology over `num_ranks` ranks with no eager
    /// threshold (every send treated as rendezvous — the conservative
    /// choice for deadlock detection).
    pub fn new(num_ranks: usize) -> Self {
        CommTopology {
            num_ranks,
            eager_threshold: None,
            table: BTreeMap::new(),
            lost: BTreeSet::new(),
        }
    }

    /// Sets the eager threshold: messages of at most `bytes` complete
    /// their sends without waiting for the receiver.
    pub fn with_eager_threshold(mut self, bytes: u64) -> Self {
        self.eager_threshold = Some(bytes);
        self
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Whether a message of this size is sent eagerly. With no threshold
    /// configured, nothing is eager.
    pub fn is_eager(&self, bytes: u64) -> bool {
        self.eager_threshold.is_some_and(|t| bytes <= t)
    }

    /// Sets one rank's traffic under `key`.
    ///
    /// # Panics
    ///
    /// Panics when `rank >= num_ranks`.
    pub fn set(
        &mut self,
        key: CommKey,
        rank: usize,
        sends: Vec<(usize, u64)>,
        recvs: Vec<(usize, u64)>,
    ) -> &mut Self {
        assert!(rank < self.num_ranks, "rank {rank} out of range");
        let slots = self
            .table
            .entry(key)
            .or_insert_with(|| vec![RankTraffic::default(); self.num_ranks]);
        slots[rank] = RankTraffic { sends, recvs };
        self
    }

    /// Convenience: every rank sends `bytes` to and receives `bytes` from
    /// every other rank under `key`.
    pub fn all_to_all(&mut self, key: CommKey, bytes: u64) -> &mut Self {
        for rank in 0..self.num_ranks {
            let peers: Vec<(usize, u64)> = (0..self.num_ranks)
                .filter(|&p| p != rank)
                .map(|p| (p, bytes))
                .collect();
            self.set(key.clone(), rank, peers.clone(), peers);
        }
        self
    }

    /// Convenience: a collective where every rank contributes `bytes`
    /// (one send, no recvs — the simulator's collective convention).
    pub fn collective(&mut self, key: CommKey, bytes: u64) -> &mut Self {
        for rank in 0..self.num_ranks {
            self.set(key.clone(), rank, vec![(rank, bytes)], vec![]);
        }
        self
    }

    /// The per-rank traffic table for `key`, `None` when unknown.
    pub fn pattern(&self, key: &CommKey) -> Option<&[RankTraffic]> {
        self.table.get(key).map(Vec::as_slice)
    }

    /// Every key the topology knows about.
    pub fn keys(&self) -> impl Iterator<Item = &CommKey> {
        self.table.keys()
    }

    /// Marks the message `src → dst` under `key` as lost in transit
    /// (chaos-oracle mode): the send is posted but never delivered, so
    /// a wait that depends on its arrival can never complete. Lost
    /// *eager* sends still complete locally at the sender; lost
    /// *rendezvous* sends additionally strand the sender's `WaitSends`.
    pub fn add_lost_send(&mut self, key: CommKey, src: usize, dst: usize) -> &mut Self {
        self.lost.insert((key, src, dst));
        self
    }

    /// Whether the message `src → dst` under `key` was marked lost.
    pub fn is_lost(&self, key: &CommKey, src: usize, dst: usize) -> bool {
        self.lost.contains(&(key.clone(), src, dst))
    }

    /// Whether any message at all was marked lost.
    pub fn has_lost_sends(&self) -> bool {
        !self.lost.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_fills_every_rank() {
        let mut topo = CommTopology::new(3).with_eager_threshold(1024);
        topo.all_to_all(CommKey::new("x"), 4096);
        let pat = topo.pattern(&CommKey::new("x")).unwrap();
        assert_eq!(pat.len(), 3);
        assert_eq!(pat[1].sends, vec![(0, 4096), (2, 4096)]);
        assert_eq!(pat[1].recvs, vec![(0, 4096), (2, 4096)]);
        assert!(!topo.is_eager(4096));
        assert!(topo.is_eager(1024));
    }

    #[test]
    fn no_threshold_means_nothing_is_eager() {
        let topo = CommTopology::new(2);
        assert!(!topo.is_eager(1));
    }

    #[test]
    fn lost_sends_round_trip() {
        let mut topo = CommTopology::new(2);
        assert!(!topo.has_lost_sends());
        topo.add_lost_send(CommKey::new("x"), 0, 1);
        assert!(topo.is_lost(&CommKey::new("x"), 0, 1));
        assert!(!topo.is_lost(&CommKey::new("x"), 1, 0));
        assert!(!topo.is_lost(&CommKey::new("y"), 0, 1));
        assert!(topo.has_lost_sends());
    }
}
