//! Space-level incremental lint: one shared analysis over every
//! schedule of a [`DecisionSpace`].
//!
//! Linting a space cold re-runs every analysis from scratch per
//! schedule, yet schedules sharing a traversal prefix share their entire
//! lowering prefix — and therefore the happens-before state of every
//! prefix item. This module walks the space's prefix tree depth-first
//! with three checkpointed structures growing and rewinding in lockstep:
//!
//! * the incremental lowering ([`dr_dag::ScheduleBuilder`]), pushed and
//!   popped one placement at a time;
//! * an *ancestor-bitset* happens-before representation: per graph node
//!   a bitset of every node that reaches it. All happens-before edges
//!   point from earlier to later items, so each appended item's three
//!   node rows are unions of already-final rows — rows never mutate
//!   after creation, and rewinding is truncation. `a` happens-before
//!   `b` iff bit `a` of `b`'s row is set, exactly the relation the cold
//!   closure answers;
//! * the op→item map feeding dependency-edge coverage.
//!
//! At each leaf only the terminal `End` item is appended (3 node rows),
//! the HB001 verdicts are read off the shared rows, and the deadlock and
//! redundant-sync passes run on the complete schedule buffer — producing
//! a [`LintReport`] bit-identical to [`crate::lint_traversal`], while
//! the happens-before pass expands O(distinct prefix items) node rows
//! instead of O(schedules × items).
//!
//! [`PrefixDeadlockOracle`] adds the static-prune leg: a sound
//! prefix-level test that every completion of a prefix deadlocks, usable
//! both here (skipping provably-deadlocked subtrees) and as an MCTS
//! expansion hook.

use crate::deadlock::detect_deadlocks;
use crate::diag::{Diagnostic, LintReport, RuleCode};
use crate::redundant::find_redundant_syncs;
use crate::topo::CommTopology;
use dr_dag::{
    CommKey, DecisionKind, DecisionSpace, OpId, OpSpec, Placement, Prefix, ScheduleAction,
    ScheduleBuilder, ScheduledItem,
};
use std::collections::BTreeSet;

/// Counters of one space-level lint walk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceLintStats {
    /// Schedules actually linted (leaves visited).
    pub schedules: u64,
    /// True when the walk stopped at the schedule cap.
    pub truncated: bool,
    /// Happens-before node rows expanded by the incremental engine
    /// (three per distinct prefix item, plus three per leaf for the
    /// terminal `End`).
    pub hb_expansions: u64,
    /// Node expansions the cold per-schedule pass would have performed
    /// for the same leaves (three per item per schedule).
    pub cold_hb_expansions: u64,
    /// Subtrees skipped because their prefix is provably deadlocked.
    pub pruned_subtrees: u64,
    /// Subtrees skipped by the caller's prefix filter.
    pub filtered_subtrees: u64,
}

/// Placement filter consulted before each descent of the incremental
/// walk: `(current prefix, candidate placement) -> keep?`. Returning
/// `false` skips the candidate's whole subtree.
pub type PrefixFilter<'a> = &'a mut dyn FnMut(&Prefix, Placement) -> bool;

/// Options of [`lint_space_incremental`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SpaceLintOptions {
    /// Stop after this many schedules (0 = lint the whole space).
    pub max_schedules: u64,
    /// Skip subtrees whose prefix is provably deadlocked (every leaf
    /// under them would report `MPI103`/`MPI104`). Pruned leaves produce
    /// no report, so verdict streams are only bit-identical to the cold
    /// pass when this is off.
    pub prune_deadlocks: bool,
}

/// Lints every schedule of `space` incrementally, invoking `on_leaf`
/// with `(schedule index, prefix, report)` for each leaf in canonical
/// enumeration order — the same order and the same reports as linting
/// [`DecisionSpace::enumerate`] output cold, one schedule at a time.
///
/// `filter` (when given) is consulted before each descent with the
/// current prefix and the candidate placement; returning `false` skips
/// that subtree (used to restrict the walk to schedules satisfying a
/// rule set). Leaf indices count visited leaves.
pub fn lint_space_incremental(
    space: &DecisionSpace,
    topo: Option<&CommTopology>,
    opts: SpaceLintOptions,
    mut filter: Option<PrefixFilter<'_>>,
    on_leaf: &mut dyn FnMut(u64, &Prefix, &LintReport),
) -> SpaceLintStats {
    let oracle = (opts.prune_deadlocks && topo.is_some())
        .then(|| PrefixDeadlockOracle::new(space, topo.expect("checked").clone()));
    let mut engine = Engine {
        space,
        topo,
        builder: ScheduleBuilder::new(space),
        hb: IncrementalHb::new(max_items_bound(space)),
        edges: static_dependency_edges(space),
        item_of_op: vec![None; space.num_ops()],
        oracle,
        stats: SpaceLintStats::default(),
        max_schedules: opts.max_schedules,
    };
    let mut prefix = space.empty_prefix();
    engine.walk(&mut prefix, &mut filter, on_leaf);
    engine.stats
}

/// Upper bound on the items of any schedule of `space`: one main item
/// per op, at worst one glued record plus one stream wait per GPU
/// predecessor edge, plus the terminal `End`.
fn max_items_bound(space: &DecisionSpace) -> usize {
    let dag = space.dag();
    let mut bound = 1; // End
    for d in space.ops() {
        bound += 1;
        if let DecisionKind::Gpu(v) = d.kind {
            bound += 2 * dag.preds(v).len();
        }
    }
    bound
}

/// A dependency edge in terms of decision ops, precomputed in the exact
/// order `hb::dependency_edges` enumerates: `v_op == None` marks an edge
/// into the artificial `End`.
struct StaticEdge {
    u_op: OpId,
    v_op: Option<OpId>,
    name: String,
}

fn static_dependency_edges(space: &DecisionSpace) -> Vec<StaticEdge> {
    let dag = space.dag();
    let mut edges = Vec::new();
    for v in dag.user_vertices() {
        let Some(v_op) = space.op_of_vertex(v) else {
            continue;
        };
        for &u in dag.preds(v) {
            let Some(u_op) = space.op_of_vertex(u) else {
                continue;
            };
            edges.push(StaticEdge {
                u_op,
                v_op: Some(v_op),
                name: format!("{} -> {}", dag.vertex(u).name, dag.vertex(v).name),
            });
        }
    }
    for &u in dag.preds(dag.end()) {
        if let Some(u_op) = space.op_of_vertex(u) {
            edges.push(StaticEdge {
                u_op,
                v_op: None,
                name: format!("{} -> End", dag.vertex(u).name),
            });
        }
    }
    edges
}

struct Engine<'a> {
    space: &'a DecisionSpace,
    topo: Option<&'a CommTopology>,
    builder: ScheduleBuilder<'a>,
    hb: IncrementalHb,
    edges: Vec<StaticEdge>,
    item_of_op: Vec<Option<usize>>,
    oracle: Option<PrefixDeadlockOracle>,
    stats: SpaceLintStats,
    max_schedules: u64,
}

impl Engine<'_> {
    fn capped(&self) -> bool {
        self.max_schedules != 0 && self.stats.schedules >= self.max_schedules
    }

    fn walk(
        &mut self,
        prefix: &mut Prefix,
        filter: &mut Option<PrefixFilter<'_>>,
        on_leaf: &mut dyn FnMut(u64, &Prefix, &LintReport),
    ) {
        if self.capped() {
            self.stats.truncated = true;
            return;
        }
        let elig = self.space.eligible(prefix);
        if elig.is_empty() {
            self.lint_leaf(prefix, on_leaf);
            return;
        }
        for p in elig {
            if self.capped() {
                self.stats.truncated = true;
                return;
            }
            if let Some(f) = filter.as_deref_mut() {
                if !f(prefix, p) {
                    self.stats.filtered_subtrees += 1;
                    continue;
                }
            }
            self.space.apply(prefix, p);
            let range = self.builder.push_step(p);
            let (from, to) = (range.start, range.end);
            for i in from..to {
                // The builder's item buffer is borrowed immutably while
                // the HB state mutates, so split via raw index.
                let item = self.builder.items()[i].clone();
                self.hb.append_item(i, &item, &mut self.stats.hb_expansions);
            }
            debug_assert!(to > from, "every step lowers at least one item");
            self.item_of_op[p.op] = Some(to - 1);
            let pruned = self
                .oracle
                .as_ref()
                .is_some_and(|o| o.provably_deadlocked(prefix));
            if pruned {
                self.stats.pruned_subtrees += 1;
            } else {
                self.walk(prefix, filter, on_leaf);
            }
            self.item_of_op[p.op] = None;
            for _ in from..to {
                self.hb.pop_item();
            }
            self.builder.pop_step();
            self.space.unapply(prefix);
        }
    }

    /// Produces the leaf's [`LintReport`] exactly as the cold
    /// [`crate::lint`] would: HB001 race verdicts from the shared
    /// ancestor rows (the structural `SCHED`/`HB002` diagnostics are
    /// vacuous for schedules produced by our own lowering), then the
    /// deadlock and redundant-sync passes over the complete schedule.
    fn lint_leaf(&mut self, prefix: &Prefix, on_leaf: &mut dyn FnMut(u64, &Prefix, &LintReport)) {
        let end_idx = self.builder.items().len();
        let end_item = ScheduledItem {
            name: "End".into(),
            action: ScheduleAction::DeviceSync,
            source: None,
        };
        self.hb
            .append_item(end_idx, &end_item, &mut self.stats.hb_expansions);

        let mut diags = Vec::new();
        let end_node = end(end_idx);
        for e in &self.edges {
            let iu = self.item_of_op[e.u_op].expect("all ops placed at a leaf");
            let (covered, items) = match e.v_op {
                None => (
                    end(iu) == end_node || self.hb.reaches(end(iu), end_node),
                    vec![iu],
                ),
                Some(v_op) => {
                    let iv = self.item_of_op[v_op].expect("all ops placed at a leaf");
                    (self.hb.reaches(end(iu), start(iv)), vec![iu, iv])
                }
            };
            if !covered {
                diags.push(
                    Diagnostic::new(
                        RuleCode::Hb001,
                        format!(
                            "dependency {} is not enforced by any synchronization",
                            e.name
                        ),
                    )
                    .with_items(items),
                );
            }
        }

        let space = self.space;
        let topo = self.topo;
        let items_with_end = self.builder.with_complete_schedule(|s| {
            if let Some(topo) = topo {
                diags.extend(detect_deadlocks(s, topo));
            }
            diags.extend(find_redundant_syncs(space, s));
            s.items.len()
        });

        let report = LintReport::new(diags);
        let idx = self.stats.schedules;
        self.stats.schedules += 1;
        self.stats.cold_hb_expansions += 3 * items_with_end as u64;
        on_leaf(idx, prefix, &report);
        self.hb.pop_item();
    }
}

fn issue(i: usize) -> usize {
    3 * i
}
fn start(i: usize) -> usize {
    3 * i + 1
}
fn end(i: usize) -> usize {
    3 * i + 2
}

/// Per-item rewind record of [`IncrementalHb`].
struct HbUndo {
    stream_prev: Option<(usize, Option<usize>)>,
    record_prev: Option<(usize, Option<usize>)>,
    device_pushed: bool,
}

/// Checkpointed happens-before state along the current lowering prefix.
///
/// Instead of the cold pass's successor-closure (recomputed per
/// schedule), each of an item's three nodes gets an *ancestor* bitset
/// row: the union of its in-neighbors' rows plus their bits. In-edges
/// only ever come from already-appended nodes, so rows are final at
/// creation and rewinding truncates.
struct IncrementalHb {
    words: usize,
    /// Row-major ancestor bitsets, one row per node, `words` u64 each.
    anc: Vec<u64>,
    nodes: usize,
    /// Per appended item: whether it blocks the host (no stream).
    host_blocking: Vec<bool>,
    last_in_stream: Vec<Option<usize>>,
    latest_record: Vec<Option<usize>>,
    device_items: Vec<usize>,
    undo: Vec<HbUndo>,
}

impl IncrementalHb {
    fn new(max_items: usize) -> Self {
        let words = (3 * max_items).div_ceil(64);
        IncrementalHb {
            words,
            anc: Vec::new(),
            nodes: 0,
            host_blocking: Vec::new(),
            last_in_stream: Vec::new(),
            latest_record: Vec::new(),
            device_items: Vec::new(),
            undo: Vec::new(),
        }
    }

    /// Whether node `from` happens-before node `to` (same strict
    /// relation as the cold `HbGraph::reaches`).
    fn reaches(&self, from: usize, to: usize) -> bool {
        self.anc[to * self.words + from / 64] >> (from % 64) & 1 == 1
    }

    /// Allocates the next node row and returns its index.
    fn push_node(&mut self) -> usize {
        let node = self.nodes;
        self.nodes += 1;
        self.anc.resize(self.nodes * self.words, 0);
        node
    }

    /// Adds edge `from → to` (`from < to`): `to`'s row absorbs `from`'s
    /// row and `from`'s bit.
    fn edge(&mut self, from: usize, to: usize) {
        debug_assert!(from < to, "happens-before edges must point forward");
        let w = self.words;
        let (head, tail) = self.anc.split_at_mut(to * w);
        let src = &head[from * w..from * w + w];
        let dst = &mut tail[..w];
        for (d, s) in dst.iter_mut().zip(src) {
            *d |= *s;
        }
        dst[from / 64] |= 1 << (from % 64);
    }

    /// Appends item `i`'s three nodes, mirroring the cold `build_hb`
    /// edge construction. Items must arrive with consecutive indices and
    /// reference only already-recorded events (true for every schedule
    /// our own lowering produces).
    fn append_item(&mut self, i: usize, item: &ScheduledItem, expansions: &mut u64) {
        debug_assert_eq!(self.nodes, 3 * i, "items must append in order");
        let mut u = HbUndo {
            stream_prev: None,
            record_prev: None,
            device_pushed: false,
        };

        let iss = self.push_node();
        if i > 0 {
            self.edge(issue(i - 1), iss);
            if self.host_blocking[i - 1] {
                self.edge(end(i - 1), iss);
            }
        }

        let stream = match &item.action {
            ScheduleAction::KernelLaunch { stream, .. }
            | ScheduleAction::EventRecord { stream, .. }
            | ScheduleAction::StreamWaitEvent { stream, .. } => Some(*stream),
            _ => None,
        };

        let st = self.push_node();
        self.edge(iss, st);
        if let Some(s) = stream {
            if s >= self.last_in_stream.len() {
                self.last_in_stream.resize(s + 1, None);
            }
            if let Some(prev) = self.last_in_stream[s] {
                self.edge(end(prev), st);
            }
            u.stream_prev = Some((s, self.last_in_stream[s]));
            self.last_in_stream[s] = Some(i);
            self.device_items.push(i);
            u.device_pushed = true;
        }

        let en = self.push_node();
        self.edge(st, en);
        match &item.action {
            ScheduleAction::EventRecord { event, .. } => {
                if *event >= self.latest_record.len() {
                    self.latest_record.resize(event + 1, None);
                }
                u.record_prev = Some((*event, self.latest_record[*event]));
                self.latest_record[*event] = Some(i);
            }
            ScheduleAction::StreamWaitEvent { event, .. } => {
                if let Some(rec) = self.latest_record.get(*event).copied().flatten() {
                    self.edge(end(rec), en);
                }
            }
            ScheduleAction::EventSync { events } => {
                for ev in events {
                    if let Some(rec) = self.latest_record.get(*ev).copied().flatten() {
                        self.edge(end(rec), en);
                    }
                }
            }
            ScheduleAction::DeviceSync => {
                for d in 0..self.device_items.len() {
                    self.edge(end(self.device_items[d]), en);
                }
            }
            _ => {}
        }

        self.host_blocking.push(stream.is_none());
        self.undo.push(u);
        *expansions += 3;
    }

    /// Rewinds the most recent [`IncrementalHb::append_item`].
    fn pop_item(&mut self) {
        let u = self.undo.pop().expect("pop_item on an empty HB state");
        if let Some((s, prev)) = u.stream_prev {
            self.last_in_stream[s] = prev;
        }
        if let Some((ev, prev)) = u.record_prev {
            self.latest_record[ev] = prev;
        }
        if u.device_pushed {
            self.device_items.pop();
        }
        self.host_blocking.pop();
        self.nodes -= 3;
        self.anc.truncate(self.nodes * self.words);
    }
}

/// One communication instruction, by op id (SPMD: every rank executes
/// the same list).
#[derive(Debug, Clone, PartialEq, Eq)]
enum CommAction {
    PostSends(CommKey),
    PostRecvs(CommKey),
    WaitSends(CommKey),
    WaitRecvs(CommKey),
    AllReduce(CommKey),
}

/// Sound prefix-level deadlock certification: decides whether *every*
/// completion of a traversal prefix lints with a deadlock
/// (`MPI103`/`MPI104`), using only prefix-final facts.
///
/// Two legs, mirroring [`detect_deadlocks`]:
///
/// * a placed wait whose `MPI103` condition holds is certain — the
///   "does any matching post exist" facts range over the full op
///   multiset, which every completion places, and lost-message facts
///   are topology-only;
/// * `MPI101` per placed wait is prefix-final (it looks only backward),
///   so the detector's *unsatisfiable* skip-set restricted to the
///   prefix is exact. Running the same round-robin abstract execution
///   over the prefix's comm ops, if at quiescence some rank is blocked
///   and every rank is either blocked or out of comm ops for good (the
///   prefix already contains all of them), then no completion can make
///   progress either — posts only come from advancing ranks — so the
///   full detector quiesces in the same state and reports `MPI104`.
///
/// Both legs imply `LintReport::deadlocks() > 0` for every leaf below
/// the prefix, which is what makes subtree pruning sound.
pub struct PrefixDeadlockOracle {
    topo: CommTopology,
    comm_of_op: Vec<Option<CommAction>>,
    exists_postsends: BTreeSet<CommKey>,
    exists_postrecvs: BTreeSet<CommKey>,
    total_comm: usize,
}

impl PrefixDeadlockOracle {
    /// Builds the oracle for `space` under `topo`.
    pub fn new(space: &DecisionSpace, topo: CommTopology) -> Self {
        let dag = space.dag();
        let mut comm_of_op: Vec<Option<CommAction>> = vec![None; space.num_ops()];
        for (op, d) in space.ops().iter().enumerate() {
            if let DecisionKind::Cpu(v) = d.kind {
                comm_of_op[op] = match &dag.vertex(v).spec {
                    OpSpec::PostSends(c) => Some(CommAction::PostSends(c.clone())),
                    OpSpec::PostRecvs(c) => Some(CommAction::PostRecvs(c.clone())),
                    OpSpec::WaitSends(c) => Some(CommAction::WaitSends(c.clone())),
                    OpSpec::WaitRecvs(c) => Some(CommAction::WaitRecvs(c.clone())),
                    OpSpec::AllReduce(c) => Some(CommAction::AllReduce(c.clone())),
                    _ => None,
                };
            }
        }
        let mut exists_postsends = BTreeSet::new();
        let mut exists_postrecvs = BTreeSet::new();
        let mut total_comm = 0usize;
        for c in comm_of_op.iter().flatten() {
            total_comm += 1;
            match c {
                CommAction::PostSends(k) => {
                    exists_postsends.insert(k.clone());
                }
                CommAction::PostRecvs(k) => {
                    exists_postrecvs.insert(k.clone());
                }
                _ => {}
            }
        }
        PrefixDeadlockOracle {
            topo,
            comm_of_op,
            exists_postsends,
            exists_postrecvs,
            total_comm,
        }
    }

    /// A `WaitSends(c)` that needs a rendezvous handshake no rank ever
    /// posts receives for, or whose rendezvous message is lost, can
    /// never complete — in any completion.
    fn wait_sends_doomed(&self, c: &CommKey) -> bool {
        let Some(pat) = self.topo.pattern(c) else {
            return false;
        };
        let needs_remote_recv = pat
            .iter()
            .any(|t| t.sends.iter().any(|&(_, b)| !self.topo.is_eager(b)));
        if needs_remote_recv && !self.exists_postrecvs.contains(c) {
            return true;
        }
        pat.iter().enumerate().any(|(src, t)| {
            t.sends
                .iter()
                .any(|&(dst, bytes)| !self.topo.is_eager(bytes) && self.topo.is_lost(c, src, dst))
        })
    }

    /// A `WaitRecvs(c)` expecting messages no rank ever sends, or whose
    /// expected message is lost, can never complete.
    fn wait_recvs_doomed(&self, c: &CommKey) -> bool {
        let Some(pat) = self.topo.pattern(c) else {
            return false;
        };
        let expects_data = pat.iter().any(|t| !t.recvs.is_empty());
        if expects_data && !self.exists_postsends.contains(c) {
            return true;
        }
        pat.iter().enumerate().any(|(dst, t)| {
            t.recvs
                .iter()
                .any(|&(src, _)| self.topo.is_lost(c, src, dst))
        })
    }

    /// True when every completion of `prefix` is provably deadlocked.
    pub fn provably_deadlocked(&self, prefix: &Prefix) -> bool {
        let ops: Vec<&CommAction> = prefix
            .steps()
            .iter()
            .filter_map(|p| self.comm_of_op[p.op].as_ref())
            .collect();
        let ranks = self.topo.num_ranks();
        if ops.is_empty() || ranks == 0 {
            return false;
        }
        let n = ops.len();

        // Unsatisfiable waits are skipped by the detector (it reports
        // them as MPI101/MPI103 instead of blocking); a certain MPI103
        // alone already dooms every completion.
        let mut unsat = vec![false; n];
        for (j, op) in ops.iter().enumerate() {
            match op {
                CommAction::WaitSends(c) => {
                    if self.wait_sends_doomed(c) {
                        return true;
                    }
                    unsat[j] = !ops[..j]
                        .iter()
                        .any(|o| matches!(o, CommAction::PostSends(k) if k == c));
                }
                CommAction::WaitRecvs(c) => {
                    if self.wait_recvs_doomed(c) {
                        return true;
                    }
                    unsat[j] = !ops[..j]
                        .iter()
                        .any(|o| matches!(o, CommAction::PostRecvs(k) if k == c));
                }
                _ => {}
            }
        }

        // Round-robin abstract execution of the prefix, mirroring the
        // detector's semantics exactly.
        let mut pc = vec![0usize; ranks];
        let mut posted_sends: Vec<BTreeSet<&CommKey>> = vec![BTreeSet::new(); ranks];
        let mut posted_recvs: Vec<BTreeSet<&CommKey>> = vec![BTreeSet::new(); ranks];
        let blocked = |rank: usize,
                       pc: &[usize],
                       posted_sends: &[BTreeSet<&CommKey>],
                       posted_recvs: &[BTreeSet<&CommKey>]|
         -> bool {
            if unsat[pc[rank]] {
                return false;
            }
            match ops[pc[rank]] {
                CommAction::WaitRecvs(c) => match self.topo.pattern(c) {
                    Some(pat) => pat[rank]
                        .recvs
                        .iter()
                        .map(|&(peer, _)| peer)
                        .any(|peer| peer < ranks && !posted_sends[peer].contains(c)),
                    None => false,
                },
                CommAction::WaitSends(c) => match self.topo.pattern(c) {
                    Some(pat) => pat[rank]
                        .sends
                        .iter()
                        .filter(|&&(_, bytes)| !self.topo.is_eager(bytes))
                        .map(|&(peer, _)| peer)
                        .any(|peer| peer < ranks && !posted_recvs[peer].contains(c)),
                    None => false,
                },
                CommAction::AllReduce(_) => (0..ranks).any(|p| pc[p] < pc[rank]),
                _ => false,
            }
        };
        loop {
            let mut progressed = false;
            for rank in 0..ranks {
                while pc[rank] < n {
                    if blocked(rank, &pc, &posted_sends, &posted_recvs) {
                        break;
                    }
                    match ops[pc[rank]] {
                        CommAction::PostSends(c) => {
                            posted_sends[rank].insert(c);
                        }
                        CommAction::PostRecvs(c) => {
                            posted_recvs[rank].insert(c);
                        }
                        _ => {}
                    }
                    pc[rank] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        let stuck = (0..ranks).filter(|&r| pc[r] < n).count();
        // Sound only when no rank can ever act again: all ranks blocked,
        // or the prefix already contains every comm op (finished ranks
        // are finished for good).
        stuck > 0 && (stuck == ranks || n == self.total_comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_traversal;
    use dr_dag::{CostKey, DagBuilder, Traversal};

    /// The canonical exchange: post sends/recvs, waits, plus a kernel to
    /// widen the space.
    fn exchange_space() -> DecisionSpace {
        let key = CommKey::new("x");
        let mut b = DagBuilder::new();
        let ps = b.add("ps", OpSpec::PostSends(key.clone()));
        let pr = b.add("pr", OpSpec::PostRecvs(key.clone()));
        let ws = b.add("ws", OpSpec::WaitSends(key.clone()));
        let wr = b.add("wr", OpSpec::WaitRecvs(key));
        let g = b.add("g", OpSpec::GpuKernel(CostKey::new("g")));
        b.edge(ps, ws);
        b.edge(pr, wr);
        b.edge(ps, wr);
        b.edge(g, wr);
        DecisionSpace::new(b.build().unwrap(), 2).unwrap()
    }

    fn topo(bytes: u64) -> CommTopology {
        let mut t = CommTopology::new(2).with_eager_threshold(1024);
        t.all_to_all(CommKey::new("x"), bytes);
        t
    }

    #[test]
    fn incremental_reports_match_cold_lint_bit_for_bit() {
        let sp = exchange_space();
        let topo = topo(1 << 20); // rendezvous: some orders deadlock
        let traversals: Vec<Traversal> = sp.enumerate().collect();
        let mut i = 0usize;
        let stats = lint_space_incremental(
            &sp,
            Some(&topo),
            SpaceLintOptions::default(),
            None,
            &mut |idx, prefix, report| {
                assert_eq!(idx as usize, i);
                let t = Traversal {
                    steps: prefix.steps().to_vec(),
                };
                assert_eq!(t, traversals[i], "leaf order must match enumeration");
                let cold = lint_traversal(&sp, &t, Some(&topo));
                assert_eq!(
                    report.diagnostics, cold.diagnostics,
                    "schedule #{i} diverged"
                );
                i += 1;
            },
        );
        assert_eq!(stats.schedules as usize, traversals.len());
        assert!(
            stats.hb_expansions < stats.cold_hb_expansions,
            "prefix sharing must beat the cold pass: {} vs {}",
            stats.hb_expansions,
            stats.cold_hb_expansions
        );
    }

    #[test]
    fn max_schedules_truncates_the_walk() {
        let sp = exchange_space();
        let topo = topo(512);
        let mut seen = 0u64;
        let stats = lint_space_incremental(
            &sp,
            Some(&topo),
            SpaceLintOptions {
                max_schedules: 3,
                ..Default::default()
            },
            None,
            &mut |_, _, _| seen += 1,
        );
        assert_eq!(seen, 3);
        assert_eq!(stats.schedules, 3);
        assert!(stats.truncated);
    }

    #[test]
    fn prefix_filter_restricts_the_walk() {
        let sp = exchange_space();
        let topo = topo(512);
        let ws = sp.op_by_name("ws").unwrap();
        // Forbid placing `ws` as long as `pr` is unplaced: every visited
        // leaf must order pr before ws.
        let pr = sp.op_by_name("pr").unwrap();
        let mut filter = |prefix: &Prefix, p: Placement| p.op != ws || prefix.is_placed(pr);
        let mut total = 0u64;
        let stats = lint_space_incremental(
            &sp,
            Some(&topo),
            SpaceLintOptions::default(),
            Some(&mut filter),
            &mut |_, prefix, _| {
                let pos_pr = prefix.steps().iter().position(|s| s.op == pr).unwrap();
                let pos_ws = prefix.steps().iter().position(|s| s.op == ws).unwrap();
                assert!(pos_pr < pos_ws);
                total += 1;
            },
        );
        assert!(total > 0);
        assert!(stats.filtered_subtrees > 0);
        assert!(total < sp.count_traversals() as u64);
    }

    #[test]
    fn oracle_agrees_with_cold_verdicts_under_rendezvous() {
        let sp = exchange_space();
        let topo = topo(1 << 20);
        let oracle = PrefixDeadlockOracle::new(&sp, topo.clone());
        // At every complete traversal the oracle's prefix verdict must be
        // sound: oracle-true implies the cold report deadlocks.
        let mut oracle_fired = false;
        for t in sp.enumerate() {
            let mut prefix = sp.empty_prefix();
            let mut flagged = false;
            for &p in &t.steps {
                sp.apply(&mut prefix, p);
                if oracle.provably_deadlocked(&prefix) {
                    flagged = true;
                    break;
                }
            }
            let cold = lint_traversal(&sp, &t, Some(&topo));
            if flagged {
                oracle_fired = true;
                assert!(
                    cold.deadlocks() > 0,
                    "oracle flagged a clean schedule: {}",
                    cold.render_text()
                );
            }
        }
        assert!(oracle_fired, "rendezvous misorders must be caught");
    }

    #[test]
    fn pruned_walk_skips_exactly_the_deadlocked_leaves() {
        let sp = exchange_space();
        let topo = topo(1 << 20);
        // Cold ground truth.
        let mut clean = 0u64;
        let mut deadlocked = 0u64;
        for t in sp.enumerate() {
            if lint_traversal(&sp, &t, Some(&topo)).deadlocks() > 0 {
                deadlocked += 1;
            } else {
                clean += 1;
            }
        }
        assert!(deadlocked > 0);
        let mut visited_deadlocks = 0u64;
        let mut visited = 0u64;
        let stats = lint_space_incremental(
            &sp,
            Some(&topo),
            SpaceLintOptions {
                prune_deadlocks: true,
                ..Default::default()
            },
            None,
            &mut |_, _, report| {
                visited += 1;
                if report.deadlocks() > 0 {
                    visited_deadlocks += 1;
                }
            },
        );
        assert!(stats.pruned_subtrees > 0, "pruning must engage");
        assert!(visited >= clean, "pruning must never skip a clean leaf");
        assert!(
            visited < clean + deadlocked,
            "pruning must skip some deadlocked leaves"
        );
        assert_eq!(visited - clean, visited_deadlocks);
    }

    #[test]
    fn oracle_ignores_clean_eager_prefixes() {
        let sp = exchange_space();
        let topo = topo(512); // eager: nothing deadlocks
        let oracle = PrefixDeadlockOracle::new(&sp, topo);
        for t in sp.enumerate().take(32) {
            let mut prefix = sp.empty_prefix();
            for &p in &t.steps {
                sp.apply(&mut prefix, p);
                assert!(!oracle.provably_deadlocked(&prefix));
            }
        }
    }
}
