//! # dr-lint — static analysis of lowered CUDA+MPI schedules
//!
//! The exploration pipeline trusts that every traversal of the program
//! DAG lowers to a *correct* implementation and only asks which ones are
//! *fast*. This crate is the independent checker of that trust: it
//! analyzes a [`DecisionSpace`] plus a lowered [`Schedule`] without
//! running the simulator.
//!
//! Three analyses:
//!
//! * **Happens-before verification** ([`verify_happens_before`]) —
//!   reconstructs the partial order induced by host issue order, stream
//!   FIFO order, and `EventRecord` / `StreamWaitEvent` / `EventSync` /
//!   `DeviceSync`, then checks that every DAG dependency edge is covered.
//!   Uncovered edges are races (`HB001`); waits on never-recorded events
//!   are `HB002`.
//! * **MPI deadlock detection** ([`detect_deadlocks`]) — matches posted
//!   sends/receives across ranks from a [`CommTopology`] and abstractly
//!   executes the blocking actions (`WaitSends`/`WaitRecvs`/`AllReduce`)
//!   round-robin to quiescence; unmatched or cyclically-blocked
//!   communication is `MPI101`–`MPI107`.
//! * **Redundant-sync analysis** ([`find_redundant_syncs`]) — finds sync
//!   effects whose removal leaves dependency-edge coverage unchanged
//!   (`RS001`–`RS004`): pure overhead, and prime design-rule material.
//!
//! Diagnostics carry a stable [`RuleCode`], a [`Severity`], the offending
//! schedule items and decision ops, and render as text or JSON.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod autofix;
mod deadlock;
mod diag;
mod hb;
mod redundant;
mod shrink;
mod space;
mod topo;

pub use autofix::{apply_edits, synthesize_fix, Fix, FixEdit};
pub use deadlock::detect_deadlocks;
pub use diag::{
    AggregatedDiag, DiagAggregator, Diagnostic, LintCounters, LintReport, RuleCode, Severity,
};
pub use hb::verify_happens_before;
pub use redundant::find_redundant_syncs;
pub use shrink::{shrink_diagnostic, Shrunk};
pub use space::{lint_space_incremental, PrefixDeadlockOracle, SpaceLintOptions, SpaceLintStats};
pub use topo::{CommTopology, RankTraffic};

use dr_dag::{build_schedule, DecisionSpace, Schedule, Traversal};

/// Runs every analysis over one lowered schedule.
///
/// Pass a [`CommTopology`] to enable deadlock detection; without one only
/// the happens-before and redundancy analyses run (the schedule's MPI
/// actions cannot be matched across ranks).
pub fn lint(space: &DecisionSpace, schedule: &Schedule, topo: Option<&CommTopology>) -> LintReport {
    let mut diags = verify_happens_before(space, schedule);
    if let Some(topo) = topo {
        diags.extend(detect_deadlocks(schedule, topo));
    }
    diags.extend(find_redundant_syncs(space, schedule));
    LintReport::new(diags)
}

/// Validates `t` against `space`, lowers it, and lints the result.
///
/// Invalid traversals produce a single `SCHED003` error instead of a
/// panic, so untrusted input is safe to feed in.
pub fn lint_traversal(
    space: &DecisionSpace,
    t: &Traversal,
    topo: Option<&CommTopology>,
) -> LintReport {
    if let Err(e) = space.validate(t) {
        return LintReport::new(vec![Diagnostic::new(
            RuleCode::Sched003,
            format!("invalid traversal: {e}"),
        )]);
    }
    lint(space, &build_schedule(space, t), topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{CommKey, CostKey, DagBuilder, OpSpec};

    /// The canonical exchange program: post sends/recvs, kernels, waits.
    fn exchange_space() -> DecisionSpace {
        let key = CommKey::new("x");
        let mut b = DagBuilder::new();
        let ps = b.add("ps", OpSpec::PostSends(key.clone()));
        let pr = b.add("pr", OpSpec::PostRecvs(key.clone()));
        let ws = b.add("ws", OpSpec::WaitSends(key.clone()));
        let wr = b.add("wr", OpSpec::WaitRecvs(key));
        b.edge(ps, ws);
        b.edge(pr, wr);
        b.edge(ps, wr);
        DecisionSpace::new(b.build().unwrap(), 1).unwrap()
    }

    fn topo(bytes: u64) -> CommTopology {
        let mut t = CommTopology::new(2).with_eager_threshold(1024);
        t.all_to_all(CommKey::new("x"), bytes);
        t
    }

    #[test]
    fn every_exchange_traversal_lints_clean_with_eager_messages() {
        let sp = exchange_space();
        let topo = topo(512);
        for t in sp.enumerate() {
            let report = lint_traversal(&sp, &t, Some(&topo));
            assert!(report.is_clean(), "{t:?}: {}", report.render_text());
        }
    }

    #[test]
    fn rendezvous_exchange_orders_split_into_clean_and_deadlocked() {
        // With big messages, orders where WaitSends precedes PostRecvs
        // deadlock; the detector must agree with the DAG's freedom.
        let sp = exchange_space();
        let topo = topo(1 << 20);
        let mut clean = 0;
        let mut deadlocked = 0;
        for t in sp.enumerate() {
            let report = lint_traversal(&sp, &t, Some(&topo));
            if report.deadlocks() > 0 {
                deadlocked += 1;
            } else {
                assert!(report.is_clean(), "{}", report.render_text());
                clean += 1;
            }
        }
        assert!(clean > 0, "some orders post receives before waiting");
        assert!(deadlocked > 0, "some orders wait before the remote post");
    }

    #[test]
    fn invalid_traversal_is_sched003_not_a_panic() {
        let sp = exchange_space();
        let report = lint_traversal(&sp, &Traversal { steps: vec![] }, None);
        assert!(report.has_code(RuleCode::Sched003));
        assert!(!report.is_clean());
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let mut b = DagBuilder::new();
        b.add("g", OpSpec::GpuKernel(CostKey::new("g")));
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.enumerate().next().unwrap();
        let report = lint_traversal(&sp, &t, None);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"diagnostics\":["));
    }
}
