//! Redundant-synchronization analysis.
//!
//! A synchronization effect is *redundant* when removing it leaves the
//! set of covered DAG dependency edges unchanged — the remaining partial
//! order (program order, stream FIFO, the other syncs) already dominates
//! it, so it is pure overhead. Exactly the paper's design-rule material:
//! "this `cudaStreamWaitEvent` buys you nothing here".
//!
//! The analysis is removal-based: rebuild the happens-before graph with
//! one sync effect disabled and compare edge coverage against the
//! baseline. Disabling never *adds* coverage, so equality means the
//! effect was dominated.

use crate::diag::{Diagnostic, RuleCode};
use crate::hb::{build_hb, coverage, dependency_edges, map_ops};
use dr_dag::{DecisionSpace, Schedule, ScheduleAction};

/// Finds synchronization actions dominated by the rest of the partial
/// order: `RS001` (StreamWaitEvent), `RS002` (whole EventSync), `RS003`
/// (single event within an EventSync), `RS004` (unconsumed EventRecord).
pub fn find_redundant_syncs(space: &DecisionSpace, schedule: &Schedule) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let (item_of_op, _) = map_ops(space, schedule);
    let edges = dependency_edges(space, &item_of_op);
    let baseline_build = build_hb(schedule, |_, _| true);
    let baseline = coverage(schedule, &baseline_build.hb, &edges);

    let same_without = |disabled: &dyn Fn(usize, usize) -> bool| -> bool {
        let build = build_hb(schedule, |item, ev| !disabled(item, ev));
        coverage(schedule, &build.hb, &edges) == baseline
    };

    for (i, item) in schedule.items.iter().enumerate() {
        match &item.action {
            ScheduleAction::StreamWaitEvent { event, .. } if same_without(&|item, _| item == i) => {
                diags.push(
                    Diagnostic::new(
                        RuleCode::Rs001,
                        format!(
                            "StreamWaitEvent {:?} (event {event}) is dominated by the \
                             existing partial order",
                            item.name
                        ),
                    )
                    .with_items(vec![i]),
                );
            }
            ScheduleAction::EventSync { events } => {
                let mut distinct = events.clone();
                distinct.sort_unstable();
                distinct.dedup();
                if same_without(&|item, _| item == i) {
                    diags.push(
                        Diagnostic::new(
                            RuleCode::Rs002,
                            format!(
                                "EventSync {:?} is wholly dominated by the existing \
                                 partial order",
                                item.name
                            ),
                        )
                        .with_items(vec![i]),
                    );
                } else {
                    for &ev in &distinct {
                        if same_without(&|item, e| item == i && e == ev) {
                            diags.push(
                                Diagnostic::new(
                                    RuleCode::Rs003,
                                    format!("event {ev} in EventSync {:?} is redundant", item.name),
                                )
                                .with_items(vec![i]),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    for (i, used) in baseline_build.used_records.iter().enumerate() {
        if matches!(schedule.items[i].action, ScheduleAction::EventRecord { .. }) && !used {
            diags.push(
                Diagnostic::new(
                    RuleCode::Rs004,
                    format!(
                        "EventRecord {:?} is never consumed by a wait or sync",
                        schedule.items[i].name
                    ),
                )
                .with_items(vec![i]),
            );
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{build_schedule, CostKey, DagBuilder, OpSpec, ScheduledItem};

    /// Two same-stream GPU preds feeding one CPU op: the CES must sync
    /// two events, but stream FIFO makes the earlier one redundant.
    #[test]
    fn same_stream_double_sync_has_a_redundant_event() {
        let mut b = DagBuilder::new();
        let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
        let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(g1, c);
        b.edge(g2, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[
                ("g1", Some(0)),
                ("CER-after-g1", None),
                ("g2", Some(0)),
                ("CER-after-g2", None),
                ("CES-b4-c", None),
                ("c", None),
            ])
            .unwrap();
        let s = build_schedule(&sp, &t);
        let diags = find_redundant_syncs(&sp, &s);
        assert!(
            diags.iter().any(|d| d.code == RuleCode::Rs003),
            "the g1 event is dominated via stream-0 FIFO: {diags:?}"
        );
        // Not the whole sync: dropping both events would uncover g2 -> c.
        assert!(!diags.iter().any(|d| d.code == RuleCode::Rs002));
    }

    /// Cross-stream preds on distinct streams: both events needed.
    #[test]
    fn cross_stream_double_sync_is_not_redundant() {
        let mut b = DagBuilder::new();
        let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
        let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(g1, c);
        b.edge(g2, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[
                ("g1", Some(0)),
                ("CER-after-g1", None),
                ("g2", Some(1)),
                ("CER-after-g2", None),
                ("CES-b4-c", None),
                ("c", None),
            ])
            .unwrap();
        let s = build_schedule(&sp, &t);
        let diags = find_redundant_syncs(&sp, &s);
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// An injected no-op StreamWaitEvent duplicating same-stream FIFO.
    #[test]
    fn dominated_stream_wait_is_rs001() {
        let mut b = DagBuilder::new();
        let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
        let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
        b.edge(g1, g2);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(0))])
            .unwrap();
        let mut s = build_schedule(&sp, &t);
        // Hand-insert record + wait on the same stream: FIFO already
        // orders g1 before g2, so the wait is pure overhead.
        let g2_at = s.items.iter().position(|i| i.name == "g2").unwrap();
        let event = s.num_events;
        s.num_events += 1;
        s.items.insert(
            g2_at,
            ScheduledItem {
                name: "CER-after-g1(extra)".into(),
                action: ScheduleAction::EventRecord { event, stream: 0 },
                source: None,
            },
        );
        s.items.insert(
            g2_at + 1,
            ScheduledItem {
                name: "CSWE-b4-g2(extra)".into(),
                action: ScheduleAction::StreamWaitEvent { stream: 0, event },
                source: None,
            },
        );
        let diags = find_redundant_syncs(&sp, &s);
        assert!(diags.iter().any(|d| d.code == RuleCode::Rs001), "{diags:?}");
    }

    #[test]
    fn unused_record_is_rs004() {
        let mut b = DagBuilder::new();
        b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let t = sp.traversal_from_names(&[("g1", Some(0))]).unwrap();
        let mut s = build_schedule(&sp, &t);
        let event = s.num_events;
        s.num_events += 1;
        s.items.insert(
            1,
            ScheduledItem {
                name: "CER-after-g1(orphan)".into(),
                action: ScheduleAction::EventRecord { event, stream: 0 },
                source: None,
            },
        );
        let diags = find_redundant_syncs(&sp, &s);
        assert!(diags.iter().any(|d| d.code == RuleCode::Rs004), "{diags:?}");
    }

    /// The natural lowering of a necessary cross-stream dependency has no
    /// redundant synchronization at all.
    #[test]
    fn necessary_glue_is_silent() {
        let mut b = DagBuilder::new();
        let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
        let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
        b.edge(g1, g2);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(1))])
            .unwrap();
        let s = build_schedule(&sp, &t);
        let diags = find_redundant_syncs(&sp, &s);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
