//! Counterexample shrinking: delta-debug a diagnostic down to a minimal
//! reproducing schedule.
//!
//! A space-level lint run can hand back a diagnostic anchored in a
//! schedule dozens of items long, most of which are irrelevant to the
//! defect. [`shrink_diagnostic`] applies the classic `ddmin` algorithm
//! over the schedule's item list: repeatedly drop chunks of items (at
//! doubling granularity) while the target diagnostic still reproduces
//! under a full re-lint, converging to a *1-minimal* item subsequence —
//! removing any single further item makes the diagnostic disappear.
//!
//! Item indices shift as items are dropped, so diagnostics are matched
//! *modulo indices*: same rule code and same offending item **names**
//! (plus the same decision ops); diagnostics with no item anchors
//! compare by message. Lint is total on arbitrary item subsequences
//! (missing ops surface as `SCHED001`, dangling waits as `HB002`), which
//! is what makes the reduction predicate safe to evaluate.

use crate::diag::{Diagnostic, LintReport};
use crate::topo::CommTopology;
use dr_dag::{DecisionSpace, Schedule};

/// Result of shrinking one diagnostic.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimal reproducing schedule (a subsequence of the input's
    /// items, with event/stream declarations preserved).
    pub schedule: Schedule,
    /// Indices into the *original* schedule of the items kept.
    pub kept: Vec<usize>,
    /// Re-lint invocations spent converging.
    pub lints: u64,
}

/// A stable identity of a diagnostic that survives item reindexing:
/// rule code, offending item names, decision ops, and — only when no
/// item anchors exist — the message.
pub(crate) fn signature(
    schedule: &Schedule,
    d: &Diagnostic,
) -> (String, Vec<String>, Vec<usize>, String) {
    let names = d
        .items
        .iter()
        .map(|&i| {
            schedule
                .items
                .get(i)
                .map(|it| it.name.clone())
                .unwrap_or_default()
        })
        .collect();
    let message = if d.items.is_empty() {
        d.message.clone()
    } else {
        String::new()
    };
    (d.code.as_str().to_string(), names, d.ops.clone(), message)
}

/// Whether `report` (from linting `schedule`) still contains the target.
pub(crate) fn reproduces(
    target: &(String, Vec<String>, Vec<usize>, String),
    schedule: &Schedule,
    report: &LintReport,
) -> bool {
    report
        .diagnostics
        .iter()
        .any(|d| signature(schedule, d) == *target)
}

/// Shrinks `diag` (previously produced by linting `schedule`) to a
/// 1-minimal reproducing sub-schedule via `ddmin`, always keeping the
/// diagnostic's own anchor items. Returns `None` when the diagnostic
/// does not reproduce on the input schedule in the first place.
pub fn shrink_diagnostic(
    space: &DecisionSpace,
    schedule: &Schedule,
    topo: Option<&CommTopology>,
    diag: &Diagnostic,
) -> Option<Shrunk> {
    let target = signature(schedule, diag);
    let mut lints = 0u64;
    let mut check = |kept: &[usize]| -> Option<Schedule> {
        let reduced = Schedule {
            items: kept.iter().map(|&i| schedule.items[i].clone()).collect(),
            num_events: schedule.num_events,
            num_streams: schedule.num_streams,
        };
        lints += 1;
        let report = crate::lint(space, &reduced, topo);
        reproduces(&target, &reduced, &report).then_some(reduced)
    };

    let mandatory: Vec<usize> = {
        let mut m: Vec<usize> = diag
            .items
            .iter()
            .copied()
            .filter(|&i| i < schedule.items.len())
            .collect();
        m.sort_unstable();
        m.dedup();
        m
    };
    let assemble = |removable: &[usize]| -> Vec<usize> {
        let mut kept: Vec<usize> = mandatory.iter().chain(removable).copied().collect();
        kept.sort_unstable();
        kept.dedup();
        kept
    };

    let mut removable: Vec<usize> = (0..schedule.items.len())
        .filter(|i| !mandatory.contains(i))
        .collect();
    let mut best = check(&assemble(&removable))?;

    // ddmin: test complements of chunks at doubling granularity.
    let mut n = 2usize;
    while !removable.is_empty() && n <= removable.len().max(2) {
        let chunk = removable.len().div_ceil(n.min(removable.len()));
        let mut reduced_this_round = false;
        let mut lo = 0;
        while lo < removable.len() {
            let hi = (lo + chunk).min(removable.len());
            let complement: Vec<usize> = removable[..lo]
                .iter()
                .chain(&removable[hi..])
                .copied()
                .collect();
            if let Some(s) = check(&assemble(&complement)) {
                best = s;
                removable = complement;
                n = (n.saturating_sub(1)).max(2);
                reduced_this_round = true;
                break;
            }
            lo = hi;
        }
        if !reduced_this_round {
            if n >= removable.len() {
                break;
            }
            n = (2 * n).min(removable.len());
        }
    }

    Some(Shrunk {
        schedule: best,
        kept: assemble(&removable),
        lints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuleCode;
    use dr_dag::{build_schedule, CostKey, DagBuilder, OpSpec};

    /// Two dependent GPU kernels plus a pile of independent ones, forced
    /// onto different streams to race.
    fn racy_case() -> (DecisionSpace, Schedule, Diagnostic) {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let c = b.add("c", OpSpec::GpuKernel(CostKey::new("c")));
        for name in ["x1", "x2", "x3", "x4"] {
            b.add(name, OpSpec::GpuKernel(CostKey::new(name)));
        }
        b.edge(a, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        // The lowering glues a StreamWaitEvent whenever a and c land on
        // different streams; stripping it manufactures the race.
        for t in sp.enumerate() {
            let mut s = build_schedule(&sp, &t);
            let before = s.items.len();
            s.items.retain(|it| !it.name.contains("CSWE"));
            if s.items.len() == before {
                continue; // same-stream order: nothing glued, no race
            }
            let report = crate::lint(&sp, &s, None);
            if let Some(d) = report
                .diagnostics
                .iter()
                .find(|d| d.code == RuleCode::Hb001)
            {
                return (sp, s, d.clone());
            }
        }
        unreachable!("two streams admit at least one racy order");
    }

    #[test]
    fn shrinks_a_race_to_its_two_participants() {
        let (sp, s, d) = racy_case();
        let shrunk = shrink_diagnostic(&sp, &s, None, &d).expect("diag reproduces on its input");
        assert!(shrunk.schedule.items.len() < s.items.len());
        // 1-minimality: dropping any kept item kills the diagnostic.
        let target = signature(&s, &d);
        for skip in 0..shrunk.kept.len() {
            let kept: Vec<usize> = shrunk
                .kept
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != skip)
                .map(|(_, &i)| i)
                .collect();
            if d.items.contains(&shrunk.kept[skip]) {
                continue; // anchors are mandatory by construction
            }
            let reduced = Schedule {
                items: kept.iter().map(|&i| s.items[i].clone()).collect(),
                num_events: s.num_events,
                num_streams: s.num_streams,
            };
            let report = crate::lint(&sp, &reduced, None);
            assert!(
                !reproduces(&target, &reduced, &report),
                "dropping item {} should kill the diagnostic",
                shrunk.kept[skip]
            );
        }
        assert!(shrunk.lints > 0);
    }

    #[test]
    fn non_reproducing_diagnostic_is_rejected() {
        let (sp, s, _) = racy_case();
        let bogus = Diagnostic::new(RuleCode::Mpi104, "deadlock: nope");
        assert!(shrink_diagnostic(&sp, &s, None, &bogus).is_none());
    }

    #[test]
    fn deadlock_shrinks_to_the_blocking_wait() {
        let key = dr_dag::CommKey::new("x");
        let mut b = DagBuilder::new();
        b.add("w", OpSpec::CpuWork(CostKey::new("w")));
        b.add("ws", OpSpec::WaitSends(key.clone()));
        b.add("pad", OpSpec::CpuWork(CostKey::new("pad")));
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let mut topo = CommTopology::new(2).with_eager_threshold(16);
        topo.all_to_all(key, 1 << 20);
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let report = crate::lint(&sp, &s, Some(&topo));
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == RuleCode::Mpi103)
            .expect("rendezvous wait with no recv posts is MPI103")
            .clone();
        let shrunk = shrink_diagnostic(&sp, &s, Some(&topo), &d).unwrap();
        assert_eq!(shrunk.schedule.items.len(), 1);
        assert_eq!(shrunk.schedule.items[0].name, "ws");
    }
}
