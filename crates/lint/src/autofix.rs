//! Synchronization autofix: synthesize the minimal schedule edit that
//! repairs a diagnostic, verified by re-lint.
//!
//! Two families of repairs:
//!
//! * **HB001 races** — the dependency `iu → iv` lacks a covering sync.
//!   Candidates are tried cheapest-first: a *single* wait inserted
//!   immediately before `iv` consuming an already-recorded event
//!   (`StreamWaitEvent` when `iv` runs on a stream, `EventSync` when it
//!   blocks the host), then the full pair — a fresh `EventRecord` on
//!   `iu`'s stream right after `iu` plus the matching wait before `iv`.
//! * **RS001/RS002/RS004 redundant syncs** — remove the dominated item;
//!   **RS003** — remove one redundant event from the `EventSync`'s list
//!   (re-derived by trial removal, since the event id lives only in the
//!   diagnostic message).
//!
//! Every candidate is accepted only if a full re-lint of the edited
//! schedule shows the target diagnostic gone with no new errors (for
//! redundancy fixes, also no new warnings net): the synthesizer proposes,
//! the linter disposes. [`synthesize_fix`] returns the first verified
//! candidate together with the fixed schedule.

use crate::diag::{Diagnostic, RuleCode};
use crate::shrink::{reproduces, signature};
use crate::topo::CommTopology;
use dr_dag::{DecisionSpace, EventId, Schedule, ScheduleAction, ScheduledItem};

/// One edit of a schedule's item list, in original-index coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixEdit {
    /// Insert `item` immediately before original index `at` (`at` may be
    /// `items.len()` to append).
    Insert {
        /// Original index the item lands in front of.
        at: usize,
        /// The synchronization instruction to insert.
        item: ScheduledItem,
    },
    /// Remove the item at the original index.
    Remove {
        /// Original index of the removed item.
        index: usize,
    },
    /// Remove every occurrence of `event` from the `EventSync` at the
    /// original index.
    RemoveEvent {
        /// Original index of the `EventSync` item.
        index: usize,
        /// The event to drop from its wait list.
        event: EventId,
    },
}

/// A verified repair: the edits, the resulting schedule, and what the
/// fix does in words.
#[derive(Debug, Clone)]
pub struct Fix {
    /// Edits in original-schedule coordinates.
    pub edits: Vec<FixEdit>,
    /// Events allocated beyond the input schedule's `num_events`.
    pub new_events: usize,
    /// Human-readable summary of the repair.
    pub description: String,
    /// The edited schedule that re-lints without the target diagnostic.
    pub fixed: Schedule,
}

/// Applies `edits` (original-index coordinates) to `schedule`.
pub fn apply_edits(schedule: &Schedule, edits: &[FixEdit], new_events: usize) -> Schedule {
    let n = schedule.items.len();
    let mut items = Vec::with_capacity(n + edits.len());
    for i in 0..=n {
        for e in edits {
            if let FixEdit::Insert { at, item } = e {
                if *at == i {
                    items.push(item.clone());
                }
            }
        }
        if i == n {
            break;
        }
        if edits
            .iter()
            .any(|e| matches!(e, FixEdit::Remove { index } if *index == i))
        {
            continue;
        }
        let mut item = schedule.items[i].clone();
        for e in edits {
            if let FixEdit::RemoveEvent { index, event } = e {
                if *index == i {
                    if let ScheduleAction::EventSync { events } = &mut item.action {
                        events.retain(|ev| ev != event);
                    }
                }
            }
        }
        items.push(item);
    }
    Schedule {
        items,
        num_events: schedule.num_events + new_events,
        num_streams: schedule.num_streams,
    }
}

/// Indices of every `EventRecord` of `event`.
fn records_of(schedule: &Schedule, event: EventId) -> Vec<usize> {
    schedule
        .items
        .iter()
        .enumerate()
        .filter(|(_, it)| {
            matches!(&it.action, ScheduleAction::EventRecord { event: e, .. } if *e == event)
        })
        .map(|(i, _)| i)
        .collect()
}

fn stream_of(item: &ScheduledItem) -> Option<usize> {
    match &item.action {
        ScheduleAction::KernelLaunch { stream, .. }
        | ScheduleAction::EventRecord { stream, .. }
        | ScheduleAction::StreamWaitEvent { stream, .. } => Some(*stream),
        _ => None,
    }
}

/// Builds the wait instruction that makes `iv` observe `event`.
fn wait_before(iv_item: &ScheduledItem, event: EventId) -> ScheduledItem {
    match stream_of(iv_item) {
        Some(stream) => ScheduledItem {
            name: format!("CSWE-b4-{}(fix)", iv_item.name),
            action: ScheduleAction::StreamWaitEvent { stream, event },
            source: None,
        },
        None => ScheduledItem {
            name: format!("CES-b4-{}(fix)", iv_item.name),
            action: ScheduleAction::EventSync {
                events: vec![event],
            },
            source: None,
        },
    }
}

/// Synthesizes and verifies the minimal repair of `diag` on `schedule`.
///
/// Returns `None` when the diagnostic does not reproduce on the input,
/// is of a kind with no mechanical repair (`SCHED*`, `HB002`, `MPI*`),
/// or no candidate edit survives re-lint verification.
pub fn synthesize_fix(
    space: &DecisionSpace,
    schedule: &Schedule,
    topo: Option<&CommTopology>,
    diag: &Diagnostic,
) -> Option<Fix> {
    let baseline = crate::lint(space, schedule, topo);
    let target = signature(schedule, diag);
    if !reproduces(&target, schedule, &baseline) {
        return None;
    }
    let is_error_target = diag.code.severity() == crate::Severity::Error;
    let verify = |edits: &[FixEdit], new_events: usize| -> Option<Schedule> {
        let fixed = apply_edits(schedule, edits, new_events);
        let report = crate::lint(space, &fixed, topo);
        if reproduces(&target, &fixed, &report) {
            return None;
        }
        let ok = if is_error_target {
            report.errors().count() < baseline.errors().count()
        } else {
            // A redundancy fix may legitimately trade its warning for a
            // different one (e.g. dropping a sync orphans a mandatory
            // decision-op record into RS004), but must never regress.
            report.errors().count() <= baseline.errors().count()
                && report.warnings().count() <= baseline.warnings().count()
        };
        ok.then_some(fixed)
    };

    let mut candidates: Vec<(Vec<FixEdit>, usize, String)> = Vec::new();
    match diag.code {
        RuleCode::Hb001 if diag.items.len() == 2 => {
            let (iu, iv) = (diag.items[0], diag.items[1]);
            let iv_item = schedule.items.get(iv)?;
            // Cheapest first: one wait on an already-recorded event.
            for event in 0..schedule.num_events {
                candidates.push((
                    vec![FixEdit::Insert {
                        at: iv,
                        item: wait_before(iv_item, event),
                    }],
                    0,
                    format!(
                        "insert a wait on existing event {event} before {:?}",
                        iv_item.name
                    ),
                ));
            }
            // Full pair: fresh record after iu + wait before iv.
            if let Some(stream) = stream_of(schedule.items.get(iu)?) {
                let event = schedule.num_events;
                candidates.push((
                    vec![
                        FixEdit::Insert {
                            at: iu + 1,
                            item: ScheduledItem {
                                name: format!("CER-after-{}(fix)", schedule.items[iu].name),
                                action: ScheduleAction::EventRecord { event, stream },
                                source: None,
                            },
                        },
                        FixEdit::Insert {
                            at: iv,
                            item: wait_before(iv_item, event),
                        },
                    ],
                    1,
                    format!(
                        "record new event {event} after {:?} and wait on it before {:?}",
                        schedule.items[iu].name, iv_item.name
                    ),
                ));
            }
        }
        RuleCode::Rs001 | RuleCode::Rs002 | RuleCode::Rs004 => {
            let index = *diag.items.first()?;
            let item = schedule.items.get(index)?;
            let waited: Vec<EventId> = match &item.action {
                ScheduleAction::StreamWaitEvent { event, .. } => vec![*event],
                ScheduleAction::EventSync { events } => {
                    let mut d = events.clone();
                    d.sort_unstable();
                    d.dedup();
                    d
                }
                _ => Vec::new(),
            };
            // Removing a wait can orphan the records it consumed; try the
            // cascade that removes those too first (verification rejects
            // it when a record is a mandatory decision-op item).
            let mut cascade = vec![FixEdit::Remove { index }];
            for &ev in &waited {
                for r in records_of(schedule, ev) {
                    cascade.push(FixEdit::Remove { index: r });
                }
            }
            if cascade.len() > 1 {
                candidates.push((
                    cascade,
                    0,
                    format!(
                        "remove dominated sync {:?} and the records it consumed",
                        item.name
                    ),
                ));
            }
            candidates.push((
                vec![FixEdit::Remove { index }],
                0,
                format!("remove dominated sync {:?}", item.name),
            ));
        }
        RuleCode::Rs003 => {
            let index = *diag.items.first()?;
            if let ScheduleAction::EventSync { events } = &schedule.items.get(index)?.action {
                let mut distinct = events.clone();
                distinct.sort_unstable();
                distinct.dedup();
                for event in distinct {
                    let mut cascade = vec![FixEdit::RemoveEvent { index, event }];
                    for r in records_of(schedule, event) {
                        cascade.push(FixEdit::Remove { index: r });
                    }
                    if cascade.len() > 1 {
                        candidates.push((
                            cascade,
                            0,
                            format!(
                                "drop redundant event {event} from EventSync {:?} and \
                                 remove its record",
                                schedule.items[index].name
                            ),
                        ));
                    }
                    candidates.push((
                        vec![FixEdit::RemoveEvent { index, event }],
                        0,
                        format!(
                            "drop redundant event {event} from EventSync {:?}",
                            schedule.items[index].name
                        ),
                    ));
                }
            }
        }
        _ => return None,
    }

    for (edits, new_events, description) in candidates {
        if let Some(fixed) = verify(&edits, new_events) {
            return Some(Fix {
                edits,
                new_events,
                description,
                fixed,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::{build_schedule, CostKey, DagBuilder, OpSpec};

    /// A cross-stream dependency with its glued wait stripped: the
    /// canonical HB001 input.
    fn racy_case() -> (DecisionSpace, Schedule, Diagnostic) {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let c = b.add("c", OpSpec::GpuKernel(CostKey::new("c")));
        b.edge(a, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[("a", Some(0)), ("c", Some(1))])
            .unwrap();
        let mut s = build_schedule(&sp, &t);
        s.items.retain(|it| !it.name.contains("CSWE"));
        let d = crate::lint(&sp, &s, None)
            .diagnostics
            .iter()
            .find(|d| d.code == RuleCode::Hb001)
            .expect("stripping the glue must race")
            .clone();
        (sp, s, d)
    }

    #[test]
    fn hb001_gets_a_verified_insertion_fix() {
        let (sp, s, d) = racy_case();
        let fix = synthesize_fix(&sp, &s, None, &d).expect("repairable");
        let report = crate::lint(&sp, &fix.fixed, None);
        assert!(
            !report.has_code(RuleCode::Hb001),
            "{}",
            report.render_text()
        );
        assert_eq!(report.errors().count(), 0);
        // The glue's record is still there, so one wait suffices.
        assert_eq!(fix.edits.len(), 1);
        assert_eq!(fix.new_events, 0);
    }

    #[test]
    fn hb001_with_no_existing_record_needs_the_pair() {
        let mut b = DagBuilder::new();
        let a = b.add("a", OpSpec::GpuKernel(CostKey::new("a")));
        let c = b.add("c", OpSpec::GpuKernel(CostKey::new("c")));
        b.edge(a, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[("a", Some(0)), ("c", Some(1))])
            .unwrap();
        let mut s = build_schedule(&sp, &t);
        // Strip both halves of the glue: no event is recorded at all.
        s.items
            .retain(|it| !it.name.contains("CSWE") && !it.name.contains("CER"));
        let d = crate::lint(&sp, &s, None)
            .diagnostics
            .iter()
            .find(|d| d.code == RuleCode::Hb001)
            .unwrap()
            .clone();
        let fix = synthesize_fix(&sp, &s, None, &d).expect("repairable");
        assert_eq!(fix.edits.len(), 2, "record + wait");
        assert_eq!(fix.new_events, 1);
        assert_eq!(crate::lint(&sp, &fix.fixed, None).errors().count(), 0);
    }

    #[test]
    fn rs001_fix_removes_the_dominated_wait() {
        let mut b = DagBuilder::new();
        let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
        let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
        b.edge(g1, g2);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[("g1", Some(0)), ("g2", Some(0))])
            .unwrap();
        let mut s = build_schedule(&sp, &t);
        let g2_at = s.items.iter().position(|i| i.name == "g2").unwrap();
        let event = s.num_events;
        s.num_events += 1;
        s.items.insert(
            g2_at,
            ScheduledItem {
                name: "CER-after-g1(extra)".into(),
                action: ScheduleAction::EventRecord { event, stream: 0 },
                source: None,
            },
        );
        s.items.insert(
            g2_at + 1,
            ScheduledItem {
                name: "CSWE-b4-g2(extra)".into(),
                action: ScheduleAction::StreamWaitEvent { stream: 0, event },
                source: None,
            },
        );
        let report = crate::lint(&sp, &s, None);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == RuleCode::Rs001)
            .unwrap()
            .clone();
        let fix = synthesize_fix(&sp, &s, None, &d).expect("repairable");
        assert!(matches!(fix.edits[0], FixEdit::Remove { .. }));
        let fixed_report = crate::lint(&sp, &fix.fixed, None);
        assert!(!fixed_report.has_code(RuleCode::Rs001));
        assert_eq!(fixed_report.errors().count(), 0);
    }

    #[test]
    fn rs003_fix_drops_one_event_from_the_sync() {
        let mut b = DagBuilder::new();
        let g1 = b.add("g1", OpSpec::GpuKernel(CostKey::new("g1")));
        let g2 = b.add("g2", OpSpec::GpuKernel(CostKey::new("g2")));
        let c = b.add("c", OpSpec::CpuWork(CostKey::new("c")));
        b.edge(g1, c);
        b.edge(g2, c);
        let sp = DecisionSpace::new(b.build().unwrap(), 2).unwrap();
        let t = sp
            .traversal_from_names(&[
                ("g1", Some(0)),
                ("CER-after-g1", None),
                ("g2", Some(0)),
                ("CER-after-g2", None),
                ("CES-b4-c", None),
                ("c", None),
            ])
            .unwrap();
        let s = build_schedule(&sp, &t);
        let report = crate::lint(&sp, &s, None);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == RuleCode::Rs003)
            .unwrap()
            .clone();
        let fix = synthesize_fix(&sp, &s, None, &d).expect("repairable");
        assert!(matches!(fix.edits[0], FixEdit::RemoveEvent { .. }));
        let fixed_report = crate::lint(&sp, &fix.fixed, None);
        assert!(!fixed_report.has_code(RuleCode::Rs003));
        // The CER record is a mandatory decision-op item, so the cascade
        // removal is illegal here and the orphaned record surfaces as
        // RS004 — a different finding, not a regression.
        assert_eq!(fixed_report.errors().count(), 0);
        assert!(fixed_report.warnings().count() <= 1);
    }

    #[test]
    fn deadlocks_are_not_mechanically_repairable() {
        let key = dr_dag::CommKey::new("x");
        let mut b = DagBuilder::new();
        b.add("ws", OpSpec::WaitSends(key.clone()));
        let sp = DecisionSpace::new(b.build().unwrap(), 1).unwrap();
        let mut topo = CommTopology::new(2).with_eager_threshold(16);
        topo.all_to_all(key, 1 << 20);
        let t = sp.enumerate().next().unwrap();
        let s = build_schedule(&sp, &t);
        let d = crate::lint(&sp, &s, Some(&topo))
            .diagnostics
            .iter()
            .find(|d| d.code == RuleCode::Mpi103)
            .unwrap()
            .clone();
        assert!(synthesize_fix(&sp, &s, Some(&topo), &d).is_none());
    }
}
