//! MPI deadlock detection over the lowered schedule.
//!
//! The program is SPMD — every rank executes the same instruction list —
//! but ranks differ in their communication patterns, so blocking can be
//! asymmetric. The detector mirrors the simulator's blocking semantics
//! (`crates/sim/src/exec.rs`) abstractly, with no clock:
//!
//! * `WaitRecvs(c)` blocks until every peer the rank receives from has
//!   executed `PostSends(c)`;
//! * `WaitSends(c)` blocks until every peer of a *rendezvous* send has
//!   executed `PostRecvs(c)` (eager sends never block);
//! * `AllReduce` blocks until every rank has reached it.
//!
//! Ranks advance round-robin until quiescence; unfinished ranks at
//! quiescence are deadlocked (`MPI104`), and the wait-for sets in the
//! diagnostic name who blocks whom. Static pre-checks catch the cases
//! that never need execution: waits with no preceding own post
//! (`MPI101`, the simulator's `WaitBeforePost`), asymmetric
//! point-to-point patterns (`MPI102`), waits whose matching remote post
//! instruction does not exist at all (`MPI103`), keys used both
//! point-to-point and collectively (`MPI105`), and malformed collective
//! patterns (`MPI107`).

use crate::diag::{Diagnostic, RuleCode};
use crate::topo::CommTopology;
use dr_dag::{CommKey, Schedule, ScheduleAction};
use std::collections::{BTreeMap, BTreeSet};

/// The communication instructions of the schedule, by item index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CommOp<'a> {
    PostSends(&'a CommKey),
    PostRecvs(&'a CommKey),
    WaitSends(&'a CommKey),
    WaitRecvs(&'a CommKey),
    AllReduce(&'a CommKey),
}

fn comm_ops(schedule: &Schedule) -> Vec<(usize, CommOp<'_>)> {
    schedule
        .items
        .iter()
        .enumerate()
        .filter_map(|(i, item)| {
            let op = match &item.action {
                ScheduleAction::PostSends(c) => CommOp::PostSends(c),
                ScheduleAction::PostRecvs(c) => CommOp::PostRecvs(c),
                ScheduleAction::WaitSends(c) => CommOp::WaitSends(c),
                ScheduleAction::WaitRecvs(c) => CommOp::WaitRecvs(c),
                ScheduleAction::AllReduce(c) => CommOp::AllReduce(c),
                _ => return None,
            };
            Some((i, op))
        })
        .collect()
}

/// Statically detects unmatched and cyclically-blocked MPI communication.
pub fn detect_deadlocks(schedule: &Schedule, topo: &CommTopology) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let ops = comm_ops(schedule);
    if ops.is_empty() {
        return diags;
    }

    // Key usage: point-to-point vs collective must not mix (MPI105), and
    // keys without topology information cannot be analyzed (MPI106).
    let mut p2p_keys: BTreeMap<&CommKey, usize> = BTreeMap::new();
    let mut coll_keys: BTreeMap<&CommKey, usize> = BTreeMap::new();
    for &(i, op) in &ops {
        match op {
            CommOp::AllReduce(c) => {
                coll_keys.entry(c).or_insert(i);
            }
            CommOp::PostSends(c)
            | CommOp::PostRecvs(c)
            | CommOp::WaitSends(c)
            | CommOp::WaitRecvs(c) => {
                p2p_keys.entry(c).or_insert(i);
            }
        }
    }
    for (key, &i) in &p2p_keys {
        if let Some(&j) = coll_keys.get(key) {
            diags.push(
                Diagnostic::new(
                    RuleCode::Mpi105,
                    format!("comm key {key} used both point-to-point and collectively"),
                )
                .with_items(vec![i.min(j), i.max(j)]),
            );
        }
    }
    let known = |key: &CommKey| topo.pattern(key).is_some();
    for (&key, &i) in p2p_keys.iter().chain(coll_keys.iter()) {
        if !known(key) {
            diags.push(
                Diagnostic::new(
                    RuleCode::Mpi106,
                    format!("no topology for comm key {key}; its analysis is skipped"),
                )
                .with_items(vec![i]),
            );
        }
    }

    // Pattern-level matching (MPI102 / MPI107), independent of order.
    for &key in p2p_keys.keys() {
        let Some(pat) = topo.pattern(key) else {
            continue;
        };
        for (src, traffic) in pat.iter().enumerate() {
            for &(dst, bytes) in &traffic.sends {
                let matched = dst < pat.len()
                    && pat[dst]
                        .recvs
                        .iter()
                        .filter(|&&(p, b)| p == src && b == bytes)
                        .count()
                        >= traffic
                            .sends
                            .iter()
                            .filter(|&&(p, b)| p == dst && b == bytes)
                            .count();
                if !matched {
                    diags.push(Diagnostic::new(
                        RuleCode::Mpi102,
                        format!(
                            "{key}: rank {src} sends {bytes} B to rank {dst} with no matching recv"
                        ),
                    ));
                }
            }
            for &(src_peer, bytes) in &traffic.recvs {
                let matched = src_peer < pat.len()
                    && pat[src_peer]
                        .sends
                        .iter()
                        .filter(|&&(p, b)| p == src && b == bytes)
                        .count()
                        >= traffic
                            .recvs
                            .iter()
                            .filter(|&&(p, b)| p == src_peer && b == bytes)
                            .count();
                if !matched {
                    diags.push(Diagnostic::new(
                        RuleCode::Mpi102,
                        format!(
                            "{key}: rank {src} expects {bytes} B from rank {src_peer} \
                             with no matching send"
                        ),
                    ));
                }
            }
        }
    }
    for &key in coll_keys.keys() {
        let Some(pat) = topo.pattern(key) else {
            continue;
        };
        for (rank, traffic) in pat.iter().enumerate() {
            if traffic.sends.len() != 1 || !traffic.recvs.is_empty() {
                diags.push(Diagnostic::new(
                    RuleCode::Mpi107,
                    format!(
                        "collective {key}: rank {rank} must contribute exactly one send \
                         and no recvs"
                    ),
                ));
            }
        }
    }

    // Program-order checks (MPI101) and never-posted checks (MPI103):
    // SPMD, so one pass over the shared instruction list suffices.
    let posted_before = |wait_idx: usize, want: &dyn Fn(CommOp<'_>) -> bool| {
        ops.iter().any(|&(i, op)| i < wait_idx && want(op))
    };
    let exists = |want: &dyn Fn(CommOp<'_>) -> bool| ops.iter().any(|&(_, op)| want(op));
    for &(i, op) in &ops {
        match op {
            CommOp::WaitSends(c) => {
                if !posted_before(i, &|o| matches!(o, CommOp::PostSends(k) if k == c)) {
                    diags.push(
                        Diagnostic::new(
                            RuleCode::Mpi101,
                            format!("WaitSends({c}) at item {i} before any PostSends({c})"),
                        )
                        .with_items(vec![i]),
                    );
                }
                let needs_remote_recv = topo.pattern(c).is_some_and(|pat| {
                    pat.iter()
                        .any(|t| t.sends.iter().any(|&(_, b)| !topo.is_eager(b)))
                });
                if needs_remote_recv && !exists(&|o| matches!(o, CommOp::PostRecvs(k) if k == c)) {
                    diags.push(
                        Diagnostic::new(
                            RuleCode::Mpi103,
                            format!(
                                "WaitSends({c}) at item {i} needs rendezvous receives, \
                                 but no rank ever posts PostRecvs({c})"
                            ),
                        )
                        .with_items(vec![i]),
                    );
                }
                // A lost rendezvous send never completes its handshake,
                // so the sender's wait can never be satisfied. Lost
                // eager sends complete locally and do not block here.
                if let Some(pat) = topo.pattern(c) {
                    let lost: Vec<(usize, usize)> = pat
                        .iter()
                        .enumerate()
                        .flat_map(|(src, t)| {
                            t.sends
                                .iter()
                                .filter(move |&&(dst, bytes)| {
                                    !topo.is_eager(bytes) && topo.is_lost(c, src, dst)
                                })
                                .map(move |&(dst, _)| (src, dst))
                        })
                        .collect();
                    if let Some(&(src, dst)) = lost.first() {
                        diags.push(
                            Diagnostic::new(
                                RuleCode::Mpi103,
                                format!(
                                    "WaitSends({c}) at item {i}: {} rendezvous message(s) \
                                     lost in transit (first: rank {src} -> rank {dst}); \
                                     the wait can never complete",
                                    lost.len()
                                ),
                            )
                            .with_items(vec![i]),
                        );
                    }
                }
            }
            CommOp::WaitRecvs(c) => {
                if !posted_before(i, &|o| matches!(o, CommOp::PostRecvs(k) if k == c)) {
                    diags.push(
                        Diagnostic::new(
                            RuleCode::Mpi101,
                            format!("WaitRecvs({c}) at item {i} before any PostRecvs({c})"),
                        )
                        .with_items(vec![i]),
                    );
                }
                let expects_data = topo
                    .pattern(c)
                    .is_some_and(|pat| pat.iter().any(|t| !t.recvs.is_empty()));
                if expects_data && !exists(&|o| matches!(o, CommOp::PostSends(k) if k == c)) {
                    diags.push(
                        Diagnostic::new(
                            RuleCode::Mpi103,
                            format!(
                                "WaitRecvs({c}) at item {i} expects messages, \
                                 but no rank ever posts PostSends({c})"
                            ),
                        )
                        .with_items(vec![i]),
                    );
                }
                // A lost message never reaches its receiver — eager or
                // rendezvous alike — so the receiving wait is stranded.
                if let Some(pat) = topo.pattern(c) {
                    let lost: Vec<(usize, usize)> = pat
                        .iter()
                        .enumerate()
                        .flat_map(|(dst, t)| {
                            t.recvs
                                .iter()
                                .filter(move |&&(src, _)| topo.is_lost(c, src, dst))
                                .map(move |&(src, _)| (src, dst))
                        })
                        .collect();
                    if let Some(&(src, dst)) = lost.first() {
                        diags.push(
                            Diagnostic::new(
                                RuleCode::Mpi103,
                                format!(
                                    "WaitRecvs({c}) at item {i}: {} expected message(s) \
                                     lost in transit (first: rank {src} -> rank {dst}); \
                                     the wait can never complete",
                                    lost.len()
                                ),
                            )
                            .with_items(vec![i]),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    // Abstract round-robin execution to quiescence (MPI104). Only comm
    // instructions matter; everything else is free progress.
    let ranks = topo.num_ranks();
    if ranks == 0 {
        return diags;
    }
    let n = ops.len();
    let mut pc = vec![0usize; ranks]; // index into `ops`, not items
    let mut posted_sends: Vec<BTreeSet<&CommKey>> = vec![BTreeSet::new(); ranks];
    let mut posted_recvs: Vec<BTreeSet<&CommKey>> = vec![BTreeSet::new(); ranks];

    // A wait already reported as never-satisfiable (MPI101/MPI103) would
    // make the simulator error out rather than block; treat it as
    // non-blocking so MPI104 reports only genuine cross-rank cycles.
    let unsatisfiable: BTreeSet<usize> = diags
        .iter()
        .filter(|d| matches!(d.code, RuleCode::Mpi101 | RuleCode::Mpi103))
        .flat_map(|d| d.items.iter().copied())
        .collect();

    // Who `rank` is waiting for at its current op; empty = not blocked.
    let waiting_on = |rank: usize,
                      pc: &[usize],
                      posted_sends: &[BTreeSet<&CommKey>],
                      posted_recvs: &[BTreeSet<&CommKey>]|
     -> Vec<usize> {
        let (item_idx, op) = ops[pc[rank]];
        if unsatisfiable.contains(&item_idx) {
            return Vec::new();
        }
        match op {
            CommOp::WaitRecvs(c) => match topo.pattern(c) {
                Some(pat) => pat[rank]
                    .recvs
                    .iter()
                    .map(|&(peer, _)| peer)
                    .filter(|&peer| peer < ranks && !posted_sends[peer].contains(c))
                    .collect(),
                None => Vec::new(),
            },
            CommOp::WaitSends(c) => match topo.pattern(c) {
                Some(pat) => pat[rank]
                    .sends
                    .iter()
                    .filter(|&&(_, bytes)| !topo.is_eager(bytes))
                    .map(|&(peer, _)| peer)
                    .filter(|&peer| peer < ranks && !posted_recvs[peer].contains(c))
                    .collect(),
                None => Vec::new(),
            },
            CommOp::AllReduce(_) => (0..ranks).filter(|&p| pc[p] < pc[rank]).collect(),
            _ => Vec::new(),
        }
    };

    loop {
        let mut progressed = false;
        for rank in 0..ranks {
            while pc[rank] < n {
                if !waiting_on(rank, &pc, &posted_sends, &posted_recvs).is_empty() {
                    break;
                }
                match ops[pc[rank]].1 {
                    CommOp::PostSends(c) => {
                        posted_sends[rank].insert(c);
                    }
                    CommOp::PostRecvs(c) => {
                        posted_recvs[rank].insert(c);
                    }
                    _ => {}
                }
                pc[rank] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let blocked: Vec<usize> = (0..ranks).filter(|&r| pc[r] < n).collect();
    if !blocked.is_empty() {
        let mut parts = Vec::new();
        let mut items = Vec::new();
        for &r in &blocked {
            let (item_idx, _) = ops[pc[r]];
            let peers = waiting_on(r, &pc, &posted_sends, &posted_recvs);
            parts.push(format!(
                "rank {r} blocked at {:?} (item {item_idx}) waiting on ranks {peers:?}",
                schedule.items[item_idx].name
            ));
            items.push(item_idx);
        }
        items.sort_unstable();
        items.dedup();
        diags.push(
            Diagnostic::new(RuleCode::Mpi104, format!("deadlock: {}", parts.join("; ")))
                .with_items(items),
        );
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_dag::ScheduledItem;

    fn item(name: &str, action: ScheduleAction) -> ScheduledItem {
        ScheduledItem {
            name: name.into(),
            action,
            source: None,
        }
    }

    fn schedule_of(actions: Vec<(&str, ScheduleAction)>) -> Schedule {
        Schedule {
            items: actions.into_iter().map(|(n, a)| item(n, a)).collect(),
            num_events: 0,
            num_streams: 1,
        }
    }

    fn exchange_topology(bytes: u64) -> CommTopology {
        let mut topo = CommTopology::new(2).with_eager_threshold(1024);
        topo.all_to_all(CommKey::new("x"), bytes);
        topo
    }

    #[test]
    fn well_ordered_exchange_is_clean() {
        let c = CommKey::new("x");
        let s = schedule_of(vec![
            ("pr", ScheduleAction::PostRecvs(c.clone())),
            ("ps", ScheduleAction::PostSends(c.clone())),
            ("ws", ScheduleAction::WaitSends(c.clone())),
            ("wr", ScheduleAction::WaitRecvs(c)),
        ]);
        let diags = detect_deadlocks(&s, &exchange_topology(1 << 20));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wait_before_own_post_is_mpi101() {
        let c = CommKey::new("x");
        let s = schedule_of(vec![
            ("wr", ScheduleAction::WaitRecvs(c.clone())),
            ("pr", ScheduleAction::PostRecvs(c.clone())),
            ("ps", ScheduleAction::PostSends(c.clone())),
            ("ws", ScheduleAction::WaitSends(c)),
        ]);
        let diags = detect_deadlocks(&s, &exchange_topology(1 << 20));
        assert!(
            diags.iter().any(|d| d.code == RuleCode::Mpi101),
            "{diags:?}"
        );
    }

    #[test]
    fn rendezvous_wait_before_remote_recv_deadlocks() {
        // Mirror of the simulator's rendezvous deadlock test: everyone
        // waits for sends to drain before anyone posts receives — with
        // the receive post entirely absent, that is MPI103 (never posted).
        let c = CommKey::new("x");
        let s = schedule_of(vec![
            ("ps", ScheduleAction::PostSends(c.clone())),
            ("ws", ScheduleAction::WaitSends(c)),
        ]);
        let diags = detect_deadlocks(&s, &exchange_topology(1 << 20));
        assert!(
            diags.iter().any(|d| d.code == RuleCode::Mpi103),
            "{diags:?}"
        );
    }

    #[test]
    fn eager_sends_do_not_block() {
        let c = CommKey::new("x");
        let s = schedule_of(vec![
            ("ps", ScheduleAction::PostSends(c.clone())),
            ("ws", ScheduleAction::WaitSends(c.clone())),
            ("pr", ScheduleAction::PostRecvs(c.clone())),
            ("wr", ScheduleAction::WaitRecvs(c)),
        ]);
        // 512 B <= 1024 B threshold: the sends complete eagerly, so
        // waiting on them before anyone posts receives is fine.
        let diags = detect_deadlocks(&s, &exchange_topology(512));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unmatched_pattern_is_mpi102() {
        let c = CommKey::new("x");
        let mut topo = CommTopology::new(2);
        topo.set(c.clone(), 0, vec![(1, 100)], vec![]);
        topo.set(c.clone(), 1, vec![], vec![]); // rank 1 never receives
        let s = schedule_of(vec![
            ("pr", ScheduleAction::PostRecvs(c.clone())),
            ("ps", ScheduleAction::PostSends(c.clone())),
            ("ws", ScheduleAction::WaitSends(c.clone())),
            ("wr", ScheduleAction::WaitRecvs(c)),
        ]);
        let diags = detect_deadlocks(&s, &topo);
        assert!(
            diags.iter().any(|d| d.code == RuleCode::Mpi102),
            "{diags:?}"
        );
    }

    #[test]
    fn collective_after_unreceived_rendezvous_deadlocks() {
        // Rank order forces: wait for rendezvous sends (needs remote
        // PostRecvs) but the receive post comes only after an AllReduce
        // nobody can reach. Classic cyclic block -> MPI104.
        let c = CommKey::new("x");
        let r = CommKey::new("sum");
        let mut topo = exchange_topology(1 << 20);
        topo.collective(r.clone(), 8);
        let s = schedule_of(vec![
            ("ps", ScheduleAction::PostSends(c.clone())),
            ("ws", ScheduleAction::WaitSends(c.clone())),
            ("ar", ScheduleAction::AllReduce(r)),
            ("pr", ScheduleAction::PostRecvs(c.clone())),
            ("wr", ScheduleAction::WaitRecvs(c)),
        ]);
        let diags = detect_deadlocks(&s, &topo);
        assert!(
            diags.iter().any(|d| d.code == RuleCode::Mpi104),
            "{diags:?}"
        );
    }

    #[test]
    fn mixed_key_use_is_mpi105() {
        let c = CommKey::new("x");
        let mut topo = exchange_topology(512);
        topo.collective(c.clone(), 8); // overwrites, but usage mix is the point
        let s = schedule_of(vec![
            ("ps", ScheduleAction::PostSends(c.clone())),
            ("ws", ScheduleAction::WaitSends(c.clone())),
            ("ar", ScheduleAction::AllReduce(c)),
        ]);
        let diags = detect_deadlocks(&s, &topo);
        assert!(
            diags.iter().any(|d| d.code == RuleCode::Mpi105),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_key_is_skipped_with_mpi106() {
        let c = CommKey::new("mystery");
        let s = schedule_of(vec![
            ("pr", ScheduleAction::PostRecvs(c.clone())),
            ("ps", ScheduleAction::PostSends(c.clone())),
            ("wr", ScheduleAction::WaitRecvs(c)),
        ]);
        let diags = detect_deadlocks(&s, &CommTopology::new(2));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, RuleCode::Mpi106);
    }

    #[test]
    fn invalid_collective_pattern_is_mpi107() {
        let r = CommKey::new("sum");
        let mut topo = CommTopology::new(2);
        topo.set(r.clone(), 0, vec![(0, 8)], vec![]);
        topo.set(r.clone(), 1, vec![], vec![(0, 8)]); // recvs: invalid
        let s = schedule_of(vec![("ar", ScheduleAction::AllReduce(r))]);
        let diags = detect_deadlocks(&s, &topo);
        assert!(
            diags.iter().any(|d| d.code == RuleCode::Mpi107),
            "{diags:?}"
        );
    }

    #[test]
    fn lost_rendezvous_message_strands_both_waits() {
        let c = CommKey::new("x");
        let mut topo = exchange_topology(1 << 20); // rendezvous at 1 MiB
        topo.add_lost_send(c.clone(), 0, 1);
        let s = schedule_of(vec![
            ("pr", ScheduleAction::PostRecvs(c.clone())),
            ("ps", ScheduleAction::PostSends(c.clone())),
            ("ws", ScheduleAction::WaitSends(c.clone())),
            ("wr", ScheduleAction::WaitRecvs(c)),
        ]);
        let diags = detect_deadlocks(&s, &topo);
        let mpi103: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Mpi103)
            .collect();
        assert_eq!(mpi103.len(), 2, "{diags:?}");
        assert!(mpi103.iter().any(|d| d.message.contains("WaitSends")));
        assert!(mpi103.iter().any(|d| d.message.contains("WaitRecvs")));
    }

    #[test]
    fn lost_eager_message_strands_only_the_receiver() {
        let c = CommKey::new("x");
        let mut topo = exchange_topology(512); // under the 1024 B threshold
        topo.add_lost_send(c.clone(), 0, 1);
        let s = schedule_of(vec![
            ("pr", ScheduleAction::PostRecvs(c.clone())),
            ("ps", ScheduleAction::PostSends(c.clone())),
            ("ws", ScheduleAction::WaitSends(c.clone())),
            ("wr", ScheduleAction::WaitRecvs(c)),
        ]);
        let diags = detect_deadlocks(&s, &topo);
        let mpi103: Vec<_> = diags
            .iter()
            .filter(|d| d.code == RuleCode::Mpi103)
            .collect();
        // The lost send completed eagerly at the sender, so only the
        // receive wait is stranded; nothing else deadlocks.
        assert_eq!(mpi103.len(), 1, "{diags:?}");
        assert!(mpi103[0].message.contains("WaitRecvs"));
        assert!(
            !diags.iter().any(|d| d.code == RuleCode::Mpi104),
            "{diags:?}"
        );
    }

    #[test]
    fn allreduce_alone_converges() {
        let r = CommKey::new("sum");
        let mut topo = CommTopology::new(4);
        topo.collective(r.clone(), 8);
        let s = schedule_of(vec![("ar", ScheduleAction::AllReduce(r))]);
        let diags = detect_deadlocks(&s, &topo);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
