//! Criterion microbenchmarks of every substrate on the reproduction's hot
//! paths: simulator execution, the measurement protocol, traversal
//! enumeration/counting, MCTS iterations, and the ML pipeline stages.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dr_dag::{build_schedule, Traversal};
use dr_mcts::{Mcts, MctsConfig, SimEvaluator};
use dr_ml::{algorithm1, featurize, label_times, DecisionTree, TrainConfig};
use dr_sim::{benchmark, execute, BenchConfig, CompiledProgram};
use dr_spmv::SpmvScenario;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn scenario() -> SpmvScenario {
    SpmvScenario::small(7)
}

fn first_traversal(sc: &SpmvScenario) -> Traversal {
    let mut prefix = sc.space.empty_prefix();
    sc.space.complete_with(&mut prefix, |_| 0)
}

fn bench_simulator(c: &mut Criterion) {
    let sc = scenario();
    let t = first_traversal(&sc);
    let prog = sc.compile(&t).unwrap();
    c.bench_function("sim/execute_one_sample", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| execute(black_box(&prog), &sc.platform, &mut rng).unwrap())
    });
    c.bench_function("sim/benchmark_protocol_quick", |b| {
        b.iter(|| benchmark(black_box(&prog), &sc.platform, &BenchConfig::quick(), 3).unwrap())
    });
    c.bench_function("sim/compile_schedule", |b| {
        let schedule = build_schedule(&sc.space, &t);
        b.iter(|| CompiledProgram::compile(black_box(&schedule), &sc.workload).unwrap())
    });
}

fn bench_dag(c: &mut Criterion) {
    let sc = scenario();
    c.bench_function("dag/count_traversals", |b| {
        b.iter(|| black_box(&sc.space).count_traversals())
    });
    c.bench_function("dag/enumerate_space", |b| {
        b.iter(|| black_box(&sc.space).enumerate().count())
    });
    let t = first_traversal(&sc);
    c.bench_function("dag/build_schedule", |b| {
        b.iter(|| build_schedule(black_box(&sc.space), &t))
    });
}

fn bench_mcts(c: &mut Criterion) {
    let sc = scenario();
    c.bench_function("mcts/100_iterations", |b| {
        b.iter_batched(
            || {
                Mcts::new(
                    &sc.space,
                    SimEvaluator::new(
                        &sc.space,
                        &sc.workload,
                        &sc.platform,
                        BenchConfig {
                            t_measure: 1e-4,
                            num_measurements: 1,
                            max_samples: 1,
                        },
                    ),
                    MctsConfig::default(),
                )
            },
            |mut m| m.run(100).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_ml(c: &mut Criterion) {
    let sc = scenario();
    let all: Vec<_> = sc.space.enumerate().collect();
    // Synthetic but structured times: fast when Pack precedes yl.
    let pack = sc.space.op_by_name("Pack").unwrap();
    let yl = sc.space.op_by_name("yl").unwrap();
    let times: Vec<f64> = all
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let pos = t.positions(sc.space.num_ops());
            let base = if pos[pack] < pos[yl] { 1.0 } else { 1.3 };
            base + 1e-3 * ((i * 37 % 101) as f64)
        })
        .collect();
    c.bench_function("ml/label_times", |b| {
        b.iter(|| label_times(black_box(&times), &Default::default()))
    });
    let refs: Vec<&Traversal> = all.iter().collect();
    c.bench_function("ml/featurize_full_space", |b| {
        b.iter(|| featurize(black_box(&sc.space), &refs))
    });
    let labeling = label_times(&times, &Default::default());
    let features = featurize(&sc.space, &refs);
    c.bench_function("ml/cart_fit", |b| {
        b.iter(|| {
            DecisionTree::fit(
                black_box(&features.matrix),
                &labeling.labels,
                labeling.num_classes,
                &TrainConfig::default(),
            )
        })
    });
    // Algorithm 1 trains many trees; benchmark it on a 300-row subsample
    // to keep the run affordable.
    let sub_x: Vec<dr_ml::BitRow> = features.matrix.iter().take(300).cloned().collect();
    let sub_y: Vec<usize> = labeling.labels.iter().take(300).copied().collect();
    c.bench_function("ml/algorithm1_300_rows", |b| {
        b.iter(|| {
            algorithm1(
                black_box(&sub_x),
                &sub_y,
                labeling.num_classes,
                &TrainConfig::default(),
            )
        })
    });
}

fn bench_spmv(c: &mut Criterion) {
    use dr_spmv::{banded_matrix, BandedSpec, DistributedSpmv};
    c.bench_function("spmv/banded_matrix_small", |b| {
        b.iter(|| banded_matrix(black_box(&BandedSpec::small(3))))
    });
    let a = banded_matrix(&BandedSpec::small(3));
    c.bench_function("spmv/decompose_4_ranks", |b| {
        b.iter(|| DistributedSpmv::new(black_box(&a), 4))
    });
    let d = DistributedSpmv::new(&a, 4);
    let x: Vec<f64> = (0..a.ncols).map(|i| i as f64 * 1e-3).collect();
    c.bench_function("spmv/distributed_multiply", |b| {
        b.iter(|| black_box(&d).multiply(&x))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_simulator, bench_dag, bench_mcts, bench_ml, bench_spmv
}
criterion_main!(benches);
