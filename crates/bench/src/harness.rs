//! Library form of the benchmark binaries: the `pipeline_bench` and
//! `explore_scaling` measurements as reusable functions, so both the
//! standalone binaries and the `dr-rules <scenario> bench` subcommand
//! run the exact same protocol (and therefore produce entries that are
//! comparable across the committed `BENCH_*.json` histories).
//!
//! Each function renders its progress table to `out`, validates the
//! report JSON, and returns it; callers append it to the matching
//! history with [`crate::append_history`].

use dr_core::{
    explore_parallel, run_pipeline_instrumented, ExploreOutput, InstrumentedRun, PipelineConfig,
    Strategy,
};
use dr_mcts::{MctsConfig, SimEvaluator};
use dr_obs::json;
use dr_spmv::SpmvScenario;
use std::io::Write;
use std::time::Instant;

/// MCTS rollout budget used by both benchmarks' search legs.
pub const MCTS_BUDGET: usize = 400;

/// Worker-thread counts swept by the exploration-scaling benchmark.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Builds the benchmark scenario for a scale name (`"small"` or
/// anything else for paper scale).
pub fn scenario_for(scale: &str, seed: u64) -> SpmvScenario {
    match scale {
        "small" => SpmvScenario::small(seed),
        _ => SpmvScenario::paper(seed),
    }
}

type BoxError = Box<dyn std::error::Error>;

/// End-to-end pipeline benchmark: one full explore→label→featurize→
/// train run per search strategy (exhaustive, MCTS, random), per-phase
/// wall-clock times, exploration throughput. Renders a progress table
/// to `out` and returns the validated report JSON (one history entry).
pub fn pipeline_report(scale: &str, seed: u64, out: &mut dyn Write) -> Result<String, BoxError> {
    let sc = scenario_for(scale, seed);
    writeln!(out, "== Pipeline phase benchmark ==")?;
    writeln!(out, "space: {} traversals", sc.space.count_traversals())?;

    let legs = [
        ("exhaustive", Strategy::Exhaustive),
        (
            "mcts",
            Strategy::Mcts {
                iterations: MCTS_BUDGET,
                config: MctsConfig {
                    seed,
                    ..Default::default()
                },
            },
        ),
        (
            "random",
            Strategy::Random {
                iterations: MCTS_BUDGET,
                seed,
            },
        ),
    ];

    let mut legs_json: Vec<String> = Vec::new();
    for (name, strategy) in legs {
        // The quick measurement protocol: this benchmark times the
        // pipeline machinery per phase, not the simulated measurements.
        let run = run_pipeline_instrumented(
            &sc.space,
            &sc.workload,
            &sc.platform,
            strategy,
            &PipelineConfig::quick(),
        )?;
        let explore_s = run.report.phases.get("explore").unwrap_or(0.0);
        writeln!(
            out,
            "{name:>10}: {} records in {:.3} s explore ({:.1} records/s), total {:.3} s",
            run.result.records.len(),
            explore_s,
            run.result.records.len() as f64 / explore_s.max(f64::MIN_POSITIVE),
            run.report.phases.total()
        )?;
        write!(out, "{}", run.report.phases.render_text())?;
        legs_json.push(pipeline_leg_json(&run, name));
    }

    let report = format!(
        "{{\"scenario\": \"{}\", \"seed\": {seed}, \"mcts_budget\": {MCTS_BUDGET}, \
         \"space_traversals\": {}, \"legs\": [{}]}}",
        json::escape(scale),
        sc.space.count_traversals(),
        legs_json.join(", ")
    );
    json::validate(&report)?;
    Ok(report)
}

fn pipeline_leg_json(run: &InstrumentedRun, strategy: &str) -> String {
    let explore_s = run.report.phases.get("explore").unwrap_or(0.0);
    let records = run.result.records.len();
    let throughput = if explore_s > 0.0 {
        records as f64 / explore_s
    } else {
        0.0
    };
    format!(
        "{{\"strategy\": \"{}\", \"threads\": {}, \"records\": {records}, \
         \"records_per_sec\": {}, \"total_s\": {}, \"phases\": {}}}",
        json::escape(strategy),
        run.threads,
        json::number(throughput),
        json::number(run.report.phases.total()),
        run.report.phases.to_json()
    )
}

struct ScalingLeg {
    strategy: &'static str,
    threads: usize,
    wall_s: f64,
    samples: usize,
    cache_hits: u64,
    cache_misses: u64,
}

fn scaling_leg(
    sc: &SpmvScenario,
    strategy: Strategy,
    threads: usize,
) -> Result<(ScalingLeg, ExploreOutput), dr_sim::SimError> {
    let start = Instant::now();
    // The quick measurement protocol: this benchmark times the engine
    // (queueing, caching, merging), not the measurements themselves, and
    // the full protocol would only scale every leg by a constant.
    let cfg = dr_sim::BenchConfig::quick();
    let out = explore_parallel(
        &sc.space,
        || SimEvaluator::new(&sc.space, &sc.workload, &sc.platform, cfg),
        strategy,
        threads,
    )?;
    let wall_s = start.elapsed().as_secs_f64();
    let leg = ScalingLeg {
        strategy: strategy.name(),
        threads,
        wall_s,
        samples: out.records.len(),
        cache_hits: out.cache.hits,
        cache_misses: out.cache.misses,
    };
    Ok((leg, out))
}

fn record_set(out: &ExploreOutput) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = out
        .records
        .iter()
        .map(|r| (r.traversal.canonical_hash(), r.result.time().to_bits()))
        .collect();
    v.sort_unstable();
    v
}

/// Thread-scaling benchmark of the parallel exploration engine:
/// exhaustive sweeps at 1/2/4/8 worker threads plus a root-parallel
/// MCTS leg, verifying every leg reproduces the serial record set.
/// Renders a progress table to `out` and returns the validated report
/// JSON (one history entry).
pub fn explore_report(scale: &str, seed: u64, out: &mut dyn Write) -> Result<String, BoxError> {
    let sc = scenario_for(scale, seed);
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    writeln!(out, "== Parallel exploration scaling ==")?;
    writeln!(
        out,
        "space: {} traversals; host parallelism: {available}",
        sc.space.count_traversals()
    )?;

    let mut legs: Vec<ScalingLeg> = Vec::new();
    let mut serial_wall = f64::NAN;
    let mut serial_set: Vec<(u64, u64)> = Vec::new();
    writeln!(
        out,
        "{:>10}  {:>7}  {:>9}  {:>11}  {:>7}  {:>10}",
        "strategy", "threads", "wall [s]", "samples/s", "speedup", "cache h/m"
    )?;
    for &threads in &THREAD_COUNTS {
        let (leg, exp) = scaling_leg(&sc, Strategy::Exhaustive, threads)?;
        if threads == 1 {
            serial_wall = leg.wall_s;
            serial_set = record_set(&exp);
        } else if record_set(&exp) != serial_set {
            return Err("parallel exhaustive diverged from the serial record set".into());
        }
        writeln!(
            out,
            "{:>10}  {:>7}  {:>9.3}  {:>11.1}  {:>6.2}x  {:>4}/{:<5}",
            leg.strategy,
            leg.threads,
            leg.wall_s,
            leg.samples as f64 / leg.wall_s,
            serial_wall / leg.wall_s,
            leg.cache_hits,
            leg.cache_misses
        )?;
        legs.push(leg);
    }

    // Root-parallel MCTS leg: workers share one result cache, so its hit
    // rate measures how much re-simulation the cache absorbed.
    let mcts = Strategy::Mcts {
        iterations: MCTS_BUDGET,
        config: MctsConfig {
            seed,
            ..Default::default()
        },
    };
    let (mcts_leg, mcts_out) = scaling_leg(&sc, mcts, 4)?;
    writeln!(
        out,
        "{:>10}  {:>7}  {:>9.3}  {:>11.1}  {:>7}  {:>4}/{:<5}",
        "mcts",
        mcts_leg.threads,
        mcts_leg.wall_s,
        mcts_leg.samples as f64 / mcts_leg.wall_s,
        "-",
        mcts_leg.cache_hits,
        mcts_leg.cache_misses
    )?;
    writeln!(
        out,
        "mcts cache hit rate: {:.1}% over {} evaluation requests",
        mcts_out.cache.hit_rate() * 100.0,
        mcts_out.cache.hits + mcts_out.cache.misses
    )?;

    let mut legs_json: Vec<String> = legs
        .iter()
        .map(|l| scaling_leg_json(l, serial_wall / l.wall_s))
        .collect();
    legs_json.push(scaling_leg_json(&mcts_leg, f64::NAN));
    let report = format!(
        "{{\"scenario\": \"{}\", \"seed\": {seed}, \"available_parallelism\": {available}, \
         \"space_traversals\": {}, \"mcts_budget\": {MCTS_BUDGET}, \
         \"mcts_cache_hit_rate\": {}, \"legs\": [{}]}}",
        json::escape(scale),
        sc.space.count_traversals(),
        json::number(mcts_out.cache.hit_rate()),
        legs_json.join(", ")
    );
    json::validate(&report)?;
    Ok(report)
}

fn scaling_leg_json(l: &ScalingLeg, speedup: f64) -> String {
    format!(
        "{{\"strategy\": \"{}\", \"threads\": {}, \"wall_s\": {}, \"samples\": {}, \
         \"samples_per_sec\": {}, \"speedup_vs_serial\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}}}",
        json::escape(l.strategy),
        l.threads,
        json::number(l.wall_s),
        l.samples,
        json::number(l.samples as f64 / l.wall_s),
        if speedup.is_nan() {
            "null".to_string()
        } else {
            json::number(speedup)
        },
        l.cache_hits,
        l.cache_misses
    )
}
