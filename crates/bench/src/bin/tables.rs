//! Tables V, VI, VII: the design rulesets generated for each performance
//! class at various MCTS iteration budgets, annotated for consistency
//! with the canonical (exhaustive-search) rulesets:
//!
//! * `[extra]`   — overconstrained: a harmless condition the canonical
//!   ruleset does not require (blue in the paper);
//! * `missing:`  — underconstrained: a canonical condition the budgeted
//!   ruleset lacks (red / "insufficient rules" in the paper).

use dr_core::{mine_rules, run_pipeline_instrumented, PipelineResult, Strategy};
use dr_mcts::MctsConfig;
use dr_ml::{compare_to_canonical, rulesets_for_class};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = dr_bench::scenario();
    let total = sc.space.count_traversals() as usize;
    eprintln!("building the canonical exhaustive dataset ({total} implementations) …");
    let records = dr_bench::exhaustive_records(&sc);
    let canonical = mine_rules(&sc.space, records, &dr_bench::pipeline_config());
    let num_classes = canonical.labeling.num_classes;

    let budgets = [50usize, 100, 200, 400];
    let mut results: Vec<(usize, PipelineResult)> = Vec::new();
    for &budget in &budgets {
        eprintln!("MCTS with {budget} iterations …");
        let strategy = Strategy::Mcts {
            iterations: budget,
            config: MctsConfig {
                seed: dr_bench::seed(),
                ..Default::default()
            },
        };
        let run = run_pipeline_instrumented(
            &sc.space,
            &sc.workload,
            &sc.platform,
            strategy,
            &dr_bench::pipeline_config(),
        )?;
        dr_bench::write_artifact(
            &format!("tables_report_{budget}.json"),
            &run.report.to_json(),
        );
        dr_bench::write_artifact(
            &format!("tables_telemetry_{budget}.csv"),
            &run.telemetry.to_csv(),
        );
        results.push((budget, run.result));
    }
    results.push((total, canonical.clone()));

    for class in 0..num_classes {
        println!();
        println!(
            "===== Table {}: rulesets for performance class {} (0 = fastest) =====",
            ["V", "VI", "VII", "VII+"].get(class).unwrap_or(&"?"),
            class + 1
        );
        for (budget, result) in &results {
            println!("--- {budget} iterations ---");
            let sets = rulesets_for_class(&result.rulesets, class);
            if sets.is_empty() {
                println!("  (no ruleset discovered for this class)");
                continue;
            }
            for rs in sets.iter().take(3) {
                let comparison = compare_to_canonical(rs, &canonical.rulesets);
                match comparison {
                    Some(c) if *budget < total => {
                        for r in &c.shared {
                            println!("  {}", r.phrase(&sc.space));
                        }
                        for r in &c.extra {
                            println!("  {}  [extra]", r.phrase(&sc.space));
                        }
                        for r in &c.missing {
                            println!("  missing: {}", r.phrase(&sc.space));
                        }
                    }
                    _ => {
                        for line in dr_ml::render_ruleset(rs, &sc.space) {
                            println!("  {line}");
                        }
                    }
                }
                if !rs.pure {
                    println!("  (impure leaf: insufficient rules)");
                }
                println!("  · samples: {}", rs.samples);
                println!();
            }
        }
    }
    Ok(())
}
