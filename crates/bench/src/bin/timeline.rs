//! Timeline inspection: ASCII Gantt charts of the fastest and slowest
//! SpMV implementations, showing *why* the design rules hold — how the
//! fast implementation overlaps the halo exchange with the local
//! multiply, and where the slow one serializes.

use dr_dag::build_schedule;
use dr_sim::{execute_traced, CompiledProgram};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = dr_bench::scenario();
    eprintln!("benchmarking the full space to find the extremes …");
    let records = dr_bench::exhaustive_records(&sc);
    let fastest = records
        .iter()
        .min_by(|a, b| a.result.time().total_cmp(&b.result.time()))
        .ok_or("empty decision space")?;
    let slowest = records
        .iter()
        .max_by(|a, b| a.result.time().total_cmp(&b.result.time()))
        .ok_or("empty decision space")?;

    let platform = sc.platform.clone().noiseless();
    for (tag, rec) in [("fastest", fastest), ("slowest", slowest)] {
        let schedule = build_schedule(&sc.space, &rec.traversal);
        let prog = CompiledProgram::compile(&schedule, &sc.workload)?;
        let (outcome, trace) = execute_traced(&prog, &platform, &mut SmallRng::seed_from_u64(1))?;
        println!(
            "== {tag} implementation: {} ==",
            dr_bench::us(outcome.time())
        );
        let order: Vec<&str> = rec
            .traversal
            .steps
            .iter()
            .map(|p| sc.space.ops()[p.op].name.as_str())
            .collect();
        println!("issue order: {}", order.join(" → "));
        println!("rank 1 timeline (spans marked by first letter of the op):");
        print!("{}", trace.ascii_gantt(1, 100));
        println!();
    }
    Ok(())
}
