//! Figure 6: a six-leaf decision tree for the SpMV space, with the
//! root-to-leaf paths rendered as design rules per performance class.

use dr_ml::{extract_rulesets, featurize, label_times, DecisionTree, TrainConfig};

fn main() {
    let sc = dr_bench::scenario();
    eprintln!("benchmarking the full space …");
    let records = dr_bench::exhaustive_records(&sc);
    let times: Vec<f64> = records.iter().map(|r| r.result.time()).collect();
    let labeling = label_times(&times, &Default::default());
    let traversals: Vec<&dr_dag::Traversal> = records.iter().map(|r| &r.traversal).collect();
    let features = featurize(&sc.space, &traversals);

    // The paper's intermediate tree: six leaves, depth limited to five.
    let cfg = TrainConfig {
        max_leaf_nodes: Some(6),
        max_depth: Some(5),
        ..Default::default()
    };
    let tree = DecisionTree::fit(
        &features.matrix,
        &labeling.labels,
        labeling.num_classes,
        &cfg,
    );

    println!("== Figure 6: six-leaf decision tree ==");
    println!(
        "leaves {}, depth {}, training error {:.4}",
        tree.num_leaves(),
        tree.depth(),
        tree.error(&features.matrix, &labeling.labels)
    );
    println!();
    print_node(&tree, &features, &sc.space, 0, 0);

    println!();
    println!("== Feature importances (Gini mean decrease) ==");
    let importances = dr_ml::feature_importances(&tree, features.num_features(), &cfg);
    let mut ranked: Vec<(usize, f64)> = importances
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, v)| v > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (f, v) in ranked {
        println!(
            "  {:>6.1}%  {}",
            v * 100.0,
            features.features[f].phrase(&sc.space, true)
        );
    }

    println!();
    println!("== Rulesets (root-to-leaf paths) ==");
    let rulesets = extract_rulesets(&tree, &features);
    for (i, rs) in rulesets.iter().enumerate() {
        println!(
            "leaf {} -> class {} ({} samples{}):",
            i + 1,
            rs.class,
            rs.samples,
            if rs.pure {
                ""
            } else {
                ", impure: insufficient leaf budget"
            }
        );
        for line in dr_ml::render_ruleset(rs, &sc.space) {
            println!("    {line}");
        }
    }
}

fn print_node(
    tree: &DecisionTree,
    features: &dr_ml::FeatureSet,
    space: &dr_dag::DecisionSpace,
    node: usize,
    indent: usize,
) {
    let n = &tree.nodes()[node];
    let pad = "  ".repeat(indent);
    match n.feature {
        None => {
            println!("{pad}leaf: class {} samples {:?}", n.class(), n.raw_counts);
        }
        Some(f) => {
            println!(
                "{pad}[{}?] samples {:?}",
                features.features[f].phrase(space, true),
                n.raw_counts
            );
            println!("{pad}├─ no:");
            print_node(tree, features, space, n.left, indent + 1);
            println!("{pad}└─ yes:");
            print_node(tree, features, space, n.right, indent + 1);
        }
    }
}
