//! Search-strategy ablation (paper Section VI future work): MCTS versus
//! uniform random sampling at equal rollout budgets, scored by Fig.-7
//! labeling accuracy and by coverage of the fastest class.

use dr_core::{labeling_accuracy, mine_rules, run_pipeline_instrumented, Strategy};
use dr_mcts::MctsConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = dr_bench::scenario();
    let total = sc.space.count_traversals() as usize;
    eprintln!("building the exhaustive ground truth ({total} implementations) …");
    let records = dr_bench::exhaustive_records(&sc);
    let ground_truth: Vec<_> = records
        .iter()
        .map(|r| (r.traversal.clone(), r.result.time()))
        .collect();
    let canonical = mine_rules(&sc.space, records, &dr_bench::pipeline_config());
    let fastest_hi = canonical.labeling.class_ranges[0].1;

    println!("== Ablation: MCTS vs uniform random sampling ==");
    println!(
        "{:>10}  {:>18}  {:>18}",
        "budget", "mcts acc/expl/fast", "random acc/expl/fast"
    );
    for budget in [50usize, 100, 200, 400, 800] {
        let mut row = format!("{budget:>10}");
        for strategy in [
            Strategy::Mcts {
                iterations: budget,
                config: MctsConfig {
                    seed: dr_bench::seed(),
                    ..Default::default()
                },
            },
            Strategy::Random {
                iterations: budget,
                seed: dr_bench::seed(),
            },
        ] {
            let run = run_pipeline_instrumented(
                &sc.space,
                &sc.workload,
                &sc.platform,
                strategy,
                &dr_bench::pipeline_config(),
            )?;
            // The per-iteration telemetry is the convergence curve
            // (best_time vs iteration) used by EXPERIMENTS.md.
            dr_bench::write_artifact(
                &format!("ablation_{}_{budget}.csv", strategy.name()),
                &run.telemetry.to_csv(),
            );
            let result = run.result;
            let report = labeling_accuracy(&sc.space, &result, &ground_truth, 0.02);
            // How many implementations of the true fastest class did the
            // strategy actually visit?
            let fast_seen = result
                .records
                .iter()
                .filter(|r| r.result.time() <= fastest_hi * 1.001)
                .count();
            row.push_str(&format!(
                "  {:>6.1}% {:>4} {:>4}",
                report.accuracy() * 100.0,
                result.records.len(),
                fast_seen
            ));
        }
        println!("{row}");
    }
    println!();
    println!("acc = Fig.-7 labeling accuracy; expl = distinct implementations");
    println!("explored; fast = explored implementations in the true fastest class");
    Ok(())
}
