//! Table I substitute: the simulated platform description. The paper ran
//! on a Perlmutter node (AMD EPYC 7713 + A100, Cray-MPICH); the
//! reproduction substitutes a parametric discrete-event model with
//! first-order magnitudes from public microbenchmarks.

use dr_spmv::GpuModel;

fn main() {
    let sc = dr_bench::scenario();
    let p = &sc.platform;
    let g = GpuModel::default();
    println!("== Table I (simulated): platform description ==");
    println!(
        "{:<28} {}",
        "kernel launch overhead",
        dr_bench::us(p.kernel_launch_overhead)
    );
    println!(
        "{:<28} {}",
        "cudaEventRecord overhead",
        dr_bench::us(p.event_record_overhead)
    );
    println!(
        "{:<28} {}",
        "cudaEventSynchronize ovh.",
        dr_bench::us(p.event_sync_overhead)
    );
    println!(
        "{:<28} {}",
        "cudaStreamWaitEvent ovh.",
        dr_bench::us(p.stream_wait_overhead)
    );
    println!(
        "{:<28} {}",
        "MPI_Isend overhead",
        dr_bench::us(p.isend_overhead)
    );
    println!(
        "{:<28} {}",
        "MPI_Irecv overhead",
        dr_bench::us(p.irecv_overhead)
    );
    println!(
        "{:<28} {}",
        "MPI_Wait overhead",
        dr_bench::us(p.wait_overhead)
    );
    println!("{:<28} {}", "network latency", dr_bench::us(p.net_latency));
    println!(
        "{:<28} {:.1} GB/s",
        "network bandwidth",
        p.net_bandwidth / 1e9
    );
    println!("{:<28} {} B", "eager threshold", p.eager_threshold);
    println!("{:<28} {}", "inter-stream contention", p.gpu_contention);
    println!("{:<28} sigma = {}", "measurement noise", p.noise.sigma);
    println!();
    println!("== GPU kernel model (A100-like magnitudes) ==");
    println!(
        "{:<28} {} s/nnz",
        "SpMV time per non-zero", g.spmv_sec_per_nnz
    );
    println!("{:<28} {}", "SpMV fixed cost", dr_bench::us(g.spmv_fixed));
    println!(
        "{:<28} {} s/elem",
        "pack gather per element", g.gather_sec_per_elem
    );
    println!("{:<28} {}", "pack fixed cost", dr_bench::us(g.gather_fixed));
    println!("{:<28} {:.1} GB/s", "H2D bandwidth", g.h2d_bandwidth / 1e9);
    println!("{:<28} {}", "H2D fixed cost", dr_bench::us(g.h2d_fixed));
}
