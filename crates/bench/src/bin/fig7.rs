//! Figure 7: effect of MCTS iterations on labeling accuracy. Rules are
//! mined from a budgeted MCTS exploration, every implementation in the
//! space is classified with them, and the accuracy is the proportion
//! whose exhaustively-measured time falls inside the predicted class's
//! performance range.

use dr_core::{labeling_accuracy, mine_rules, run_pipeline_instrumented, Strategy};
use dr_mcts::MctsConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = dr_bench::scenario();
    let total = sc.space.count_traversals() as usize;
    eprintln!("building the exhaustive ground truth ({total} implementations) …");
    let records = dr_bench::exhaustive_records(&sc);
    let ground_truth: Vec<_> = records
        .iter()
        .map(|r| (r.traversal.clone(), r.result.time()))
        .collect();

    println!("== Figure 7: MCTS iterations vs labeling accuracy ==");
    println!(
        "{:>10}  {:>9}  {:>8}  {:>8}",
        "iterations", "explored", "classes", "accuracy"
    );
    let budgets = [50usize, 100, 200, 400, 800, total];
    for &budget in &budgets {
        let result = if budget >= total {
            mine_rules(&sc.space, records.clone(), &dr_bench::pipeline_config())
        } else {
            let strategy = Strategy::Mcts {
                iterations: budget,
                config: MctsConfig {
                    seed: dr_bench::seed(),
                    ..Default::default()
                },
            };
            let run = run_pipeline_instrumented(
                &sc.space,
                &sc.workload,
                &sc.platform,
                strategy,
                &dr_bench::pipeline_config(),
            )?;
            dr_bench::write_artifact(&format!("fig7_report_{budget}.json"), &run.report.to_json());
            dr_bench::write_artifact(
                &format!("fig7_telemetry_{budget}.csv"),
                &run.telemetry.to_csv(),
            );
            run.result
        };
        let report = labeling_accuracy(&sc.space, &result, &ground_truth, 0.02);
        println!(
            "{:>10}  {:>9}  {:>8}  {:>7.1}%",
            budget,
            result.records.len(),
            result.labeling.num_classes,
            report.accuracy() * 100.0
        );
    }
    println!();
    println!("(paper: accuracy approaches ~100% by 200 iterations on its space)");
    Ok(())
}
