//! Figure 4: automatic class labeling — the sorted measurement data, the
//! step-kernel convolution, and the detected class boundaries.

use dr_ml::{label_times, LabelingConfig};

fn main() {
    let sc = dr_bench::scenario();
    eprintln!("benchmarking the full space …");
    let records = dr_bench::exhaustive_records(&sc);
    let times: Vec<f64> = records.iter().map(|r| r.result.time()).collect();
    let labeling = label_times(&times, &LabelingConfig::default());

    println!("== Figure 4a: sorted measurements ==");
    println!("{}", dr_bench::ascii_plot(&labeling.sorted_times, 10, 72));

    println!("== Figure 4b: step-kernel convolution ==");
    println!(
        "{}",
        dr_bench::ascii_plot(&labeling.convolution.values, 10, 72)
    );

    println!("== Figure 4c: detected class boundaries ==");
    println!("classes: {}", labeling.num_classes);
    for (c, &(lo, hi)) in labeling.class_ranges.iter().enumerate() {
        let members = labeling.labels.iter().filter(|&&l| l == c).count();
        println!(
            "  class {c}: {} implementations, {} .. {}",
            members,
            dr_bench::us(lo),
            dr_bench::us(hi)
        );
    }
    println!("boundaries at sorted positions: {:?}", labeling.boundaries);
}
