//! Operation-granularity ablation (paper Section III-A): the coarse DAG
//! (one Pack/PostSend/… vertex for all peers) against the fine-grained
//! per-neighbour DAG. Finer granularity removes false dependencies — the
//! best implementation can only get faster — but the space grows by
//! orders of magnitude, so a fixed MCTS budget covers proportionally less
//! of it.

use dr_core::{run_pipeline, Strategy};
use dr_mcts::MctsConfig;
use dr_spmv::SpmvScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = std::env::var("DR_SCALE").as_deref() == Ok("small");
    let seed = dr_bench::seed();
    let (coarse, fine) = if small {
        (SpmvScenario::small(seed), {
            use dr_spmv::{BandedSpec, GpuModel, Granularity, SpmvDagConfig};
            SpmvScenario::build(
                &BandedSpec::small(seed),
                4,
                2,
                &SpmvDagConfig {
                    with_unpack: true,
                    granularity: Granularity::PerNeighbor,
                },
                &GpuModel::default(),
                dr_sim::Platform::perlmutter_like(),
            )
        })
    } else {
        (SpmvScenario::paper(seed), SpmvScenario::paper_fine(seed))
    };

    println!("== Ablation: operation granularity ==");
    println!(
        "coarse space : {:>24} traversals",
        coarse.space.count_traversals()
    );
    println!(
        "fine space   : {:>24} traversals",
        fine.space.count_traversals()
    );
    println!();
    println!(
        "{:>8}  {:>14} {:>9}  {:>14} {:>9}",
        "budget", "coarse best µs", "classes", "fine best µs", "classes"
    );
    for budget in [100usize, 300, 600] {
        let mut row = format!("{budget:>8}");
        for sc in [&coarse, &fine] {
            let result = run_pipeline(
                &sc.space,
                &sc.workload,
                &sc.platform,
                Strategy::Mcts {
                    iterations: budget,
                    config: MctsConfig {
                        seed,
                        ..Default::default()
                    },
                },
                &dr_bench::pipeline_config(),
            )?;
            let best = result.times().into_iter().fold(f64::INFINITY, f64::min);
            row.push_str(&format!(
                "  {:>13.2} {:>9}",
                best * 1e6,
                result.labeling.num_classes
            ));
        }
        println!("{row}");
    }
    println!();
    println!(
        "Fine granularity removes false dependencies (e.g. PostSend-down no\n\
         longer waits on Pack-up), but the space grows by six orders of\n\
         magnitude — at these budgets the coarse DAG's best implementation\n\
         wins, which is exactly the granularity trade-off Section III-A\n\
         warns about."
    );
    Ok(())
}
