//! End-to-end pipeline benchmark: runs the full explore→label→
//! featurize→train pipeline on the SpMV scenario once per search
//! strategy (exhaustive, MCTS, random), reports per-phase wall-clock
//! times and exploration throughput, and writes the measurements to
//! `BENCH_pipeline.json` (also into `DR_ARTIFACTS` when set).
//!
//! `DR_SCALE=small` runs on the scaled-down instance; `DR_SEED`
//! overrides the master seed; `DR_THREADS` sets the exploration worker
//! count for every leg (default 1). Phase times come from the same
//! instrumented pipeline the `dr-rules` driver uses, so the JSON is
//! directly comparable to run-report and ledger phase entries.

use dr_core::{run_pipeline_instrumented, InstrumentedRun, PipelineConfig, Strategy};
use dr_mcts::MctsConfig;
use dr_obs::json;
use dr_spmv::SpmvScenario;

const MCTS_BUDGET: usize = 400;

fn run_leg(sc: &SpmvScenario, strategy: Strategy) -> Result<InstrumentedRun, dr_sim::SimError> {
    // The quick measurement protocol: this benchmark times the pipeline
    // machinery per phase, not the simulated measurements themselves.
    run_pipeline_instrumented(
        &sc.space,
        &sc.workload,
        &sc.platform,
        strategy,
        &PipelineConfig::quick(),
    )
}

fn leg_json(run: &InstrumentedRun, strategy: &str) -> String {
    let explore_s = run.report.phases.get("explore").unwrap_or(0.0);
    let records = run.result.records.len();
    let throughput = if explore_s > 0.0 {
        records as f64 / explore_s
    } else {
        0.0
    };
    format!(
        "{{\"strategy\": \"{}\", \"threads\": {}, \"records\": {records}, \
         \"records_per_sec\": {}, \"total_s\": {}, \"phases\": {}}}",
        json::escape(strategy),
        run.threads,
        json::number(throughput),
        json::number(run.report.phases.total()),
        run.report.phases.to_json()
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = dr_bench::scenario();
    let seed = dr_bench::seed();
    println!("== Pipeline phase benchmark ==");
    println!("space: {} traversals", sc.space.count_traversals());

    let legs = [
        ("exhaustive", Strategy::Exhaustive),
        (
            "mcts",
            Strategy::Mcts {
                iterations: MCTS_BUDGET,
                config: MctsConfig {
                    seed,
                    ..Default::default()
                },
            },
        ),
        (
            "random",
            Strategy::Random {
                iterations: MCTS_BUDGET,
                seed,
            },
        ),
    ];

    let mut legs_json: Vec<String> = Vec::new();
    for (name, strategy) in legs {
        let run = run_leg(&sc, strategy)?;
        let explore_s = run.report.phases.get("explore").unwrap_or(0.0);
        println!(
            "{name:>10}: {} records in {:.3} s explore ({:.1} records/s), total {:.3} s",
            run.result.records.len(),
            explore_s,
            run.result.records.len() as f64 / explore_s.max(f64::MIN_POSITIVE),
            run.report.phases.total()
        );
        print!("{}", run.report.phases.render_text());
        legs_json.push(leg_json(&run, name));
    }

    let report = format!(
        "{{\"scenario\": \"{}\", \"seed\": {seed}, \"mcts_budget\": {MCTS_BUDGET}, \
         \"space_traversals\": {}, \"legs\": [{}]}}",
        json::escape(match std::env::var("DR_SCALE").as_deref() {
            Ok("small") => "small",
            _ => "paper",
        }),
        sc.space.count_traversals(),
        legs_json.join(", ")
    );
    json::validate(&report)?;
    std::fs::write("BENCH_pipeline.json", &report)?;
    println!("wrote BENCH_pipeline.json");
    dr_bench::write_artifact("BENCH_pipeline.json", &report);
    Ok(())
}
