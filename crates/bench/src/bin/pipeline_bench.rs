//! End-to-end pipeline benchmark: runs the full explore→label→
//! featurize→train pipeline on the SpMV scenario once per search
//! strategy (exhaustive, MCTS, random), reports per-phase wall-clock
//! times and exploration throughput, and appends the measurements to
//! the `BENCH_pipeline.json` history (also written as a single-run
//! artifact into `DR_ARTIFACTS` when set).
//!
//! `DR_SCALE=small` runs on the scaled-down instance; `DR_SEED`
//! overrides the master seed. The measurement protocol lives in
//! [`dr_bench::harness::pipeline_report`], shared with the
//! `dr-rules <scenario> bench` subcommand, so entries appended here and
//! there are directly comparable.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = dr_bench::harness::pipeline_report(
        dr_bench::scale(),
        dr_bench::seed(),
        &mut std::io::stdout(),
    )?;
    let entries = dr_bench::append_history(
        std::path::Path::new("BENCH_pipeline.json"),
        "pipeline",
        &report,
    )?;
    println!("appended to BENCH_pipeline.json ({entries} entries)");
    dr_bench::write_artifact("BENCH_pipeline.json", &report);
    Ok(())
}
