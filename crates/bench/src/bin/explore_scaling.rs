//! Thread-scaling benchmark of the parallel exploration engine: times
//! the exhaustive sweep of the canonical SpMV space at 1/2/4/8 worker
//! threads plus a root-parallel MCTS leg (which exercises the shared
//! result cache), verifies every leg reproduces the serial record set,
//! and appends the measurements to the `BENCH_explore.json` history.
//!
//! `DR_SCALE=small` runs on the scaled-down instance; `DR_SEED`
//! overrides the master seed. Honest-measurement note: the JSON records
//! `available_parallelism` alongside the speedups — on a single-CPU
//! container the engine cannot (and does not pretend to) run faster
//! than serial. The measurement protocol lives in
//! [`dr_bench::harness::explore_report`], shared with the
//! `dr-rules <scenario> bench` subcommand.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = dr_bench::harness::explore_report(
        dr_bench::scale(),
        dr_bench::seed(),
        &mut std::io::stdout(),
    )?;
    let entries = dr_bench::append_history(
        std::path::Path::new("BENCH_explore.json"),
        "explore",
        &report,
    )?;
    println!("appended to BENCH_explore.json ({entries} entries)");
    dr_bench::write_artifact("BENCH_explore.json", &report);
    Ok(())
}
