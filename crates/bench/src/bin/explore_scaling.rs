//! Thread-scaling benchmark of the parallel exploration engine: times
//! the exhaustive sweep of the canonical SpMV space at 1/2/4/8 worker
//! threads plus a root-parallel MCTS leg (which exercises the shared
//! result cache), verifies every leg reproduces the serial record set,
//! and writes the measurements to `BENCH_explore.json`.
//!
//! `DR_SCALE=small` runs on the scaled-down instance; `DR_SEED`
//! overrides the master seed. Honest-measurement note: the JSON records
//! `available_parallelism` alongside the speedups — on a single-CPU
//! container the engine cannot (and does not pretend to) run faster
//! than serial.

use dr_core::{explore_parallel, ExploreOutput, Strategy};
use dr_mcts::{MctsConfig, SimEvaluator};
use dr_obs::json;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Leg {
    strategy: &'static str,
    threads: usize,
    wall_s: f64,
    samples: usize,
    cache_hits: u64,
    cache_misses: u64,
}

fn run_leg(
    sc: &dr_spmv::SpmvScenario,
    strategy: Strategy,
    threads: usize,
) -> Result<(Leg, ExploreOutput), dr_sim::SimError> {
    let start = Instant::now();
    // The quick measurement protocol: this benchmark times the engine
    // (queueing, caching, merging), not the measurements themselves, and
    // the full protocol would only scale every leg by a constant.
    let cfg = dr_sim::BenchConfig::quick();
    let out = explore_parallel(
        &sc.space,
        || SimEvaluator::new(&sc.space, &sc.workload, &sc.platform, cfg),
        strategy,
        threads,
    )?;
    let wall_s = start.elapsed().as_secs_f64();
    let leg = Leg {
        strategy: strategy.name(),
        threads,
        wall_s,
        samples: out.records.len(),
        cache_hits: out.cache.hits,
        cache_misses: out.cache.misses,
    };
    Ok((leg, out))
}

fn record_set(out: &ExploreOutput) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = out
        .records
        .iter()
        .map(|r| (r.traversal.canonical_hash(), r.result.time().to_bits()))
        .collect();
    v.sort_unstable();
    v
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = dr_bench::scenario();
    let seed = dr_bench::seed();
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== Parallel exploration scaling ==");
    println!(
        "space: {} traversals; host parallelism: {available}",
        sc.space.count_traversals()
    );

    let mut legs: Vec<Leg> = Vec::new();
    let mut serial_wall = f64::NAN;
    let mut serial_set: Vec<(u64, u64)> = Vec::new();
    println!(
        "{:>10}  {:>7}  {:>9}  {:>11}  {:>7}  {:>10}",
        "strategy", "threads", "wall [s]", "samples/s", "speedup", "cache h/m"
    );
    for &threads in &THREAD_COUNTS {
        let (leg, out) = run_leg(&sc, Strategy::Exhaustive, threads)?;
        if threads == 1 {
            serial_wall = leg.wall_s;
            serial_set = record_set(&out);
        } else if record_set(&out) != serial_set {
            return Err("parallel exhaustive diverged from the serial record set".into());
        }
        println!(
            "{:>10}  {:>7}  {:>9.3}  {:>11.1}  {:>6.2}x  {:>4}/{:<5}",
            leg.strategy,
            leg.threads,
            leg.wall_s,
            leg.samples as f64 / leg.wall_s,
            serial_wall / leg.wall_s,
            leg.cache_hits,
            leg.cache_misses
        );
        legs.push(leg);
    }

    // Root-parallel MCTS leg: workers share one result cache, so its hit
    // rate measures how much re-simulation the cache absorbed.
    let budget = 400usize;
    let mcts = Strategy::Mcts {
        iterations: budget,
        config: MctsConfig {
            seed,
            ..Default::default()
        },
    };
    let (mcts_leg, mcts_out) = run_leg(&sc, mcts, 4)?;
    println!(
        "{:>10}  {:>7}  {:>9.3}  {:>11.1}  {:>7}  {:>4}/{:<5}",
        "mcts",
        mcts_leg.threads,
        mcts_leg.wall_s,
        mcts_leg.samples as f64 / mcts_leg.wall_s,
        "-",
        mcts_leg.cache_hits,
        mcts_leg.cache_misses
    );
    println!(
        "mcts cache hit rate: {:.1}% over {} evaluation requests",
        mcts_out.cache.hit_rate() * 100.0,
        mcts_out.cache.hits + mcts_out.cache.misses
    );

    let mut legs_json: Vec<String> = legs
        .iter()
        .map(|l| leg_json(l, serial_wall / l.wall_s))
        .collect();
    legs_json.push(leg_json(&mcts_leg, f64::NAN));
    let report = format!(
        "{{\"scenario\": \"{}\", \"seed\": {seed}, \"available_parallelism\": {available}, \
         \"space_traversals\": {}, \"mcts_budget\": {budget}, \
         \"mcts_cache_hit_rate\": {}, \"legs\": [{}]}}",
        json::escape(match std::env::var("DR_SCALE").as_deref() {
            Ok("small") => "small",
            _ => "paper",
        }),
        sc.space.count_traversals(),
        json::number(mcts_out.cache.hit_rate()),
        legs_json.join(", ")
    );
    json::validate(&report)?;
    std::fs::write("BENCH_explore.json", &report)?;
    println!("wrote BENCH_explore.json");
    dr_bench::write_artifact("BENCH_explore.json", &report);
    Ok(())
}

fn leg_json(l: &Leg, speedup: f64) -> String {
    format!(
        "{{\"strategy\": \"{}\", \"threads\": {}, \"wall_s\": {}, \"samples\": {}, \
         \"samples_per_sec\": {}, \"speedup_vs_serial\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}}}",
        json::escape(l.strategy),
        l.threads,
        json::number(l.wall_s),
        l.samples,
        json::number(l.samples as f64 / l.wall_s),
        if speedup.is_nan() {
            "null".to_string()
        } else {
            json::number(speedup)
        },
        l.cache_hits,
        l.cache_misses
    )
}
