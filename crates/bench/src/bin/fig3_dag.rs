//! Figure 3 / Table II: the SpMV program DAG, its decision space, and the
//! size of the implementation space (the paper's "2036 implementations").

use dr_dag::DecisionKind;

fn main() {
    let sc = dr_bench::scenario();
    let dag = sc.space.dag();

    println!("== Figure 3c: SpMV program DAG ==");
    for v in dag.user_vertices() {
        let vert = dag.vertex(v);
        let succs: Vec<&str> = dag
            .succs(v)
            .iter()
            .map(|&s| dag.vertex(s).name.as_str())
            .collect();
        println!(
            "  {:<10} [{:?}] -> {}",
            vert.name,
            vert.kind(),
            succs.join(", ")
        );
    }

    println!();
    println!("== Decision operations (Table II + Table III sync ops) ==");
    for op in sc.space.ops() {
        let kind = match op.kind {
            DecisionKind::Cpu(_) => "CPU",
            DecisionKind::Gpu(_) => "GPU (stream-bound at search time)",
            DecisionKind::CerAfter(_) => "sync: cudaEventRecord",
            DecisionKind::CesBefore(_) => "sync: cudaEventSynchronize",
        };
        println!("  {:<20} {}", op.name, kind);
    }

    println!();
    println!("streams               : {}", sc.space.num_streams());
    println!(
        "implementation space  : {} traversals (paper: 2036 for its exact DAG)",
        sc.space.count_traversals()
    );
}
