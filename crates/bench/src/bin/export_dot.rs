//! Exports Graphviz sources for the paper's structural figures: the SpMV
//! program DAG (Fig. 3c), its decision space, and the six-leaf decision
//! tree (Fig. 6). Files are written to `target/figures/`.

use dr_dag::{dag_to_dot, space_to_dot};
use dr_ml::{featurize, label_times, tree_to_dot, DecisionTree, TrainConfig};
use std::path::Path;

fn main() -> std::io::Result<()> {
    let sc = dr_bench::scenario();
    let dir = Path::new("target/figures");
    std::fs::create_dir_all(dir)?;

    std::fs::write(dir.join("fig3_dag.dot"), dag_to_dot(sc.space.dag()))?;
    std::fs::write(dir.join("fig3_space.dot"), space_to_dot(&sc.space))?;
    println!("wrote {}", dir.join("fig3_dag.dot").display());
    println!("wrote {}", dir.join("fig3_space.dot").display());

    eprintln!("benchmarking the full space for the tree …");
    let records = dr_bench::exhaustive_records(&sc);
    let times: Vec<f64> = records.iter().map(|r| r.result.time()).collect();
    let labeling = label_times(&times, &Default::default());
    let traversals: Vec<&dr_dag::Traversal> = records.iter().map(|r| &r.traversal).collect();
    let features = featurize(&sc.space, &traversals);
    let cfg = TrainConfig {
        max_leaf_nodes: Some(6),
        max_depth: Some(5),
        ..Default::default()
    };
    let tree = DecisionTree::fit(
        &features.matrix,
        &labeling.labels,
        labeling.num_classes,
        &cfg,
    );
    let feature_names: Vec<String> = features
        .features
        .iter()
        .map(|f| f.phrase(&sc.space, true))
        .collect();
    let class_names: Vec<String> = (0..labeling.num_classes)
        .map(|c| format!("class {c}"))
        .collect();
    std::fs::write(
        dir.join("fig6_tree.dot"),
        tree_to_dot(&tree, &feature_names, &class_names),
    )?;
    println!("wrote {}", dir.join("fig6_tree.dot").display());
    println!("render with: dot -Tpdf target/figures/fig6_tree.dot -o fig6.pdf");
    Ok(())
}
