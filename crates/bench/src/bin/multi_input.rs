//! Multi-input rule generalization (paper future work §VI): explore three
//! banded matrices with different bandwidths — which shifts the
//! local/remote balance and the message sizes — and train one decision
//! tree whose feature vectors include *input features*. The harness
//! reports whether the tree actually needs them.

use dr_core::{explore, mine_rules_multi, InputFeature, InputRun, Strategy};
use dr_mcts::{MctsConfig, SimEvaluator};
use dr_spmv::{banded_matrix, BandedSpec, DistributedSpmv, GpuModel, SpmvDagConfig, SpmvScenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = dr_bench::seed();
    let small = std::env::var("DR_SCALE").as_deref() == Ok("small");
    let base = if small {
        BandedSpec::small(seed)
    } else {
        BandedSpec::paper(seed)
    };
    let iterations = 400;

    // Three inputs: narrow, paper, and wide band.
    let variants = [
        ("bandwidth n/16", base.bandwidth / 4),
        ("bandwidth n/4 (paper)", base.bandwidth),
        ("bandwidth n/2", base.bandwidth * 2),
    ];

    let mut runs = Vec::new();
    let mut reference_space = None;
    for (tag, bandwidth) in variants {
        eprintln!("exploring {tag} …");
        let spec = BandedSpec { bandwidth, ..base };
        let sc = SpmvScenario::build(
            &spec,
            4,
            2,
            &SpmvDagConfig::default(),
            &GpuModel::default(),
            dr_sim::Platform::perlmutter_like(),
        );
        // Input features from the decomposition's real statistics.
        let a = banded_matrix(&spec);
        let dist = DistributedSpmv::new(&a, 4);
        let interior = &dist.ranks[1];
        let remote_dominant = interior.a_r.nnz() > interior.a_l.nnz();
        let max_msg = interior
            .send_lists
            .iter()
            .map(|(_, l)| l.len() as u64 * 8)
            .max()
            .unwrap_or(0);
        let eager = max_msg <= sc.platform.eager_threshold;
        let eval = SimEvaluator::new(
            &sc.space,
            &sc.workload,
            &sc.platform,
            dr_bench::bench_config(),
        );
        let records = explore(
            &sc.space,
            eval,
            Strategy::Mcts {
                iterations,
                config: MctsConfig {
                    seed,
                    ..Default::default()
                },
            },
        )?;
        runs.push(InputRun {
            tag: tag.to_string(),
            records,
            input_features: vec![
                InputFeature {
                    name: "remote-dominant".into(),
                    value: remote_dominant,
                },
                InputFeature {
                    name: "messages-eager".into(),
                    value: eager,
                },
            ],
        });
        reference_space.get_or_insert(sc.space);
    }
    let space = reference_space.ok_or("no inputs were explored")?;

    let result = mine_rules_multi(&space, &runs, &dr_bench::pipeline_config());
    println!("== Multi-input rule generalization ==");
    for (run, labeling) in runs.iter().zip(&result.labelings) {
        println!(
            "  {:<24} {} records, {} classes, input features: {:?}",
            run.tag,
            run.records.len(),
            labeling.num_classes,
            run.input_features
                .iter()
                .map(|f| (f.name.as_str(), f.value))
                .collect::<Vec<_>>()
        );
    }
    println!();
    println!(
        "pooled tree: {} leaves, depth {}, training error {:.4}",
        result.search.tree.num_leaves(),
        result.search.tree.depth(),
        result.search.error
    );
    let used = result.used_input_features();
    if used.is_empty() {
        println!("input features unused: one ruleset fits all three inputs");
    } else {
        println!("input features the tree splits on: {used:?}");
        println!("(the rules are input-conditional, as the paper anticipated)");
    }
    Ok(())
}
