//! Figure 1: the sorted performance of every implementation of the
//! distributed SpMV. All implementations use the same kernels and MPI
//! functions; only the order of operations and stream assignments change.
//! The paper reports a 1.47× fastest-to-slowest spread over 2036
//! implementations.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = dr_bench::scenario();
    let count = sc.space.count_traversals();
    eprintln!("enumerating + benchmarking {count} implementations …");
    let records = dr_bench::exhaustive_records(&sc);

    let mut times: Vec<f64> = records.iter().map(|r| r.result.time()).collect();
    times.sort_by(f64::total_cmp);
    let fastest = *times.first().ok_or("empty decision space")?;
    let slowest = *times.last().ok_or("empty decision space")?;

    println!("== Figure 1: sorted implementation performance ==");
    println!("implementations      : {}", times.len());
    println!("fastest              : {}", dr_bench::us(fastest));
    println!("slowest              : {}", dr_bench::us(slowest));
    println!(
        "slowest/fastest      : {:.2}x  (paper: 1.47x)",
        slowest / fastest
    );
    println!();
    println!("{}", dr_bench::ascii_plot(&times, 12, 72));
    println!("deciles (µs):");
    for d in 0..=10 {
        let idx = (d * (times.len() - 1)) / 10;
        println!("  {:>3}%  {}", d * 10, dr_bench::us(times[idx]));
    }
    Ok(())
}
