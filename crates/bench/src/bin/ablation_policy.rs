//! MCTS exploitation-policy ablation (paper Section VI): the paper's
//! coverage-range exploitation against classic minimizing UCT and pure
//! exploration, at equal rollout budgets. Coverage-range is designed to
//! map the *landscape* (good labels → good rules), while MeanTime is
//! designed to find a single *optimum* — this harness quantifies the
//! difference on both axes.

use dr_core::{labeling_accuracy, mine_rules, run_pipeline, Strategy};
use dr_mcts::{Exploitation, MctsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sc = dr_bench::scenario();
    let total = sc.space.count_traversals() as usize;
    eprintln!("building the exhaustive ground truth ({total} implementations) …");
    let records = dr_bench::exhaustive_records(&sc);
    let ground_truth: Vec<_> = records
        .iter()
        .map(|r| (r.traversal.clone(), r.result.time()))
        .collect();
    let canonical = mine_rules(&sc.space, records, &dr_bench::pipeline_config());
    let true_fastest = canonical.labeling.class_ranges[0].0;

    let policies = [
        ("coverage (paper)", Exploitation::CoverageRange),
        ("mean-time (UCT)", Exploitation::MeanTime),
        ("constant", Exploitation::Constant),
    ];
    println!("== Ablation: exploitation policy ==");
    println!(
        "{:>8}  {:<18} {:>9} {:>10} {:>12}",
        "budget", "policy", "accuracy", "best (µs)", "gap to opt"
    );
    for budget in [100usize, 200, 400] {
        for (name, policy) in policies {
            let result = run_pipeline(
                &sc.space,
                &sc.workload,
                &sc.platform,
                Strategy::Mcts {
                    iterations: budget,
                    config: MctsConfig {
                        exploitation: policy,
                        seed: dr_bench::seed(),
                        ..Default::default()
                    },
                },
                &dr_bench::pipeline_config(),
            )?;
            let report = labeling_accuracy(&sc.space, &result, &ground_truth, 0.02);
            let best = result.times().into_iter().fold(f64::INFINITY, f64::min);
            println!(
                "{:>8}  {:<18} {:>8.1}% {:>10.2} {:>11.1}%",
                budget,
                name,
                report.accuracy() * 100.0,
                best * 1e6,
                (best / true_fastest - 1.0) * 100.0
            );
        }
        println!();
    }
    Ok(())
}
