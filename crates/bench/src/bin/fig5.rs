//! Figure 5: training error and tree depth during the Algorithm 1
//! hyperparameter search (smallest leaf budget minimizing the error).

use dr_core::mine_rules;

fn main() {
    let sc = dr_bench::scenario();
    eprintln!("benchmarking the full space …");
    let records = dr_bench::exhaustive_records(&sc);
    let result = mine_rules(&sc.space, records, &dr_bench::pipeline_config());

    println!("== Figure 5: decision-tree hyperparameter search ==");
    println!(
        "{:>14}  {:>10}  {:>6}  {:>7}  accepted",
        "max_leaf_nodes", "error", "depth", "leaves"
    );
    for h in &result.search.history {
        println!(
            "{:>14}  {:>10.4}  {:>6}  {:>7}  {}",
            h.max_leaf_nodes,
            h.error,
            h.depth,
            h.leaves,
            if h.accepted { "yes" } else { "" }
        );
    }
    println!();
    println!(
        "selected: max_leaf_nodes = {}, error = {:.4}, depth = {}, leaves = {}",
        result.search.max_leaf_nodes,
        result.search.error,
        result.search.tree.depth(),
        result.search.tree.num_leaves()
    );
    println!("(paper: settles on 13 leaf nodes with depth 6)");
}
