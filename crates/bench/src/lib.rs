//! # dr-bench — figure/table regeneration harness
//!
//! One binary per figure/table of the paper's evaluation (see DESIGN.md
//! for the index), plus Criterion microbenchmarks of the substrates.
//!
//! All binaries accept the environment variable `DR_SCALE=small` to run
//! on the scaled-down SpMV instance (fast, for smoke-testing the
//! harness); the default is the paper-scale instance (150 000-row banded
//! matrix, 4 ranks, 2 streams). `DR_SEED` overrides the master seed.
//! When `DR_ARTIFACTS=<dir>` is set, the `fig7`, `tables`, and
//! `ablation_search` binaries additionally write their run reports
//! (JSON) and per-iteration search telemetry (CSV) into that directory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dr_core::{explore, PipelineConfig, Strategy};
use dr_mcts::{ExploredRecord, SimEvaluator};
use dr_sim::BenchConfig;
use dr_spmv::SpmvScenario;

/// Master seed used by the harness unless `DR_SEED` overrides it.
pub const DEFAULT_SEED: u64 = 0xD5;

/// Reads the harness seed from `DR_SEED` (default [`DEFAULT_SEED`]).
pub fn seed() -> u64 {
    std::env::var("DR_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Builds the demonstration scenario: paper scale by default,
/// `DR_SCALE=small` for the fast variant.
pub fn scenario() -> SpmvScenario {
    match std::env::var("DR_SCALE").as_deref() {
        Ok("small") => SpmvScenario::small(seed()),
        _ => SpmvScenario::paper(seed()),
    }
}

/// The measurement protocol used by the harness: the paper's 0.01 s
/// measurements, 50 per implementation.
pub fn bench_config() -> BenchConfig {
    BenchConfig::default()
}

/// The pipeline configuration used by the harness. Linting is on so the
/// run reports written to `DR_ARTIFACTS` carry static-analysis counters.
pub fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        bench: bench_config(),
        lint: true,
        ..Default::default()
    }
}

/// Writes an observability artifact (run report, telemetry CSV) into the
/// `DR_ARTIFACTS` directory, creating it if necessary. A no-op when the
/// variable is unset; returns the path written to, if any.
pub fn write_artifact(name: &str, contents: &str) -> Option<std::path::PathBuf> {
    let dir = std::path::PathBuf::from(std::env::var_os("DR_ARTIFACTS")?);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create artifact dir {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Collects the exhaustive record set of the scenario — the canonical
/// dataset every figure derives from.
pub fn exhaustive_records(sc: &SpmvScenario) -> Vec<ExploredRecord> {
    let eval = SimEvaluator::new(&sc.space, &sc.workload, &sc.platform, bench_config());
    explore(&sc.space, eval, Strategy::Exhaustive).expect("SpMV scenario always executes")
}

/// Renders a crude ASCII plot of a series (for terminal-friendly figure
/// output), `height` rows tall.
pub fn ascii_plot(values: &[f64], height: usize, width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let i = c * values.len() / width;
            values[i]
        })
        .collect();
    let mut out = String::new();
    for row in (0..height).rev() {
        let lo = min + span * row as f64 / height as f64;
        for &v in &cols {
            out.push(if v >= lo { '█' } else { ' ' });
        }
        out.push('\n');
    }
    out
}

/// Formats seconds as microseconds with 2 decimals.
pub fn us(t: f64) -> String {
    format!("{:.2} µs", t * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_plot_has_requested_dimensions() {
        let p = ascii_plot(&[1.0, 2.0, 3.0, 4.0], 3, 10);
        let lines: Vec<&str> = p.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 10));
    }

    #[test]
    fn ascii_plot_empty_is_empty() {
        assert_eq!(ascii_plot(&[], 3, 10), "");
    }

    #[test]
    fn us_formats() {
        assert_eq!(us(1.5e-4), "150.00 µs");
    }

    #[test]
    fn write_artifact_respects_env_gate() {
        // Unset: a silent no-op. (Env mutation is safe here: this is the
        // only test touching DR_ARTIFACTS, and cargo runs each test
        // binary's tests in one process.)
        std::env::remove_var("DR_ARTIFACTS");
        assert_eq!(write_artifact("x.txt", "data"), None);
        // Set: creates the directory and writes the file.
        let dir = std::env::temp_dir().join(format!("dr-artifacts-{}", std::process::id()));
        std::env::set_var("DR_ARTIFACTS", &dir);
        let path = write_artifact("x.txt", "data").expect("artifact written");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "data");
        std::env::remove_var("DR_ARTIFACTS");
        std::fs::remove_dir_all(&dir).ok();
    }
}
