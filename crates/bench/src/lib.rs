//! # dr-bench — figure/table regeneration harness
//!
//! One binary per figure/table of the paper's evaluation (see DESIGN.md
//! for the index), plus Criterion microbenchmarks of the substrates.
//!
//! All binaries accept the environment variable `DR_SCALE=small` to run
//! on the scaled-down SpMV instance (fast, for smoke-testing the
//! harness); the default is the paper-scale instance (150 000-row banded
//! matrix, 4 ranks, 2 streams). `DR_SEED` overrides the master seed.
//! When `DR_ARTIFACTS=<dir>` is set, the `fig7`, `tables`, and
//! `ablation_search` binaries additionally write their run reports
//! (JSON) and per-iteration search telemetry (CSV) into that directory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;

use dr_core::{explore, PipelineConfig, Strategy};
use dr_mcts::{ExploredRecord, SimEvaluator};
use dr_sim::BenchConfig;
use dr_spmv::SpmvScenario;

/// Master seed used by the harness unless `DR_SEED` overrides it.
pub const DEFAULT_SEED: u64 = 0xD5;

/// Reads the harness seed from `DR_SEED` (default [`DEFAULT_SEED`]).
pub fn seed() -> u64 {
    std::env::var("DR_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// The harness scale name from `DR_SCALE`: `"small"` for the fast
/// variant, `"paper"` (the default) otherwise.
pub fn scale() -> &'static str {
    match std::env::var("DR_SCALE").as_deref() {
        Ok("small") => "small",
        _ => "paper",
    }
}

/// Builds the demonstration scenario: paper scale by default,
/// `DR_SCALE=small` for the fast variant.
pub fn scenario() -> SpmvScenario {
    harness::scenario_for(scale(), seed())
}

/// The measurement protocol used by the harness: the paper's 0.01 s
/// measurements, 50 per implementation.
pub fn bench_config() -> BenchConfig {
    BenchConfig::default()
}

/// The pipeline configuration used by the harness. Linting is on so the
/// run reports written to `DR_ARTIFACTS` carry static-analysis counters.
pub fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        bench: bench_config(),
        lint: true,
        ..Default::default()
    }
}

/// Writes an observability artifact (run report, telemetry CSV) into the
/// `DR_ARTIFACTS` directory, creating it if necessary. A no-op when the
/// variable is unset; returns the path written to, if any.
pub fn write_artifact(name: &str, contents: &str) -> Option<std::path::PathBuf> {
    let dir = std::path::PathBuf::from(std::env::var_os("DR_ARTIFACTS")?);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create artifact dir {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Schema tag of committed benchmark histories (mirrors
/// `dr_core::BENCH_SCHEMA`; duplicated here so the harness does not
/// need the comparison layer).
pub const BENCH_SCHEMA: &str = "dr-bench/v1";

/// Appends one benchmark run (a JSON object) to the history file at
/// `path`, creating a fresh `{"schema":"dr-bench/v1","kind":…,
/// "entries":[…]}` history when the file is missing or not a
/// recognized history. Returns the number of entries after the append.
///
/// The append is plain string surgery on the trailing `]}` — the
/// histories are committed artifacts, so their byte layout is under our
/// control — and the result is validated before being written.
pub fn append_history(
    path: &std::path::Path,
    kind: &str,
    entry: &str,
) -> Result<usize, Box<dyn std::error::Error>> {
    dr_obs::json::validate(entry)?;
    let existing = std::fs::read_to_string(path).ok().filter(|text| {
        dr_obs::json::parse(text)
            .ok()
            .and_then(|v| {
                Some(v.get("schema")?.as_str()? == BENCH_SCHEMA && v.get("kind")?.as_str()? == kind)
            })
            .unwrap_or(false)
    });
    let updated = match existing {
        Some(text) => {
            let trimmed = text.trim_end();
            let body = trimmed
                .strip_suffix("]}")
                .ok_or("history does not end in ]}")?;
            format!("{body},{entry}]}}")
        }
        None => {
            format!("{{\"schema\":\"{BENCH_SCHEMA}\",\"kind\":\"{kind}\",\"entries\":[{entry}]}}")
        }
    };
    dr_obs::json::validate(&updated)?;
    let count = dr_obs::json::parse(&updated)?
        .get("entries")
        .and_then(|e| e.as_arr().map(|a| a.len()))
        .unwrap_or(0);
    std::fs::write(path, &updated)?;
    Ok(count)
}

/// Collects the exhaustive record set of the scenario — the canonical
/// dataset every figure derives from.
pub fn exhaustive_records(sc: &SpmvScenario) -> Vec<ExploredRecord> {
    let eval = SimEvaluator::new(&sc.space, &sc.workload, &sc.platform, bench_config());
    explore(&sc.space, eval, Strategy::Exhaustive).expect("SpMV scenario always executes")
}

/// Renders a crude ASCII plot of a series (for terminal-friendly figure
/// output), `height` rows tall.
pub fn ascii_plot(values: &[f64], height: usize, width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let i = c * values.len() / width;
            values[i]
        })
        .collect();
    let mut out = String::new();
    for row in (0..height).rev() {
        let lo = min + span * row as f64 / height as f64;
        for &v in &cols {
            out.push(if v >= lo { '█' } else { ' ' });
        }
        out.push('\n');
    }
    out
}

/// Formats seconds as microseconds with 2 decimals.
pub fn us(t: f64) -> String {
    format!("{:.2} µs", t * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_plot_has_requested_dimensions() {
        let p = ascii_plot(&[1.0, 2.0, 3.0, 4.0], 3, 10);
        let lines: Vec<&str> = p.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 10));
    }

    #[test]
    fn ascii_plot_empty_is_empty() {
        assert_eq!(ascii_plot(&[], 3, 10), "");
    }

    #[test]
    fn us_formats() {
        assert_eq!(us(1.5e-4), "150.00 µs");
    }

    #[test]
    fn append_history_creates_then_grows_then_resets() {
        let path = std::env::temp_dir().join(format!("dr-bench-hist-{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();
        let entry = "{\"scenario\":\"small\",\"legs\":[]}";
        assert_eq!(append_history(&path, "pipeline", entry).unwrap(), 1);
        assert_eq!(append_history(&path, "pipeline", entry).unwrap(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let v = dr_obs::json::parse(&text).unwrap();
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(BENCH_SCHEMA));
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("pipeline"));
        assert_eq!(v.get("entries").and_then(|e| e.as_arr()).unwrap().len(), 2);
        // A different kind (or garbage) starts a fresh history.
        assert_eq!(append_history(&path, "explore", entry).unwrap(), 1);
        std::fs::write(&path, "not json").unwrap();
        assert_eq!(append_history(&path, "pipeline", entry).unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_artifact_respects_env_gate() {
        // Unset: a silent no-op. (Env mutation is safe here: this is the
        // only test touching DR_ARTIFACTS, and cargo runs each test
        // binary's tests in one process.)
        std::env::remove_var("DR_ARTIFACTS");
        assert_eq!(write_artifact("x.txt", "data"), None);
        // Set: creates the directory and writes the file.
        let dir = std::env::temp_dir().join(format!("dr-artifacts-{}", std::process::id()));
        std::env::set_var("DR_ARTIFACTS", &dir);
        let path = write_artifact("x.txt", "data").expect("artifact written");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "data");
        std::env::remove_var("DR_ARTIFACTS");
        std::fs::remove_dir_all(&dir).ok();
    }
}
